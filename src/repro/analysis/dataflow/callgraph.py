"""Program index and call-graph construction for the Tier-3 rules.

This is deliberately a *best-effort* resolver tuned to the idioms this
codebase actually uses, not a general points-to analysis.  A call is
resolved through, in order:

1. a nested ``def`` in the enclosing function (closure helpers such as
   ``flush()`` / ``next_outer()``),
2. a module-level function or class (constructor) in the same file,
3. ``self.method(...)`` → the enclosing class and its bases,
4. ``self.attr.method(...)`` / ``var.method(...)`` where the attribute
   or variable has a known type — from ``self.x = ClassName(...)``
   assignments, ``self.x = param`` with an annotated parameter,
   class-body annotations (``feedback: FeedbackStore``), parameter
   annotations, local ``x = ClassName(...)`` / annotated assignments,
   and locals bound from calls whose resolved target has an annotated
   return type (``session = engine.session()`` with
   ``def session(...) -> Session``),
5. a unique-owner fallback: a method name defined by exactly one class
   in the analyzed set resolves to that class's method.

Unresolved calls simply contribute no edge — every rule built on top is
a *may* analysis whose findings cite a concrete witness path, so a
missing edge can cost recall but never invents a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Sequence, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_LOCK_CTORS = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}


def dotted_chain(node: ast.expr) -> Optional[tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for anything fancier."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def annotation_leaf(node: Optional[ast.expr]) -> Optional[str]:
    """The innermost class-ish name of an annotation.

    ``Optional[PlanCache]`` → ``PlanCache``; ``"Session"`` → ``Session``;
    ``dict[str, int]`` → ``dict``.  Wrapper generics (Optional/Union/
    Final/ClassVar) are peeled so the payload type is what resolves.
    """
    while node is not None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value.strip()
            return name.split("[", 1)[0].split(".")[-1] or None
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Subscript):
            head = annotation_leaf(node.value)
            if head in {"Optional", "Final", "ClassVar", "Annotated"}:
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    node = inner.elts[0]
                else:
                    node = inner
                continue
            return head
        return None
    return None


@dataclass
class CallSite:
    """One call expression inside a function, with resolved targets."""

    node: ast.Call
    chain: Optional[tuple[str, ...]]
    line: int
    targets: tuple[str, ...] = ()

    @property
    def leaf(self) -> Optional[str]:
        return self.chain[-1] if self.chain else None


@dataclass
class FunctionInfo:
    """One analyzed function, method, or nested closure helper."""

    qualname: str
    file: str
    name: str
    node: FunctionNode
    cls: Optional[str] = None
    parent: Optional[str] = None
    is_async: bool = False
    param_types: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)
    nested: dict[str, str] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def return_leaf(self) -> Optional[str]:
        return annotation_leaf(self.node.returns)


@dataclass
class ClassInfo:
    """One analyzed class: methods, attribute types, and lock attributes."""

    name: str
    file: str
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    #: lock-like attributes assigned in method bodies: name -> kind
    lock_attrs: dict[str, str] = field(default_factory=dict)


@dataclass
class Program:
    """The whole analyzed file set, indexed for resolution."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level function name -> qualname, per file
    module_functions: dict[str, dict[str, str]] = field(default_factory=dict)
    #: method name -> set of owning class names (unique-owner fallback)
    method_owners: dict[str, set[str]] = field(default_factory=dict)
    #: caller qualname -> callee qualnames (the call graph)
    edges: dict[str, set[str]] = field(default_factory=dict)

    def functions_in(self, prefix: str) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.file.startswith(prefix):
                yield info

    def method(self, cls_name: str, method_name: str) -> Optional[str]:
        """Look up a method on a class or, by name, its base classes."""
        seen: set[str] = set()
        frontier = [cls_name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method_name in info.methods:
                return info.methods[method_name]
            frontier.extend(info.bases)
        return None

    def reverse_edges(self) -> dict[str, set[str]]:
        reverse: dict[str, set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        return reverse


def iter_own_statements(node: FunctionNode) -> Iterator[ast.stmt]:
    """Statements of ``node`` excluding bodies of nested defs/classes."""
    return iter_statements(node.body)


def iter_statements(stmts: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """A statement list's statements, recursively, excluding bodies of
    nested ``def``/``class`` statements."""
    stack: list[ast.stmt] = list(stmts)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    grand
                    for grand in ast.walk(child)
                    if isinstance(grand, ast.stmt)
                )


def _calls_in_expr(node: ast.AST) -> Iterator[ast.Call]:
    """Calls in an expression subtree; lambda bodies run later, so skip."""
    if isinstance(node, ast.Lambda):
        return
    if isinstance(node, ast.Call):
        yield node
    for child in ast.iter_child_nodes(node):
        if not isinstance(child, ast.stmt):
            yield from _calls_in_expr(child)


def iter_stmt_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls evaluated by ``stmt`` itself (not by nested statements)."""
    for child in ast.iter_child_nodes(stmt):
        if not isinstance(child, ast.stmt):
            yield from _calls_in_expr(child)


def iter_own_calls(node: FunctionNode) -> Iterator[ast.Call]:
    """Call expressions in ``node``'s own body, skipping nested defs.

    Each call is yielded exactly once: compound statements contribute
    only the calls in their headers (test/iter/context expressions);
    their nested statements are visited in their own right.
    """
    for stmt in iter_own_statements(node):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from iter_stmt_calls(stmt)


def _index_function(
    program: Program,
    node: FunctionNode,
    file: str,
    qualname: str,
    cls: Optional[str],
    parent: Optional[str],
) -> FunctionInfo:
    params: dict[str, str] = {}
    arguments = node.args
    for arg in [
        *arguments.posonlyargs,
        *arguments.args,
        *arguments.kwonlyargs,
    ]:
        leaf = annotation_leaf(arg.annotation)
        if leaf is not None:
            params[arg.arg] = leaf
    info = FunctionInfo(
        qualname=qualname,
        file=file,
        name=node.name,
        node=node,
        cls=cls,
        parent=parent,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        param_types=params,
    )
    program.functions[qualname] = info
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_qualname = f"{qualname}.{stmt.name}"
            info.nested[stmt.name] = child_qualname
            _index_function(
                program, stmt, file, child_qualname, cls=cls, parent=qualname
            )
    return info


def _index_class(program: Program, node: ast.ClassDef, file: str) -> None:
    bases = tuple(
        leaf for leaf in (annotation_leaf(base) for base in node.bases) if leaf
    )
    cls = ClassInfo(name=node.name, file=file, bases=bases)
    # Last definition of a re-used class name wins; collisions are
    # handled by the unique-owner map going ambiguous instead.
    program.classes[node.name] = cls
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{file}::{node.name}.{stmt.name}"
            cls.methods[stmt.name] = qualname
            program.method_owners.setdefault(stmt.name, set()).add(node.name)
            _index_function(
                program, stmt, file, qualname, cls=node.name, parent=None
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            leaf = annotation_leaf(stmt.annotation)
            if leaf is not None:
                cls.attr_types.setdefault(stmt.target.id, leaf)


def _harvest_self_assignments(program: Program) -> None:
    """Fill ``attr_types``/``lock_attrs`` from ``self.x = ...`` bodies."""
    for info in program.functions.values():
        if info.cls is None:
            continue
        cls = program.classes.get(info.cls)
        if cls is None:
            continue
        for stmt in iter_own_statements(info.node):
            target: Optional[ast.expr]
            value: Optional[ast.expr]
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            else:
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if isinstance(stmt, ast.AnnAssign):
                leaf = annotation_leaf(stmt.annotation)
                if leaf is not None and leaf in program.classes:
                    cls.attr_types.setdefault(attr, leaf)
            if isinstance(value, ast.Call):
                chain = dotted_chain(value.func)
                leaf = chain[-1] if chain else None
                if leaf in _LOCK_CTORS:
                    cls.lock_attrs.setdefault(attr, _LOCK_CTORS[leaf])
                elif leaf is not None and leaf in program.classes:
                    cls.attr_types.setdefault(attr, leaf)
            elif isinstance(value, ast.Name):
                param_leaf = info.param_types.get(value.id)
                if param_leaf is not None and param_leaf in program.classes:
                    cls.attr_types.setdefault(attr, param_leaf)


def _resolve_chain(
    program: Program, info: FunctionInfo, chain: tuple[str, ...]
) -> Optional[str]:
    """Resolve a dotted call chain to a function qualname, or None."""
    if len(chain) == 1:
        name = chain[0]
        if name in info.nested:
            return info.nested[name]
        enclosing = info.parent
        while enclosing is not None:
            parent = program.functions.get(enclosing)
            if parent is None:
                break
            if name in parent.nested:
                return parent.nested[name]
            enclosing = parent.parent
        module_funcs = program.module_functions.get(info.file, {})
        if name in module_funcs:
            return module_funcs[name]
        if name in program.classes:
            return program.method(name, "__init__")
        return None

    root, rest = chain[0], chain[1:]
    receiver_type: Optional[str] = None
    if root == "self" and info.cls is not None:
        if len(rest) == 1:
            return program.method(info.cls, rest[0])
        cls = program.classes.get(info.cls)
        if cls is not None:
            receiver_type = cls.attr_types.get(rest[0])
            rest = rest[1:]
    elif root == "cls" and info.cls is not None and len(rest) == 1:
        return program.method(info.cls, rest[0])
    else:
        receiver_type = info.local_types.get(root) or info.param_types.get(root)
        if receiver_type is None and root in program.classes and len(rest) == 1:
            # ClassName.method(...) — direct class reference.
            receiver_type = root
    if receiver_type is not None and len(rest) == 1:
        resolved = program.method(receiver_type, rest[0])
        if resolved is not None:
            return resolved
    if len(rest) >= 1:
        owners = program.method_owners.get(chain[-1], set())
        if len(owners) == 1:
            return program.method(next(iter(owners)), chain[-1])
    return None


def _infer_local_types(program: Program, info: FunctionInfo) -> None:
    """One forward pass over assignments to type obvious locals."""
    for stmt in iter_own_statements(info.node):
        target: Optional[ast.expr]
        value: Optional[ast.expr]
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        if isinstance(stmt, ast.AnnAssign):
            leaf = annotation_leaf(stmt.annotation)
            if leaf is not None and leaf in program.classes:
                info.local_types[target.id] = leaf
                continue
        inner = value.value if isinstance(value, ast.Await) else value
        if not isinstance(inner, ast.Call):
            continue
        chain = dotted_chain(inner.func)
        if chain is None:
            continue
        if chain[-1] in program.classes:
            info.local_types[target.id] = chain[-1]
            continue
        resolved = _resolve_chain(program, info, chain)
        if resolved is not None:
            return_leaf = program.functions[resolved].return_leaf
            if return_leaf is not None and return_leaf in program.classes:
                info.local_types[target.id] = return_leaf


def _collect_calls(program: Program, info: FunctionInfo) -> None:
    for call in iter_own_calls(info.node):
        chain = dotted_chain(call.func)
        targets: tuple[str, ...] = ()
        if chain is not None:
            resolved = _resolve_chain(program, info, chain)
            if resolved is not None:
                targets = (resolved,)
        site = CallSite(
            node=call, chain=chain, line=call.lineno, targets=targets
        )
        info.calls.append(site)
        program.edges.setdefault(info.qualname, set()).update(targets)


def build_program(sources: Mapping[str, str]) -> Program:
    """Parse and index every source; files that fail to parse are
    skipped (Tier-2 already reports them as R000 syntax errors)."""
    program = Program()
    modules: list[tuple[str, ast.Module]] = []
    for file, source in sorted(sources.items()):
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        modules.append((file, tree))
        program.module_functions[file] = {}
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{file}::{stmt.name}"
                program.module_functions[file][stmt.name] = qualname
                _index_function(
                    program, stmt, file, qualname, cls=None, parent=None
                )
            elif isinstance(stmt, ast.ClassDef):
                _index_class(program, stmt, file)
    _harvest_self_assignments(program)
    functions = list(program.functions.values())
    for info in functions:
        _infer_local_types(program, info)
    for info in functions:
        _collect_calls(program, info)
    return program


def collect_sources(paths: Sequence[str]) -> dict[str, str]:
    """Read ``.py`` files under each path, keyed by a repo-style label."""
    from pathlib import Path

    sources: dict[str, str] = {}
    for raw in paths:
        path = Path(raw)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            try:
                sources[file.as_posix()] = file.read_text(encoding="utf-8")
            except OSError:
                continue
    return sources
