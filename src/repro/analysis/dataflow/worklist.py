"""A small worklist fixpoint framework shared by the Tier-3 rules.

Two shapes cover everything the C/F rules need:

* :func:`propagate` — transitive closure of a seed set over a call (or
  reverse-call) graph: "every function that can reach an epoch bump",
  "every function that transitively acquires lock L".  The classic
  monotone worklist: pop a dirty node, recompute its fact from its
  neighbours, re-dirty dependents when the fact grew.
* :func:`reachable` — forward reachability over a CFG with an optional
  *barrier* predicate: nodes satisfying the barrier are reached but not
  expanded.  "Which nodes can execute before any ``release()``" is
  reachability with release nodes as barriers; "is there a
  checkpoint-free path through the loop body" is the same query with
  checkpoint nodes as barriers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, Mapping, Optional, TypeVar

Node = TypeVar("Node", bound=Hashable)


def propagate(
    seeds: Iterable[Node],
    edges: Mapping[Node, set[Node]],
) -> set[Node]:
    """The closure of ``seeds`` under ``edges`` (seed ∪ everything reachable).

    ``edges`` maps a node to its successors; pass a reversed graph to
    compute "everything that can reach a seed" (the direction the
    blocking/epoch-bump analyses need).
    """
    closed: set[Node] = set()
    frontier: deque[Node] = deque(seeds)
    while frontier:
        node = frontier.popleft()
        if node in closed:
            continue
        closed.add(node)
        frontier.extend(edges.get(node, set()) - closed)
    return closed


def reachable(
    starts: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
    barrier: Optional[Callable[[Node], bool]] = None,
) -> set[Node]:
    """Nodes reachable from ``starts`` without passing *through* a barrier.

    A barrier node is included in the result (it was reached) but its
    successors are not explored from it — paths stop there.  With no
    barrier this is plain forward reachability.
    """
    seen: set[Node] = set()
    frontier: deque[Node] = deque(starts)
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        if barrier is not None and barrier(node):
            continue
        for succ in successors(node):
            if succ not in seen:
                frontier.append(succ)
    return seen
