"""Per-function control-flow graphs over ``ast`` statement lists.

The Tier-3 flow rules (F001/F002) are *all-paths* questions: "does every
path through this loop body pass a checkpoint", "does every path from
this acquisition — including exceptional ones — pass a release".  Both
reduce to reachability over a CFG, so the graph keeps just enough
structure to make those queries sound for the code in this repo:

* Nodes are statements (plus synthetic entry/exit/junction nodes).
* ``try``/``except``/``finally`` is modelled precisely enough for the
  release audit: a statement that *may raise* (contains a call, await,
  or raise) gets an edge to every handler of the innermost enclosing
  ``try`` **and** to the escape continuation (handlers may not match).
  ``finally`` bodies are cloned per continuation (normal fall-through,
  exception propagation, and ``return``) so a release inside ``finally``
  covers exceptional exits and early returns alike.
* Attribute access, subscripting, and arithmetic are **not** modelled as
  raising — only calls/awaits/raises are.  That keeps the exceptional
  edge set small enough that the F002 audit has no noise on this
  codebase while still catching every leak a failing call could cause.
* ``with`` statements are a node (the context-manager expression can
  raise) followed by their body; ``__exit__`` cleanup semantics are not
  modelled — the repo's resource rules track explicit release calls.

Two exits are distinguished: ``exit_normal`` (fell off the end or
returned) and ``exit_raised`` (an exception escaped the function).  For
F002 both are leak exits; for F001 loop bodies they are reused as
"repeat the loop" and "left the loop" respectively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass
class CFGNode:
    """One CFG vertex: a statement, or a synthetic connector."""

    index: int
    stmt: Optional[ast.stmt]
    label: str


@dataclass
class CFG:
    """A single function's (or loop body's) control-flow graph."""

    nodes: list[CFGNode] = field(default_factory=list)
    #: normal-flow successor edges
    succ: dict[int, set[int]] = field(default_factory=dict)
    #: exceptional successor edges (statement may raise)
    succ_exc: dict[int, set[int]] = field(default_factory=dict)
    entry: int = 0
    exit_normal: int = 0
    exit_raised: int = 0

    def new_node(self, stmt: Optional[ast.stmt], label: str) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, stmt=stmt, label=label))
        self.succ[index] = set()
        self.succ_exc[index] = set()
        return index

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)

    def add_exc_edge(self, src: int, dst: int) -> None:
        self.succ_exc[src].add(dst)

    def successors(self, index: int) -> set[int]:
        return self.succ[index] | self.succ_exc[index]

    def statement_nodes(self) -> list[CFGNode]:
        return [node for node in self.nodes if node.stmt is not None]


_DEFINITIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def may_raise(stmt: ast.stmt) -> bool:
    """Whether the statement can transfer to an exception handler.

    Only calls, awaits, and explicit raises count; pure attribute access
    and arithmetic are treated as safe (see module docstring).  Nested
    ``def``/``class`` statements never raise at definition time even
    though their bodies contain calls.
    """
    if isinstance(stmt, _DEFINITIONS):
        return False
    for child in ast.walk(stmt):
        if isinstance(child, (ast.Call, ast.Await, ast.Raise)):
            return True
    return False


@dataclass
class _Context:
    """Continuation targets threaded through the recursive builder."""

    follow: int
    break_to: Optional[int]
    continue_to: Optional[int]
    return_to: int
    raise_to: tuple[int, ...]


class _Builder:
    def __init__(self, with_exceptions: bool) -> None:
        self.cfg = CFG()
        self.with_exceptions = with_exceptions
        #: >0 while wiring a ``finally`` clone: cleanup code is modelled
        #: as non-raising, otherwise every multi-statement finally would
        #: count as "the earlier cleanup call may raise and skip the
        #: later release" — true in principle, pure noise in practice.
        self._cleanup_depth = 0

    def build(self, stmts: Sequence[ast.stmt]) -> CFG:
        cfg = self.cfg
        cfg.entry = cfg.new_node(None, "entry")
        cfg.exit_normal = cfg.new_node(None, "exit")
        cfg.exit_raised = cfg.new_node(None, "exit-raised")
        context = _Context(
            follow=cfg.exit_normal,
            break_to=None,
            continue_to=None,
            return_to=cfg.exit_normal,
            raise_to=(cfg.exit_raised,),
        )
        first = self._wire_block(stmts, context)
        cfg.add_edge(cfg.entry, first)
        return cfg

    # -- wiring helpers ------------------------------------------------

    def _wire_block(self, stmts: Sequence[ast.stmt], context: _Context) -> int:
        """Wire a statement list; returns the entry node of the block."""
        if not stmts:
            return context.follow
        entry = context.follow
        # Wire back-to-front so each statement knows its successor.
        for stmt in reversed(stmts):
            entry = self._wire_stmt(
                stmt,
                _Context(
                    follow=entry,
                    break_to=context.break_to,
                    continue_to=context.continue_to,
                    return_to=context.return_to,
                    raise_to=context.raise_to,
                ),
            )
        return entry

    def _junction(self, targets: Sequence[int], label: str) -> int:
        """A synthetic node fanning out to several continuations."""
        if len(targets) == 1:
            return targets[0]
        node = self.cfg.new_node(None, label)
        for target in targets:
            self.cfg.add_edge(node, target)
        return node

    def _simple(self, stmt: ast.stmt, context: _Context) -> int:
        node = self.cfg.new_node(stmt, type(stmt).__name__)
        self.cfg.add_edge(node, context.follow)
        if (
            self.with_exceptions
            and not self._cleanup_depth
            and may_raise(stmt)
        ):
            for target in context.raise_to:
                self.cfg.add_exc_edge(node, target)
        return node

    def _wire_stmt(self, stmt: ast.stmt, context: _Context) -> int:
        if isinstance(stmt, ast.Return):
            node = self.cfg.new_node(stmt, "Return")
            self.cfg.add_edge(node, context.return_to)
            if (
                self.with_exceptions
                and not self._cleanup_depth
                and may_raise(stmt)
            ):
                for target in context.raise_to:
                    self.cfg.add_exc_edge(node, target)
            return node
        if isinstance(stmt, ast.Raise):
            node = self.cfg.new_node(stmt, "Raise")
            for target in context.raise_to:
                self.cfg.add_edge(node, target)
            return node
        if isinstance(stmt, ast.Break):
            node = self.cfg.new_node(stmt, "Break")
            self.cfg.add_edge(node, context.break_to or context.follow)
            return node
        if isinstance(stmt, ast.Continue):
            node = self.cfg.new_node(stmt, "Continue")
            self.cfg.add_edge(node, context.continue_to or context.follow)
            return node
        if isinstance(stmt, ast.If):
            return self._wire_if(stmt, context)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._wire_loop(stmt, context)
        if isinstance(stmt, ast.Try):
            return self._wire_try(stmt, context)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._wire_with(stmt, context)
        return self._simple(stmt, context)

    def _wire_if(self, stmt: ast.If, context: _Context) -> int:
        node = self.cfg.new_node(stmt, "If")
        then_entry = self._wire_block(stmt.body, context)
        else_entry = self._wire_block(stmt.orelse, context)
        self.cfg.add_edge(node, then_entry)
        self.cfg.add_edge(node, else_entry)
        return node

    def _wire_loop(
        self, stmt: "ast.For | ast.AsyncFor | ast.While", context: _Context
    ) -> int:
        header = self.cfg.new_node(stmt, type(stmt).__name__)
        after = self._wire_block(stmt.orelse, context) if stmt.orelse else context.follow
        body_context = _Context(
            follow=header,
            break_to=context.follow,
            continue_to=header,
            return_to=context.return_to,
            raise_to=context.raise_to,
        )
        body_entry = self._wire_block(stmt.body, body_context)
        self.cfg.add_edge(header, body_entry)
        self.cfg.add_edge(header, after)
        if (
            self.with_exceptions
            and not self._cleanup_depth
            and isinstance(stmt, (ast.For, ast.AsyncFor))
        ):
            # The iterator's __next__ may raise (generators re-raise from
            # their bodies); model it so drives over raising sources are
            # connected to their handlers.
            for target in context.raise_to:
                self.cfg.add_exc_edge(header, target)
        return header

    def _wire_with(
        self, stmt: "ast.With | ast.AsyncWith", context: _Context
    ) -> int:
        node = self.cfg.new_node(stmt, type(stmt).__name__)
        body_entry = self._wire_block(stmt.body, context)
        self.cfg.add_edge(node, body_entry)
        if self.with_exceptions and not self._cleanup_depth:
            # Entering the context manager evaluates calls.
            for target in context.raise_to:
                self.cfg.add_exc_edge(node, target)
        return node

    def _wire_try(self, stmt: ast.Try, context: _Context) -> int:
        def finally_to(target: int, targets: tuple[int, ...] = ()) -> int:
            """A fresh clone of the ``finally`` body ending at ``target``
            (or fanning out to ``targets``)."""
            if not stmt.finalbody:
                return self._junction(targets, "escape") if targets else target
            follow = self._junction(targets, "escape") if targets else target
            self._cleanup_depth += 1
            try:
                return self._wire_block(
                    stmt.finalbody,
                    _Context(
                        follow=follow,
                        break_to=context.break_to,
                        continue_to=context.continue_to,
                        return_to=context.return_to,
                        raise_to=context.raise_to,
                    ),
                )
            finally:
                self._cleanup_depth -= 1

        normal_follow = finally_to(context.follow)
        escape_follow = finally_to(0, targets=context.raise_to)
        return_follow = finally_to(context.return_to)

        handler_entries: list[int] = []
        for handler in stmt.handlers:
            handler_entries.append(
                self._wire_block(
                    handler.body,
                    _Context(
                        follow=normal_follow,
                        break_to=context.break_to,
                        continue_to=context.continue_to,
                        return_to=return_follow,
                        raise_to=(escape_follow,),
                    ),
                )
            )

        # An exception inside the body may land in any handler, or match
        # none and escape (through finally).
        body_raise_to = tuple(handler_entries) + (escape_follow,)
        body_follow = (
            self._wire_block(
                stmt.orelse,
                _Context(
                    follow=normal_follow,
                    break_to=context.break_to,
                    continue_to=context.continue_to,
                    return_to=return_follow,
                    raise_to=body_raise_to,
                ),
            )
            if stmt.orelse
            else normal_follow
        )
        return self._wire_block(
            stmt.body,
            _Context(
                follow=body_follow,
                break_to=context.break_to,
                continue_to=context.continue_to,
                return_to=return_follow,
                raise_to=body_raise_to,
            ),
        )


def build_cfg(stmts: Sequence[ast.stmt], with_exceptions: bool = True) -> CFG:
    """Build the CFG for a statement list (typically a function body)."""
    return _Builder(with_exceptions).build(list(stmts))


def build_loop_body_cfg(loop: "ast.For | ast.AsyncFor | ast.While") -> CFG:
    """CFG of one iteration of ``loop``'s body, without exceptional edges.

    ``exit_normal`` means "reached the end of the body — the loop
    repeats"; ``break``/``return``/``raise`` are routed to
    ``exit_raised``, i.e. "left the loop".  The F001 cancellation audit
    asks whether every path to the repeat point passes a checkpoint.
    """
    builder = _Builder(with_exceptions=False)
    cfg = builder.cfg
    cfg.entry = cfg.new_node(None, "entry")
    cfg.exit_normal = cfg.new_node(None, "repeat")
    cfg.exit_raised = cfg.new_node(None, "left-loop")
    context = _Context(
        follow=cfg.exit_normal,
        break_to=cfg.exit_raised,
        continue_to=cfg.exit_normal,
        return_to=cfg.exit_raised,
        raise_to=(cfg.exit_raised,),
    )
    first = builder._wire_block(loop.body, context)
    cfg.add_edge(cfg.entry, first)
    return cfg
