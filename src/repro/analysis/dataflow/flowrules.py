"""Tier-3 flow/coverage rules: F001 (cancellation coverage of drive
loops), F002 (resource release on all paths), F003 (no epoch bump after
an observed cancellation).

These are the invariants the ROADMAP's next steps lean on:

* **F001** — mid-query re-optimization (PLANSIEVE-style plan switching)
  can only happen at cancellation checkpoints, so every loop in
  ``exec/`` that *drives* work (charges an IOContext) must reach
  ``checkpoint()`` on every iteration.  A checkpoint guarded by a
  *boundary* condition — a modulo counter, a ``len(buffer) >= chunk``
  fill test, or a first-visit membership test — fires periodically by
  construction and counts as coverage; a checkpoint behind an arbitrary
  data-dependent guard does not.
* **F002** — an admission slot that leaks on an exceptional path wedges
  the admission controller permanently (the capacity is never given
  back); an ``IOContext`` created and then dropped on some path loses
  the execution feedback the whole paper depends on; a shard fan-out
  (``_scatter``-returned worker handles) abandoned on some path leaves
  live worker threads behind the coordinator's back.  All are audited
  by CFG reachability: from the acquisition, no path (normal or
  exceptional) may reach a function exit without passing a release /
  use / ownership transfer (for a fan-out, handing the handles to
  ``_gather`` — which joins or cancels every worker — is the settle).
* **F003** — once a cancellation has been observed (an
  ``except QueryCancelled`` or ``except ReoptRequested`` handler is
  running), the run's statistics describe a *partial* execution; feeding
  them to the feedback store would bump table epochs with corrupt page
  counts.  No call in such a handler (under ``service/`` or ``reopt/``)
  may reach an epoch-bumping function.  Reopt handlers may still harvest
  partial lower bounds — ``record_partial_observations`` advances only
  the partial sequence, never the exact epoch, so it is outside the bump
  closure by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.analysis.dataflow.callgraph import (
    FunctionInfo,
    Program,
    dotted_chain,
    iter_statements,
    iter_stmt_calls,
)
from repro.analysis.dataflow.cfg import CFG, build_cfg, build_loop_body_cfg
from repro.analysis.dataflow.worklist import propagate, reachable
from repro.analysis.findings import Finding, Severity

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _short(info: FunctionInfo) -> str:
    return info.qualname.rsplit("::", 1)[-1]


# --------------------------------------------------------------------------
# F001 — drive loops must be cancellation-covered
# --------------------------------------------------------------------------


def _direct_loop_statements(
    stmts: Sequence[ast.stmt],
) -> Iterator[ast.stmt]:
    """Statements of a loop body, not descending into nested loops/defs."""
    for stmt in stmts:
        if isinstance(stmt, _DEFS):
            continue
        yield stmt
        if isinstance(stmt, _LOOPS):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            yield from _direct_loop_statements(
                getattr(stmt, field_name, []) or []
            )
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _direct_loop_statements(handler.body)


def _is_charge_call(call: ast.Call) -> bool:
    chain = dotted_chain(call.func)
    return chain is not None and chain[-1].startswith("charge_")


def _is_checkpoint_call(call: ast.Call) -> bool:
    chain = dotted_chain(call.func)
    return chain is not None and chain[-1] == "checkpoint"


def _is_boundary_test(test: ast.expr) -> bool:
    """Modulo counters, buffer-fill ``len`` tests, and first-visit
    membership tests fire on a data-independent cadence."""
    for node in ast.walk(test):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            return True
        if isinstance(node, ast.Call):
            chain = dotted_chain(node.func)
            if chain is not None and chain[-1] == "len":
                return True
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            return True
    return False


def _has_boundary_guarded_checkpoint(
    stmts: Sequence[ast.stmt], guards_ok: bool = True
) -> bool:
    """A checkpoint whose enclosing ``if`` guards are all boundary tests."""
    for stmt in stmts:
        if isinstance(stmt, _DEFS) or isinstance(stmt, _LOOPS):
            continue
        if guards_ok:
            for call in iter_stmt_calls(stmt):
                if _is_checkpoint_call(call):
                    return True
        if isinstance(stmt, ast.If):
            branch_ok = guards_ok and _is_boundary_test(stmt.test)
            if _has_boundary_guarded_checkpoint(stmt.body, branch_ok):
                return True
            if _has_boundary_guarded_checkpoint(stmt.orelse, guards_ok):
                return True
            continue
        for field_name in ("body", "orelse", "finalbody"):
            if _has_boundary_guarded_checkpoint(
                getattr(stmt, field_name, []) or [], guards_ok
            ):
                return True
        for handler in getattr(stmt, "handlers", []) or []:
            if _has_boundary_guarded_checkpoint(handler.body, guards_ok):
                return True
    return False


def _loop_charges(loop: ast.stmt, info: FunctionInfo, program: Program) -> bool:
    """Whether the loop drives work: charges an IOContext in its body.

    Direct ``charge_*`` calls always count.  ``for`` loops additionally
    count calls to closure helpers (nested defs of the enclosing
    function) that charge — the ``flush()`` idiom; ``while`` loops do
    not, because the merge loops advance via ``next_*`` closures that
    drive their *own* audited ``for`` loops.
    """
    assert isinstance(loop, _LOOPS)
    for stmt in _direct_loop_statements(loop.body):
        for call in iter_stmt_calls(stmt):
            if _is_charge_call(call):
                return True
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                chain = dotted_chain(call.func)
                if chain is None or len(chain) != 1:
                    continue
                nested_qualname = info.nested.get(chain[0])
                if nested_qualname is None and info.parent is not None:
                    parent = program.functions.get(info.parent)
                    if parent is not None:
                        nested_qualname = parent.nested.get(chain[0])
                if nested_qualname is None:
                    continue
                nested = program.functions[nested_qualname]
                if any(
                    _is_charge_call(site.node) for site in nested.calls
                ):
                    return True
    return False


def _is_stream_loop(loop: ast.stmt) -> bool:
    """``for row in child.rows(ctx)`` / ``for batch in child.batches(ctx)``
    pulls from an operator that runs its own audited drive loops."""
    if not isinstance(loop, (ast.For, ast.AsyncFor)):
        return False
    if not isinstance(loop.iter, ast.Call):
        return False
    chain = dotted_chain(loop.iter.func)
    return chain is not None and chain[-1] in {"rows", "batches"}


def _checkpoint_barrier(cfg: CFG) -> set[int]:
    barrier: set[int] = set()
    for node in cfg.statement_nodes():
        stmt = node.stmt
        assert stmt is not None
        if any(_is_checkpoint_call(call) for call in iter_stmt_calls(stmt)):
            barrier.add(node.index)
    return barrier


def _loop_is_self_covered(loop: ast.stmt) -> bool:
    """Every iteration of the loop's own body passes a checkpoint (or a
    boundary-guarded one), or the body always leaves the loop."""
    assert isinstance(loop, _LOOPS)
    cfg = build_loop_body_cfg(loop)
    if cfg.exit_normal not in reachable([cfg.entry], cfg.successors):
        # Every path leaves the loop in one iteration (the for-as-next
        # idiom) — no unbounded uncancellable run.
        return True
    barrier = _checkpoint_barrier(cfg)
    uncovered = cfg.exit_normal in reachable(
        [cfg.entry],
        cfg.successors,
        barrier=lambda index, blocked=frozenset(barrier): index in blocked,
    )
    if not uncovered:
        return True
    return _has_boundary_guarded_checkpoint(loop.body)


def _covered_by_enclosing_loop(
    loop: ast.stmt, enclosing: Sequence[ast.stmt]
) -> bool:
    """The inner loop is only reachable *after* a checkpoint within some
    enclosing loop's iteration.

    This is the engine's dominant pattern: ``for page: ctx.checkpoint();
    for row in page_rows: ...`` — the inner loop's work is bounded by
    one outer element (a page, an outer row), and the outer checkpoint
    bounds cancellation latency to that element.
    """
    for parent in enclosing:
        assert isinstance(parent, _LOOPS)
        cfg = build_loop_body_cfg(parent)
        barrier = _checkpoint_barrier(cfg)
        reach = reachable(
            [cfg.entry],
            cfg.successors,
            barrier=lambda index, blocked=frozenset(barrier): (
                index in blocked
            ),
        )
        loop_nodes = {
            node.index
            for node in cfg.statement_nodes()
            if node.stmt is loop
        }
        if loop_nodes and not (loop_nodes & reach):
            return True
    return False


def check_drive_loop_coverage(program: Program) -> list[Finding]:
    """F001: every charging loop in ``exec/`` reaches a checkpoint on
    all paths through its body — its own, boundary-guarded, or an
    enclosing loop's per-iteration checkpoint dominating its entry."""
    findings: list[Finding] = []

    def audit(
        stmts: Sequence[ast.stmt],
        info: FunctionInfo,
        enclosing: list[ast.stmt],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, _DEFS):
                continue
            if isinstance(stmt, _LOOPS):
                if (
                    not _is_stream_loop(stmt)
                    and _loop_charges(stmt, info, program)
                    and not _loop_is_self_covered(stmt)
                    and not _covered_by_enclosing_loop(stmt, enclosing)
                ):
                    findings.append(
                        Finding(
                            rule="F001",
                            severity=Severity.ERROR,
                            message=(
                                f"drive loop in {info.name}() charges the "
                                "IOContext but has a path through its body "
                                "that reaches no checkpoint() — "
                                "cancellation (and mid-query "
                                "re-optimization) cannot interrupt it"
                            ),
                            file=info.file,
                            line=stmt.lineno,
                            location=_short(info),
                            hint=(
                                "call ctx.checkpoint() on every iteration, "
                                "or guard it with a boundary test (modulo "
                                "counter, len() fill check, first-visit "
                                "membership)"
                            ),
                        )
                    )
                audit(stmt.body, info, enclosing + [stmt])
                audit(stmt.orelse, info, enclosing)
                continue
            for field_name in ("body", "orelse", "finalbody"):
                audit(getattr(stmt, field_name, []) or [], info, enclosing)
            for handler in getattr(stmt, "handlers", []) or []:
                audit(handler.body, info, enclosing)

    for info in program.functions.values():
        if "/exec/" not in f"/{info.file}":
            continue
        audit(list(info.node.body), info, [])
    return findings


# --------------------------------------------------------------------------
# F002 — acquired slots / IOContexts settle on every path
# --------------------------------------------------------------------------


def _acquired_resource(stmt: ast.stmt) -> Optional[tuple[str, str]]:
    """``(kind, name)`` if the statement binds a tracked resource."""
    if not (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return None
    name = stmt.targets[0].id
    value = stmt.value
    if isinstance(value, ast.Await):
        value = value.value
    if not isinstance(value, ast.Call):
        return None
    chain = dotted_chain(value.func)
    leaf = chain[-1] if chain else None
    if leaf in {"wait_for"} and value.args:
        inner = value.args[0]
        if isinstance(inner, ast.Call):
            inner_chain = dotted_chain(inner.func)
            leaf = inner_chain[-1] if inner_chain else None
    if leaf == "admit":
        return ("admission slot", name)
    if leaf in {"new_io_context", "IOContext"}:
        return ("IOContext", name)
    if leaf in {"_scatter", "scatter"}:
        # The shard coordinator's fan-out: the returned handles own live
        # worker threads, and every path must settle them (join or
        # cancel) — passing the handles to _gather() is the settle.
        return ("shard fan-out", name)
    return None


def _mentions_name(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


def _settles(stmt: ast.stmt, kind: str, name: str) -> bool:
    """Whether executing ``stmt`` releases, consumes, or hands off the
    resource bound to ``name``."""
    if isinstance(stmt, (ast.Return,)) and stmt.value is not None:
        if _mentions_name(stmt.value, name):
            return True
    for call in iter_stmt_calls(stmt):
        chain = dotted_chain(call.func)
        if (
            chain is not None
            and len(chain) >= 2
            and chain[0] == name
            and chain[-1] in {"release", "close", "finalize"}
        ):
            return True
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if _mentions_name(arg, name):
                return True
    if kind == "IOContext":
        # Any use of the context (passing it along, reading counters)
        # keeps the accounting alive; only a bind-and-drop is a leak.
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(child, ast.stmt) and _mentions_name(
                child, name
            ):
                return True
    else:
        # Storing the slot somewhere transfers ownership.
        if isinstance(stmt, ast.Assign) and _mentions_name(stmt.value, name):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield):
            if stmt.value.value is not None and _mentions_name(
                stmt.value.value, name
            ):
                return True
    return False


def check_resource_release(program: Program) -> list[Finding]:
    """F002: slots and IOContexts settle on all paths, including
    exceptional ones."""
    findings: list[Finding] = []
    for info in program.functions.values():
        acquisitions = [
            (stmt, resource)
            for stmt in iter_statements(info.node.body)
            if (resource := _acquired_resource(stmt)) is not None
        ]
        if not acquisitions:
            continue
        cfg = build_cfg(info.node.body, with_exceptions=True)
        by_stmt: dict[int, list[int]] = {}
        for node in cfg.statement_nodes():
            by_stmt.setdefault(id(node.stmt), []).append(node.index)
        for stmt, (kind, name) in acquisitions:
            settled: set[int] = set()
            for node in cfg.statement_nodes():
                assert node.stmt is not None
                if node.stmt is not stmt and _settles(node.stmt, kind, name):
                    settled.add(node.index)
            leaked = False
            for acquire_index in by_stmt.get(id(stmt), []):
                # Only normal successors: if the acquiring call raised,
                # nothing was acquired.
                reach = reachable(
                    cfg.succ[acquire_index],
                    cfg.successors,
                    barrier=lambda index, blocked=frozenset(settled): (
                        index in blocked
                    ),
                )
                if cfg.exit_normal in reach or cfg.exit_raised in reach:
                    leaked = True
            if not leaked:
                continue
            findings.append(
                Finding(
                    rule="F002",
                    severity=Severity.ERROR,
                    message=(
                        f"{kind} '{name}' acquired in {info.name}() may "
                        "leak: a path (normal or exceptional) reaches the "
                        "function exit without releasing or handing it off"
                    ),
                    file=info.file,
                    line=stmt.lineno,
                    location=_short(info),
                    hint=(
                        "wrap the post-acquisition code in try/finally "
                        "and settle the resource in the finally block"
                    ),
                )
            )
    return findings


# --------------------------------------------------------------------------
# F003 — no epoch bump after an observed cancellation
# --------------------------------------------------------------------------


def _bump_closure(program: Program) -> set[str]:
    seeds = {
        info.qualname
        for info in program.functions.values()
        if info.cls == "FeedbackStore"
        and info.name in {"_bump", "bump", "bump_epoch"}
    }
    return propagate(seeds, program.reverse_edges())


#: Exception names whose handlers F003 inspects.  ``ReoptRequested`` is
#: the typed mid-query cancellation: its handlers are *allowed* to
#: harvest partial lower bounds (``record_partial_observations`` never
#: reaches ``_bump`` — it advances the partial sequence only), but an
#: exact-epoch bump on that path would mark cached plans stale from a
#: run that never finished.
_CANCELLATION_EXC_NAMES = frozenset({"QueryCancelled", "ReoptRequested"})


def _handler_catches_cancellation(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id in _CANCELLATION_EXC_NAMES
        for node in ast.walk(handler.type)
    ) or any(
        isinstance(node, ast.Attribute)
        and node.attr in _CANCELLATION_EXC_NAMES
        for node in ast.walk(handler.type)
    )


def check_no_bump_after_cancellation(program: Program) -> list[Finding]:
    """F003: ``except QueryCancelled``/``except ReoptRequested`` handlers
    in ``service/`` and ``reopt/`` must not reach an epoch-bumping
    function (partial harvests ride the epoch-free ingest instead)."""
    bumpers = _bump_closure(program)
    if not bumpers:
        return []
    findings: list[Finding] = []
    for info in program.functions.values():
        slashed = f"/{info.file}"
        if "/service/" not in slashed and "/reopt/" not in slashed:
            continue
        targets_by_call = {
            id(site.node): site.targets for site in info.calls
        }
        for stmt in iter_statements(info.node.body):
            if not isinstance(stmt, ast.Try):
                continue
            for handler in stmt.handlers:
                if not _handler_catches_cancellation(handler):
                    continue
                for inner in iter_statements(handler.body):
                    for call in iter_stmt_calls(inner):
                        for target in targets_by_call.get(id(call), ()):
                            if target not in bumpers:
                                continue
                            label = target.rsplit("::", 1)[-1]
                            findings.append(
                                Finding(
                                    rule="F003",
                                    severity=Severity.ERROR,
                                    message=(
                                        f"{label}() reachable from an "
                                        "except-QueryCancelled handler in "
                                        f"{info.name}() — a cancelled "
                                        "run's partial page counts would "
                                        "bump the feedback epoch"
                                    ),
                                    file=info.file,
                                    line=call.lineno,
                                    location=_short(info),
                                    hint=(
                                        "record feedback only on the "
                                        "successful path; cancelled runs "
                                        "must leave the store untouched"
                                    ),
                                )
                            )
    return findings
