"""Tier 3 — interprocedural dataflow analysis (C- and F-rules).

Where Tier 2 (:mod:`repro.analysis.codelint`) checks one line at a time,
this tier builds a call graph and per-function CFGs over ``ast`` and
answers *path* questions: can these two locks be taken in opposite
orders, does every path through a drive loop hit a checkpoint, can an
admission slot leak on an exceptional path.  See
:mod:`repro.analysis.dataflow.concurrency` and
:mod:`repro.analysis.dataflow.flowrules` for the rule semantics and
:mod:`repro.analysis.dataflow.callgraph` for the resolution strategy.

Run it with ``python -m repro.analysis --dataflow`` (or
``python -m repro analyze --dataflow``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from repro.analysis.codelint import _suppressed_rules, iter_python_files
from repro.analysis.dataflow.callgraph import Program, build_program
from repro.analysis.dataflow.concurrency import (
    check_blocking_in_service,
    check_lock_across_await,
    check_lock_order,
)
from repro.analysis.dataflow.flowrules import (
    check_drive_loop_coverage,
    check_no_bump_after_cancellation,
    check_resource_release,
)
from repro.analysis.findings import Finding
from repro.common.errors import AnalysisError

#: Rule id -> one-line description (the CLI and docs render this catalog).
DATAFLOW_RULES: dict[str, str] = {
    "C001": "no cycles in the lock-acquisition-order graph (deadlock)",
    "C002": "no threading lock held across an await",
    "C003": "no blocking call inside a service coroutine without executor hop",
    "F001": "every charging drive loop in exec/ reaches checkpoint() on all paths",
    "F002": "every admission slot / IOContext settles on all paths",
    "F003": "no epoch bump reachable from a cancellation handler (incl. ReoptRequested)",
}

_CHECKS = {
    "C001": check_lock_order,
    "C002": check_lock_across_await,
    "C003": check_blocking_in_service,
    "F001": check_drive_loop_coverage,
    "F002": check_resource_release,
    "F003": check_no_bump_after_cancellation,
}


def analyze_sources(
    sources: Mapping[str, str],
    rules: Optional[Iterable[str]] = None,
    apply_suppressions: bool = True,
) -> list[Finding]:
    """Run the Tier-3 rules over a set of sources (label -> text).

    The whole mapping is analyzed as one program: call edges and lock
    identities resolve across files.  Inline ``lint: disable`` comments
    suppress findings unless ``apply_suppressions`` is False
    (the unused-suppression audit needs the raw set).
    """
    selected = list(DATAFLOW_RULES) if rules is None else list(rules)
    unknown = [rule for rule in selected if rule not in DATAFLOW_RULES]
    if unknown:
        raise AnalysisError(
            f"unknown dataflow rule(s) {unknown}; "
            f"known: {sorted(DATAFLOW_RULES)}"
        )
    program: Program = build_program(sources)
    findings: list[Finding] = []
    for rule in selected:
        findings.extend(_CHECKS[rule](program))
    if apply_suppressions:
        suppressions = {
            file: _suppressed_rules(text) for file, text in sources.items()
        }
        findings = [
            finding
            for finding in findings
            if finding.rule
            not in suppressions.get(finding.file, {}).get(
                finding.line, set()
            )
        ]
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule))


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the Tier-3 rules over every ``.py`` file under ``paths``."""
    sources: dict[str, str] = {}
    for file_path in iter_python_files(paths):
        sources[str(file_path)] = file_path.read_text(encoding="utf-8")
    return analyze_sources(sources, rules)


__all__ = [
    "DATAFLOW_RULES",
    "analyze_paths",
    "analyze_sources",
    "build_program",
]
