"""Tier-3 concurrency sanitizer: C001 (lock-order cycles), C002 (lock
held across ``await``), C003 (blocking call inside a service coroutine).

The engine's concurrency contract (docs/architecture.md) is small —
per-structure locks with no nesting across structures except the two
documented chains — but nothing enforced it until now.  These rules
mechanise it:

* **C001** builds the *lock-acquisition-order graph*: an edge L1 → L2
  whenever some function acquires L2 (directly or via a resolved call
  chain) while holding L1.  A cycle means two executions can wait on
  each other — a potential deadlock.  Re-entrant acquisition of an
  ``RLock`` is legal and skipped; re-entrant acquisition of a plain
  ``Lock``/``Condition`` is an immediate self-deadlock.
* **C002** flags a *threading* lock held across an ``await``: the
  coroutine parks with the lock held, and any worker thread touching
  that lock stalls the executor pool for the duration of the await.
* **C003** flags calls inside ``service/`` coroutines that resolve —
  transitively, through sync call edges — to a blocking operation
  (``Session.run``/``Engine.execute``-class work, ``time.sleep``, file
  I/O, ``Condition.wait``) without an executor hop.  Handing a function
  *reference* to ``loop.run_in_executor`` is the sanctioned idiom and
  creates no call edge, so it is naturally clean.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.dataflow.callgraph import (
    FunctionInfo,
    Program,
    dotted_chain,
    iter_own_statements,
    iter_stmt_calls,
)
from repro.analysis.dataflow.worklist import propagate
from repro.analysis.findings import Finding, Severity

#: (owner, attribute) — owner is a class name for ``self.x`` locks or a
#: ``Class.method`` qualifier for function-local locks.
LockId = tuple[str, str]

_LOCK_CTORS = {"Lock": "lock", "RLock": "rlock", "Condition": "condition"}

#: Known CPU/IO-heavy synchronous entry points that must never run on
#: the event loop (the paper's execution feedback comes from running
#: whole plans; these are the "run a plan" doors).
_BLOCKING_SEEDS: frozenset[tuple[str, str]] = frozenset(
    {
        ("Session", "run"),
        ("Session", "run_plan"),
        ("Engine", "execute"),
        ("Engine", "run_serial"),
        ("Engine", "run_concurrent"),
        ("Engine", "shutdown"),
    }
)

_PATH_IO_LEAVES = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _in_dir(file: str, directory: str) -> bool:
    return f"/{directory}/" in f"/{file}"


def _lock_name(lock: LockId) -> str:
    return f"{lock[0]}.{lock[1]}"


@dataclass
class _LockEdge:
    """First witness for ``held → acquired`` in the lock-order graph."""

    held: LockId
    acquired: LockId
    file: str
    line: int
    where: str


class _LockIndex:
    """Lock identities and per-function acquisition facts."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: lock id -> kind ("lock" | "rlock" | "condition" | "unknown")
        self.kinds: dict[LockId, str] = {}
        #: function qualname -> locally constructed locks (name -> id)
        self.local_locks: dict[str, dict[str, LockId]] = {}
        #: function qualname -> every lock it acquires directly
        self.direct_acquires: dict[str, set[LockId]] = {}
        for cls in program.classes.values():
            for attr, kind in cls.lock_attrs.items():
                self.kinds[(cls.name, attr)] = kind
        for info in program.functions.values():
            self._index_function(info)

    def _index_function(self, info: FunctionInfo) -> None:
        owner = info.qualname.rsplit("::", 1)[-1]
        locals_here: dict[str, LockId] = {}
        statements = list(iter_own_statements(info.node))
        for stmt in statements:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            chain = dotted_chain(stmt.value.func)
            leaf = chain[-1] if chain else None
            if leaf in _LOCK_CTORS:
                lock: LockId = (owner, stmt.targets[0].id)
                locals_here[stmt.targets[0].id] = lock
                self.kinds[lock] = _LOCK_CTORS[leaf]
        self.local_locks[info.qualname] = locals_here
        acquired: set[LockId] = set()
        for stmt in statements:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired.update(self.locks_in(stmt, info))
        self.direct_acquires[info.qualname] = acquired

    def locks_in(
        self, stmt: "ast.With | ast.AsyncWith", info: FunctionInfo
    ) -> list[LockId]:
        """Lock identities acquired by a ``with`` statement's items."""
        acquired: list[LockId] = []
        for item in stmt.items:
            chain = dotted_chain(item.context_expr)
            if chain is None:
                continue
            if len(chain) == 2 and chain[0] == "self" and info.cls is not None:
                attr = chain[1]
                lock: LockId = (info.cls, attr)
                if lock in self.kinds or "lock" in attr.lower():
                    self.kinds.setdefault(lock, "unknown")
                    acquired.append(lock)
            elif len(chain) == 1:
                local = self.local_locks.get(info.qualname, {}).get(chain[0])
                if local is not None:
                    acquired.append(local)
                elif "lock" in chain[0].lower():
                    lock = (info.qualname.rsplit("::", 1)[-1], chain[0])
                    self.kinds.setdefault(lock, "unknown")
                    acquired.append(lock)
        return acquired


def _acquire_closure(
    program: Program, index: _LockIndex
) -> dict[str, set[LockId]]:
    """Fixpoint: locks each function may acquire, transitively."""
    closure = {
        name: set(locks) for name, locks in index.direct_acquires.items()
    }
    reverse = program.reverse_edges()
    work: deque[str] = deque(closure)
    while work:
        name = work.popleft()
        combined = set(index.direct_acquires.get(name, set()))
        for callee in program.edges.get(name, set()):
            combined |= closure.get(callee, set())
        if combined != closure[name]:
            closure[name] = combined
            work.extend(reverse.get(name, set()))
    return closure


def _collect_lock_edges(
    program: Program, index: _LockIndex, closure: dict[str, set[LockId]]
) -> tuple[dict[tuple[LockId, LockId], _LockEdge], list[Finding]]:
    """Walk every function with a held-lock stack, recording order edges.

    Returns the edge map plus immediate findings for re-entrant
    acquisition of non-reentrant locks (a self-deadlock needs no cycle
    search).
    """
    edges: dict[tuple[LockId, LockId], _LockEdge] = {}
    findings: list[Finding] = []

    def record(
        held: LockId, acquired: LockId, info: FunctionInfo, line: int
    ) -> None:
        if held == acquired:
            if index.kinds.get(held) == "rlock":
                return
            findings.append(
                Finding(
                    rule="C001",
                    severity=Severity.ERROR,
                    message=(
                        f"non-reentrant lock {_lock_name(held)} may be "
                        f"re-acquired while already held in {info.name}() "
                        "— self-deadlock"
                    ),
                    file=info.file,
                    line=line,
                    location=info.qualname.rsplit("::", 1)[-1],
                )
            )
            return
        edges.setdefault(
            (held, acquired),
            _LockEdge(
                held=held,
                acquired=acquired,
                file=info.file,
                line=line,
                where=info.qualname.rsplit("::", 1)[-1],
            ),
        )

    def handle_calls(
        stmt: ast.stmt,
        info: FunctionInfo,
        held: list[LockId],
        sites: dict[int, tuple[str, ...]],
    ) -> None:
        for call in iter_stmt_calls(stmt):
            for target in sites.get(id(call), ()):
                for lock in closure.get(target, set()):
                    for holder in held:
                        record(holder, lock, info, call.lineno)

    def walk(
        stmts: Sequence[ast.stmt],
        info: FunctionInfo,
        held: list[LockId],
        sites: dict[int, tuple[str, ...]],
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                if held:
                    handle_calls(stmt, info, held, sites)
                acquired = index.locks_in(stmt, info)
                for lock in acquired:
                    for holder in held:
                        record(holder, lock, info, stmt.lineno)
                walk(stmt.body, info, held + acquired, sites)
                continue
            if held:
                handle_calls(stmt, info, held, sites)
            for field_name in ("body", "orelse", "finalbody"):
                walk(getattr(stmt, field_name, []) or [], info, held, sites)
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body, info, held, sites)

    for info in program.functions.values():
        sites = {id(site.node): site.targets for site in info.calls}
        walk(info.node.body, info, [], sites)
    return edges, findings


def _strongly_connected(
    nodes: Iterable[LockId], succ: dict[LockId, set[LockId]]
) -> list[list[LockId]]:
    """Tarjan's SCC, iteratively; only components of size > 1 matter."""
    index_of: dict[LockId, int] = {}
    low: dict[LockId, int] = {}
    on_stack: set[LockId] = set()
    stack: list[LockId] = []
    components: list[list[LockId]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[LockId, Optional[LockId], Iterable[LockId]]] = [
            (root, None, iter(succ.get(root, set())))
        ]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, parent, successors_iter = work[-1]
            advanced = False
            for nxt in successors_iter:
                if nxt not in index_of:
                    index_of[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, node, iter(succ.get(nxt, set()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index_of[nxt])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: list[LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(component)
            work.pop()
            if parent is not None:
                low[parent] = min(low[parent], low[node])
    return components


def check_lock_order(program: Program) -> list[Finding]:
    """C001: cycles in the lock-acquisition-order graph."""
    index = _LockIndex(program)
    closure = _acquire_closure(program, index)
    edges, findings = _collect_lock_edges(program, index, closure)
    succ: dict[LockId, set[LockId]] = {}
    for held, acquired in edges:
        succ.setdefault(held, set()).add(acquired)
        succ.setdefault(acquired, set())
    for component in _strongly_connected(sorted(succ), succ):
        members = set(component)
        witnesses = sorted(
            (
                edge
                for (held, acquired), edge in edges.items()
                if held in members and acquired in members
            ),
            key=lambda edge: (edge.file, edge.line),
        )
        names = " -> ".join(
            _lock_name(lock) for lock in sorted(members)
        )
        detail = "; ".join(
            f"{_lock_name(edge.held)} held while taking "
            f"{_lock_name(edge.acquired)} at {edge.file}:{edge.line}"
            for edge in witnesses[:4]
        )
        first = witnesses[0]
        findings.append(
            Finding(
                rule="C001",
                severity=Severity.ERROR,
                message=(
                    f"cycle in lock-acquisition order over {{{names}}} — "
                    f"potential deadlock ({detail})"
                ),
                file=first.file,
                line=first.line,
                location=first.where,
            )
        )
    return findings


def _contains_await(stmts: Sequence[ast.stmt]) -> bool:
    """Whether any statement awaits, ignoring nested function bodies."""
    for stmt in stmts:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                if _contains_await([child]):
                    return True
            elif any(
                isinstance(grand, ast.Await) for grand in ast.walk(child)
            ):
                return True
    return False


def check_lock_across_await(program: Program) -> list[Finding]:
    """C002: a threading lock held across an ``await``."""
    index = _LockIndex(program)
    findings: list[Finding] = []
    for info in program.functions.values():
        if not info.is_async:
            continue
        for stmt in iter_own_statements(info.node):
            if not isinstance(stmt, ast.With):
                continue
            node = stmt
            if not index.locks_in(node, info):
                continue
            if not _contains_await(node.body):
                continue
            findings.append(
                Finding(
                    rule="C002",
                    severity=Severity.ERROR,
                    message=(
                        f"threading lock held across await in "
                        f"{info.name}() — the coroutine parks while "
                        "worker threads contend for the lock"
                    ),
                    file=info.file,
                    line=node.lineno,
                    location=info.qualname.rsplit("::", 1)[-1],
                )
            )
    return findings


def _is_blocking_primitive(
    call: ast.Call, info: FunctionInfo, program: Program
) -> Optional[str]:
    """Name of the blocking primitive this call performs, if any."""
    chain = dotted_chain(call.func)
    if chain is None:
        return None
    if chain == ("time", "sleep"):
        return "time.sleep"
    if chain == ("open",):
        return "open"
    if chain[0] == "subprocess":
        return ".".join(chain)
    if chain[-1] in _PATH_IO_LEAVES and len(chain) >= 2:
        return ".".join(chain[-2:])
    if chain[-1] == "shutdown":
        for keyword in call.keywords:
            if (
                keyword.arg == "wait"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return ".".join(chain) + "(wait=True)"
    if (
        chain[-1] in {"wait", "wait_for", "acquire"}
        and len(chain) == 3
        and chain[0] == "self"
        and info.cls is not None
    ):
        cls = program.classes.get(info.cls)
        if cls is not None and chain[1] in cls.lock_attrs:
            return ".".join(chain[1:])
    return None


def _blocking_closure(program: Program) -> dict[str, str]:
    """Functions that (transitively, via sync callers) perform blocking
    work, mapped to a human-readable reason."""
    reasons: dict[str, str] = {}
    for cls_name, method_name in _BLOCKING_SEEDS:
        qualname = program.method(cls_name, method_name)
        if qualname is not None:
            reasons[qualname] = f"{cls_name}.{method_name}"
    for info in program.functions.values():
        if info.is_async:
            continue
        for site in info.calls:
            primitive = _is_blocking_primitive(site.node, info, program)
            if primitive is not None:
                reasons.setdefault(info.qualname, primitive)
                break
    sync_reverse: dict[str, set[str]] = {}
    for callee, callers in program.reverse_edges().items():
        sync_reverse[callee] = {
            caller
            for caller in callers
            if not program.functions[caller].is_async
        }
    for member in propagate(set(reasons), sync_reverse):
        if member not in reasons:
            for callee in program.edges.get(member, set()):
                if callee in reasons:
                    reasons[member] = reasons[callee]
                    break
            else:
                reasons[member] = "blocking callee"
    return reasons


def check_blocking_in_service(program: Program) -> list[Finding]:
    """C003: blocking work reachable from a service coroutine."""
    blocking = _blocking_closure(program)
    findings: list[Finding] = []
    for info in program.functions.values():
        if not info.is_async or not _in_dir(info.file, "service"):
            continue
        seen_lines: set[int] = set()
        for site in info.calls:
            reason: Optional[str] = None
            primitive = _is_blocking_primitive(site.node, info, program)
            if primitive is not None:
                reason = primitive
            else:
                for target in site.targets:
                    if target in blocking:
                        label = target.rsplit("::", 1)[-1]
                        reason = f"{label} (via {blocking[target]})"
                        break
            if reason is None or site.line in seen_lines:
                continue
            seen_lines.add(site.line)
            findings.append(
                Finding(
                    rule="C003",
                    severity=Severity.ERROR,
                    message=(
                        f"blocking call {reason} reachable inside service "
                        f"coroutine {info.name}() without an executor hop"
                    ),
                    file=info.file,
                    line=site.line,
                    location=info.qualname.rsplit("::", 1)[-1],
                    hint=(
                        "hand the callable to loop.run_in_executor(...) "
                        "instead of calling it on the event loop"
                    ),
                )
            )
    return findings
