"""Shared diagnostic core of the static-analysis subsystem.

Both analysis tiers — the plan-tree linter (:mod:`repro.analysis.planlint`)
and the codebase invariant checker (:mod:`repro.analysis.codelint`) — emit
:class:`Finding` records through this module, so one reporting path (text
and JSON) serves both.  A finding names the rule that fired (``P001`` …
``P006`` for plan rules, ``R001`` … ``R005`` for code rules), a severity,
a location (file:line for code, a plan-tree path for plans), and a fix
hint.  The rule catalog with rationale lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from enum import Enum
from typing import Any, Iterable, Sequence


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings indicate a broken invariant (strict mode raises /
    exits non-zero on them); ``WARNING`` findings are suspicious but not
    provably wrong.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation, produced by either analysis tier."""

    rule: str
    severity: Severity
    message: str
    #: Source file for code findings; empty for plan findings.
    file: str = ""
    #: 1-based source line for code findings; 0 for plan findings.
    line: int = 0
    #: Plan-tree path (``CountPlan/IndexSeekPlan``) for plan findings.
    location: str = ""
    #: A short suggestion for how to fix or suppress the finding.
    hint: str = ""

    def where(self) -> str:
        """Human-readable location: ``file:line`` or the plan path."""
        if self.file:
            return f"{self.file}:{self.line}"
        return self.location or "<plan>"

    def render(self) -> str:
        text = f"{self.where()}: {self.severity.value} {self.rule}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["severity"] = self.severity.value
        return payload


def errors(findings: Iterable[Finding]) -> list[Finding]:
    return [f for f in findings if f.severity is Severity.ERROR]


def render_findings(findings: Sequence[Finding]) -> str:
    """Multi-line text report, one finding per line, errors first."""
    ordered = sorted(
        findings, key=lambda f: (f.severity is not Severity.ERROR, f.where(), f.rule)
    )
    return "\n".join(f.render() for f in ordered)


def findings_to_json(findings: Sequence[Finding]) -> str:
    """Stable JSON encoding (a list of objects), for tooling and CI."""
    return json.dumps([f.to_dict() for f in findings], indent=2, sort_keys=True)


def summarize(findings: Sequence[Finding]) -> str:
    """The one-line summary printed by the CLI's default text mode."""
    files = {f.file for f in findings if f.file}
    plans = {f.location for f in findings if not f.file}
    scopes = len(files) + len(plans)
    noun = "file" if len(plans) == 0 else "location"
    error_count = len(errors(findings))
    return (
        f"{len(findings)} finding(s) ({error_count} error(s)) "
        f"across {scopes} {noun}(s)"
    )
