"""Command line for the static-analysis subsystem.

``python -m repro.analysis [--json] [--strict] [--rules ...] [paths]``
runs the Tier-2 codebase linter over the given files/directories (default
``src/repro``).  ``--plans`` additionally exercises the Tier-1 plan linter
by optimizing a small synthetic workload and linting every candidate plan
the optimizer produces — a smoke check that the optimizer's output obeys
the plan invariants end to end.  ``--dataflow`` additionally runs the
Tier-3 interprocedural rules (call graph + CFG reachability): concurrency
sanitizers C001-C003 and cancellation/resource flow rules F001-F003.

``--changed-only`` narrows the source-level tiers (2 and 3) to files that
differ from ``--changed-base`` (default ``HEAD``) according to git — the
fast pre-commit mode.  When git is unavailable the flag degrades to a
full-repo run rather than silently checking nothing.

Suppression hygiene: any run that includes rule R010 (the default) audits
``# lint: disable=...`` comments and reports, at warning severity, those
that name an unknown rule id or that suppressed nothing during this run.
Suppressions for rules the run did *not* check (a ``--rules`` subset, or
Tier-3 ids without ``--dataflow``) are dormant, not unused, and stay
silent.

Exit status: ``0`` when clean; ``1`` when any error-severity finding (or,
with ``--strict``, any finding at all) was produced; ``2`` on bad usage.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.analysis.codelint import (
    CODE_RULES,
    _suppressed_rules,
    applicable_code_rules,
    iter_python_files,
    lint_source_raw,
)
from repro.analysis.dataflow import DATAFLOW_RULES, analyze_sources
from repro.analysis.findings import (
    Finding,
    Severity,
    errors,
    findings_to_json,
    render_findings,
    summarize,
)
from repro.analysis.planlint import PLAN_RULES, lint_plan
from repro.common.errors import AnalysisError

_RuleSplit = tuple[Optional[list[str]], Optional[list[str]], Optional[list[str]]]


def _split_rules(spec: Optional[str]) -> _RuleSplit:
    """``"R001,P002,C003"`` -> (code, plan, dataflow); ``None`` -> all."""
    if spec is None:
        return None, None, None
    requested = [part.strip() for part in spec.split(",") if part.strip()]
    known = set(CODE_RULES) | set(PLAN_RULES) | set(DATAFLOW_RULES)
    unknown = [r for r in requested if r not in known]
    if unknown:
        raise AnalysisError(f"unknown rule(s) {unknown}; known: {sorted(known)}")
    return (
        [r for r in requested if r in CODE_RULES],
        [r for r in requested if r in PLAN_RULES],
        [r for r in requested if r in DATAFLOW_RULES],
    )


def _changed_files(base: str) -> Optional[set[Path]]:
    """Absolute paths of files differing from ``base``, or None without git.

    ``git diff --name-only <base>`` compares the *working tree* against the
    base commit, so staged and unstaged edits are both included — the set a
    pre-commit hook actually wants.
    """
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        (Path(root) / line.strip()).resolve()
        for line in diff.stdout.splitlines()
        if line.strip()
    }


def _audit_suppressions(
    sources: Mapping[str, str],
    checked: Mapping[str, set[str]],
    used: set[tuple[str, int, str]],
) -> list[Finding]:
    """R010: flag suppression comments that are unknown or did nothing.

    A suppression is *unused* only relative to the rules this run checked
    for that file; ids outside the run's scope are dormant and silent.
    R010 findings themselves honour a same-line ``disable=R010``.
    """
    known = set(CODE_RULES) | set(PLAN_RULES) | set(DATAFLOW_RULES) | {"R000"}
    findings: list[Finding] = []
    for label, source in sources.items():
        for line, rules in _suppressed_rules(source).items():
            if "R010" in rules:
                continue
            for rule in sorted(rules):
                if rule not in known:
                    message = f"suppression names unknown rule id {rule!r}"
                    hint = f"known rule ids: {', '.join(sorted(known))}"
                elif rule in checked.get(label, set()) and (
                    label,
                    line,
                    rule,
                ) not in used:
                    message = f"suppression for {rule} matched no finding"
                    hint = (
                        "the code is clean under this rule; remove the "
                        "stale # lint: disable comment"
                    )
                else:
                    continue
                findings.append(
                    Finding(
                        rule="R010",
                        severity=Severity.WARNING,
                        message=message,
                        file=label,
                        line=line,
                        hint=hint,
                    )
                )
    return findings


def _analyze_sources(
    paths: Sequence[str],
    code_rules: Optional[list[str]],
    flow_rules: Optional[list[str]],
    run_dataflow: bool,
    changed_only: bool,
    changed_base: str,
) -> list[Finding]:
    """Run the source-level tiers (2 and 3) with shared suppression logic."""
    files = iter_python_files(paths)
    narrowed = False
    if changed_only:
        changed = _changed_files(changed_base)
        if changed is None:
            print(
                "note: --changed-only needs git; checking all files instead",
                file=sys.stderr,
            )
        else:
            files = [f for f in files if f.resolve() in changed]
            narrowed = True
    sources = {str(f): f.read_text(encoding="utf-8") for f in files}

    run_codelint = code_rules is None or bool(code_rules)
    raw: list[Finding] = []
    checked: dict[str, set[str]] = {label: set() for label in sources}
    if run_codelint:
        for label, source in sources.items():
            applicable = applicable_code_rules(label, code_rules)
            checked[label].update(applicable)
            if applicable:
                raw.extend(lint_source_raw(source, label, code_rules))
    if run_dataflow:
        raw.extend(analyze_sources(sources, flow_rules, apply_suppressions=False))
        if not narrowed:
            # A narrowed file set is a partial program: cross-file call
            # edges are missing, so a dataflow suppression that matched
            # nothing may simply lack its evidence.  Only whole runs may
            # call a C/F suppression unused.
            flow_checked = set(DATAFLOW_RULES if flow_rules is None else flow_rules)
            for label in checked:
                checked[label].update(flow_checked)

    findings: list[Finding] = []
    used: set[tuple[str, int, str]] = set()
    suppression_maps = {
        label: _suppressed_rules(source) for label, source in sources.items()
    }
    for finding in raw:
        per_line = suppression_maps.get(finding.file, {})
        if finding.rule in per_line.get(finding.line, set()):
            used.add((finding.file, finding.line, finding.rule))
        else:
            findings.append(finding)
    if any("R010" in rules for rules in checked.values()):
        findings.extend(_audit_suppressions(sources, checked, used))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def _lint_sample_plans(plan_rules: Optional[list[str]]) -> list[Finding]:
    """Optimize a tiny synthetic workload and lint every candidate plan."""
    from repro.lifecycle.plan import build_optimizer
    from repro.workloads import build_synthetic_database
    from repro.workloads.queries import single_table_workload

    database = build_synthetic_database(num_rows=2_000, seed=7)
    optimizer = build_optimizer(database)
    findings: list[Finding] = []
    for generated in single_table_workload(
        database, "t", ["c2", "c3"], queries_per_column=2, seed=7
    ):
        for candidate in optimizer.candidates(generated.query):
            findings.extend(
                lint_plan(
                    candidate,
                    database,
                    injections=optimizer.injections,
                    rules=plan_rules,
                )
            )
    return findings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Three-tier static analysis: codebase invariants "
        "(R-rules), plan-tree invariants (P-rules, --plans), and "
        "interprocedural dataflow rules (C/F-rules, --dataflow).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any finding (default: errors only)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rule ids, e.g. R001,P005,C001; "
        "naming a C/F rule runs the dataflow tier for it even without "
        "--dataflow",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="also lint every candidate plan of a small synthetic workload",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the Tier-3 interprocedural dataflow rules "
        "(C001-C003, F001-F003)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="restrict source checks to files that differ from "
        "--changed-base per git (falls back to all files without git)",
    )
    parser.add_argument(
        "--changed-base",
        default="HEAD",
        metavar="REF",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code_rules, plan_rules, flow_rules = _split_rules(args.rules)
        # With an explicit --rules list, the list is authoritative: C/F ids
        # opt in to the dataflow tier, their absence opts out even under
        # --dataflow.
        run_dataflow = args.dataflow if args.rules is None else bool(flow_rules)
        findings: list[Finding] = []
        if code_rules is None or code_rules or run_dataflow:
            findings.extend(
                _analyze_sources(
                    args.paths,
                    code_rules,
                    flow_rules,
                    run_dataflow,
                    args.changed_only,
                    args.changed_base,
                )
            )
        if args.plans and (plan_rules is None or plan_rules):
            findings.extend(_lint_sample_plans(plan_rules))
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(findings_to_json(findings))
        else:
            if findings:
                print(render_findings(findings))
            print(summarize(findings))
        sys.stdout.flush()
    except BrokenPipeError:
        # The consumer (`... | head`, `... | jq -e`) closed the pipe early;
        # the findings still determine the exit status.  Detach stdout so
        # interpreter shutdown does not re-raise on the final flush.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
    if args.strict:
        return 1 if findings else 0
    return 1 if errors(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
