"""Command line for the static-analysis subsystem.

``python -m repro.analysis [--json] [--strict] [--rules ...] [paths]``
runs the Tier-2 codebase linter over the given files/directories (default
``src/repro``).  ``--plans`` additionally exercises the Tier-1 plan linter
by optimizing a small synthetic workload and linting every candidate plan
the optimizer produces — a smoke check that the optimizer's output obeys
the plan invariants end to end.

Exit status: ``0`` when clean; ``1`` when any error-severity finding (or,
with ``--strict``, any finding at all) was produced; ``2`` on bad usage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.codelint import CODE_RULES, lint_paths
from repro.analysis.findings import (
    Finding,
    errors,
    findings_to_json,
    render_findings,
    summarize,
)
from repro.analysis.planlint import PLAN_RULES, lint_plan
from repro.common.errors import AnalysisError


def _split_rules(spec: Optional[str]) -> tuple[Optional[list[str]], Optional[list[str]]]:
    """``"R001,P002"`` -> (code rules, plan rules); ``None`` -> all rules."""
    if spec is None:
        return None, None
    requested = [part.strip() for part in spec.split(",") if part.strip()]
    unknown = [r for r in requested if r not in CODE_RULES and r not in PLAN_RULES]
    if unknown:
        raise AnalysisError(
            f"unknown rule(s) {unknown}; known: "
            f"{sorted(CODE_RULES) + sorted(PLAN_RULES)}"
        )
    return (
        [r for r in requested if r in CODE_RULES],
        [r for r in requested if r in PLAN_RULES],
    )


def _lint_sample_plans(plan_rules: Optional[list[str]]) -> list[Finding]:
    """Optimize a tiny synthetic workload and lint every candidate plan."""
    from repro.lifecycle.plan import build_optimizer
    from repro.workloads import build_synthetic_database
    from repro.workloads.queries import single_table_workload

    database = build_synthetic_database(num_rows=2_000, seed=7)
    optimizer = build_optimizer(database)
    findings: list[Finding] = []
    for generated in single_table_workload(
        database, "t", ["c2", "c3"], queries_per_column=2, seed=7
    ):
        for candidate in optimizer.candidates(generated.query):
            findings.extend(
                lint_plan(
                    candidate,
                    database,
                    injections=optimizer.injections,
                    rules=plan_rules,
                )
            )
    return findings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Two-tier static analysis: codebase invariants (R001-R006) "
        "and plan-tree invariants (P001-P006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on any finding (default: errors only)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rule ids, e.g. R001,R003,P005",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="also lint every candidate plan of a small synthetic workload",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        code_rules, plan_rules = _split_rules(args.rules)
        findings: list[Finding] = []
        if code_rules is None or code_rules:
            findings.extend(lint_paths(args.paths, rules=code_rules))
        if args.plans and (plan_rules is None or plan_rules):
            findings.extend(_lint_sample_plans(plan_rules))
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(findings_to_json(findings))
        else:
            if findings:
                print(render_findings(findings))
            print(summarize(findings))
        sys.stdout.flush()
    except BrokenPipeError:
        # The consumer (`... | head`, `... | jq -e`) closed the pipe early;
        # the findings still determine the exit status.  Detach stdout so
        # interpreter shutdown does not re-raise on the final flush.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115
    if args.strict:
        return 1 if findings else 0
    return 1 if errors(findings) else 0


if __name__ == "__main__":
    sys.exit(main())
