"""Tier 1 — static linter over physical plan trees.

Runs between ``Optimizer.optimize()`` and :mod:`repro.core.planner`: every
plan the optimizer hands to the execution layer is checked against the
structural and estimate invariants the rest of the system silently assumes
(§III–V of the paper).  The rules:

========  =====================================================================
``P001``  structural integrity: children present, intersection has ≥ 2 legs,
          no node aliasing (a subtree reachable twice would double-charge
          monitors and the simulated clock)
``P002``  name resolution: tables, indexes, predicate/residual/join columns
          all resolve against the catalog; seek terms target the index's
          leading column
``P003``  seek-range sanity: lower bound ≤ upper bound; degenerate
          (empty) ranges flagged
``P004``  estimate sanity: ``estimated_rows`` / ``estimated_cost_ms`` /
          ``estimated_dpc`` finite and non-negative
``P005``  DPC consistency: estimated DPC ≤ the table's page count (a
          *distinct* page count can never exceed it, §II-A), and injection
          provenance: when the :class:`~repro.optimizer.injection.InjectionSet`
          carries a feedback value for a fetch expression the plan must
          record ``dpc_source="injected"`` — and must not claim it without
          one
``P006``  shape-key hygiene: ``signature()`` is stable across calls and no
          estimate or provenance annotation leaks into ``shape_key()`` —
          the harness detects plan changes by comparing signatures, so a
          leak would make every re-estimate look like a plan flip
========  =====================================================================

Findings surface through :mod:`repro.analysis.findings`;
:class:`repro.session.Session` runs this linter on every optimized plan and
raises :class:`~repro.common.errors.PlanLintError` in strict mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.catalog.catalog import Database
from repro.common.errors import AnalysisError, CatalogError, ExpressionError
from repro.optimizer.injection import InjectionSet
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    CountPlan,
    CoveringScanPlan,
    HashJoinPlan,
    IndexIntersectionPlan,
    IndexSeekPlan,
    InListSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    PlanNode,
    SeqScanPlan,
)
from repro.sql.predicates import Conjunction

#: Rule id -> one-line description (the CLI and docs render this catalog).
PLAN_RULES: dict[str, str] = {
    "P001": "plan tree is structurally sound (children present, no aliasing)",
    "P002": "tables, indexes and predicate columns resolve against the catalog",
    "P003": "seek lower bound <= upper bound",
    "P004": "estimated rows/cost/DPC are finite and non-negative",
    "P005": "estimated DPC <= table page count; injection provenance consistent",
    "P006": "signature() stable; no estimate leakage into shape_key()",
}

#: Valid ``dpc_source`` provenance tags (see PageCountEstimator).
_DPC_SOURCES = frozenset({"model", "injected", "dpc-histogram"})

_RELATIVE_TOLERANCE = 1e-9


@dataclass
class _Context:
    database: Database
    injections: Optional[InjectionSet]
    findings: list[Finding]

    def report(
        self,
        rule: str,
        location: str,
        message: str,
        hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                message=message,
                location=location,
                hint=hint,
            )
        )

    def table(self, name: str):
        """The catalog table, or None (P002 reports the miss)."""
        try:
            return self.database.table(name)
        except CatalogError:
            return None


# ----------------------------------------------------------------------
# P001 — structural integrity
# ----------------------------------------------------------------------
def _check_structure(ctx: _Context, nodes: list[tuple[str, PlanNode]]) -> None:
    seen_ids: set[int] = set()
    for path, node in nodes:
        if id(node) in seen_ids:
            ctx.report(
                "P001",
                path,
                "plan node is reachable through more than one parent",
                hint="plans must be trees; copy the shared subtree",
            )
        seen_ids.add(id(node))
        for index, child in enumerate(node.children()):
            if child is None:
                ctx.report(
                    "P001",
                    path,
                    f"child #{index} of {type(node).__name__} is None",
                )
        if isinstance(node, IndexIntersectionPlan) and len(node.legs) < 2:
            ctx.report(
                "P001",
                path,
                f"IndexIntersection has {len(node.legs)} leg(s); needs >= 2",
                hint="a one-leg intersection is an IndexSeekPlan",
            )


# ----------------------------------------------------------------------
# P002 — name resolution
# ----------------------------------------------------------------------
def _check_columns(
    ctx: _Context, path: str, table, expression: Conjunction, what: str
) -> None:
    for column in expression.columns():
        if not table.schema.has_column(column):
            ctx.report(
                "P002",
                path,
                f"{what} references unknown column "
                f"{table.name}.{column}",
            )


def _resolve_index(ctx: _Context, path: str, table, index_name: str):
    try:
        return table.index(index_name)
    except CatalogError:
        ctx.report(
            "P002",
            path,
            f"table {table.name} has no index {index_name!r}",
        )
        return None


def _check_seek_leg(
    ctx: _Context, path: str, table, index_name: str, seek_column: str
) -> None:
    index = _resolve_index(ctx, path, table, index_name)
    if index is not None and index.definition.leading_column != seek_column:
        ctx.report(
            "P002",
            path,
            f"seek term targets column {seek_column!r} but index "
            f"{index_name} leads on {index.definition.leading_column!r}",
        )


def _check_join_columns(ctx: _Context, path: str, node, tables: list[str]) -> None:
    for table_name in tables:
        try:
            column = node.join_predicate.column_for(table_name)
        except ExpressionError:
            ctx.report(
                "P002",
                path,
                f"table {table_name!r} does not participate in join "
                f"predicate {node.join_predicate.key()}",
            )
            continue
        table = ctx.table(table_name)
        if table is None:
            ctx.report("P002", path, f"unknown table {table_name!r}")
        elif not table.schema.has_column(column):
            ctx.report(
                "P002",
                path,
                f"join column {table_name}.{column} does not exist",
            )


def _check_resolution(ctx: _Context, nodes: list[tuple[str, PlanNode]]) -> None:
    for path, node in nodes:
        if isinstance(
            node,
            (
                SeqScanPlan,
                ClusteredRangeScanPlan,
                IndexSeekPlan,
                InListSeekPlan,
                IndexIntersectionPlan,
                CoveringScanPlan,
            ),
        ):
            table = ctx.table(node.table)
            if table is None:
                ctx.report("P002", path, f"unknown table {node.table!r}")
                continue
            if isinstance(node, SeqScanPlan):
                _check_columns(ctx, path, table, node.predicate, "scan predicate")
            elif isinstance(node, ClusteredRangeScanPlan):
                _check_columns(
                    ctx, path, table, Conjunction((node.range_term,)), "range term"
                )
                _check_columns(ctx, path, table, node.residual, "residual predicate")
            elif isinstance(node, IndexSeekPlan):
                _check_seek_leg(ctx, path, table, node.index_name, node.seek_term.column)
                _check_columns(ctx, path, table, node.residual, "residual predicate")
            elif isinstance(node, InListSeekPlan):
                _check_seek_leg(ctx, path, table, node.index_name, node.in_term.column)
                _check_columns(ctx, path, table, node.residual, "residual predicate")
            elif isinstance(node, IndexIntersectionPlan):
                for leg in node.legs:
                    _check_seek_leg(
                        ctx, path, table, leg.index_name, leg.seek_term.column
                    )
                _check_columns(ctx, path, table, node.residual, "residual predicate")
            elif isinstance(node, CoveringScanPlan):
                index = _resolve_index(ctx, path, table, node.index_name)
                if index is not None:
                    carried = set(index.definition.carried_columns())
                    outside = [
                        c for c in node.predicate.columns() if c not in carried
                    ]
                    if outside:
                        ctx.report(
                            "P002",
                            path,
                            f"covering index {node.index_name} does not carry "
                            f"columns {outside}",
                        )
        elif isinstance(node, INLJoinPlan):
            _check_join_columns(ctx, path, node, [node.outer_table, node.inner_table])
            inner = ctx.table(node.inner_table)
            if inner is not None:
                _check_columns(
                    ctx, path, inner, node.inner_residual, "inner residual"
                )
                if node.inner_index_name is not None:
                    try:
                        join_column = node.join_predicate.column_for(node.inner_table)
                    except ExpressionError:
                        join_column = None
                    if join_column is not None:
                        _check_seek_leg(
                            ctx, path, inner, node.inner_index_name, join_column
                        )
        elif isinstance(node, HashJoinPlan):
            _check_join_columns(ctx, path, node, [node.build_table, node.probe_table])
        elif isinstance(node, MergeJoinPlan):
            _check_join_columns(ctx, path, node, [node.outer_table, node.inner_table])


# ----------------------------------------------------------------------
# P003 — seek-range sanity
# ----------------------------------------------------------------------
def _check_bounds(
    ctx: _Context,
    path: str,
    low,
    high,
    low_inclusive: bool,
    high_inclusive: bool,
    label: str,
) -> None:
    if low is None or high is None:
        return
    try:
        inverted = low > high
    except TypeError:
        ctx.report(
            "P003",
            path,
            f"{label}: bounds {low!r} and {high!r} are not comparable",
        )
        return
    if inverted:
        ctx.report(
            "P003",
            path,
            f"{label}: lower bound {low!r} > upper bound {high!r}",
            hint="the seek would return no rows; bounds are likely swapped",
        )
    elif low == high and not (low_inclusive and high_inclusive):
        ctx.report(
            "P003",
            path,
            f"{label}: point range on {low!r} excludes its own endpoint",
            severity=Severity.WARNING,
        )


def _check_seek_ranges(ctx: _Context, nodes: list[tuple[str, PlanNode]]) -> None:
    for path, node in nodes:
        if isinstance(node, (IndexSeekPlan, ClusteredRangeScanPlan)):
            _check_bounds(
                ctx,
                path,
                node.low,
                node.high,
                node.low_inclusive,
                node.high_inclusive,
                "seek range",
            )
        elif isinstance(node, IndexIntersectionPlan):
            for position, leg in enumerate(node.legs):
                _check_bounds(
                    ctx,
                    path,
                    leg.low,
                    leg.high,
                    leg.low_inclusive,
                    leg.high_inclusive,
                    f"intersection leg #{position} ({leg.index_name})",
                )


# ----------------------------------------------------------------------
# P004 — estimate sanity
# ----------------------------------------------------------------------
def _check_estimates(ctx: _Context, nodes: list[tuple[str, PlanNode]]) -> None:
    for path, node in nodes:
        values = [
            ("estimated_rows", node.estimated_rows),
            ("estimated_cost_ms", node.estimated_cost_ms),
        ]
        if hasattr(node, "estimated_dpc"):
            values.append(("estimated_dpc", node.estimated_dpc))
        for name, value in values:
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                ctx.report(
                    "P004", path, f"{name} is not a finite number: {value!r}"
                )
            elif value < 0:
                ctx.report("P004", path, f"{name} is negative: {value!r}")


# ----------------------------------------------------------------------
# P005 — DPC consistency and injection provenance
# ----------------------------------------------------------------------
def _fetch_expression(node: PlanNode) -> Optional[Conjunction]:
    """The expression a fetch node's DPC was estimated for, if any."""
    if isinstance(node, IndexSeekPlan):
        return Conjunction((node.seek_term,))
    if isinstance(node, InListSeekPlan):
        return Conjunction((node.in_term,))
    if isinstance(node, IndexIntersectionPlan):
        return Conjunction(tuple(leg.seek_term for leg in node.legs))
    return None


def _check_dpc(ctx: _Context, nodes: list[tuple[str, PlanNode]]) -> None:
    for path, node in nodes:
        if not hasattr(node, "estimated_dpc"):
            continue
        source = node.dpc_source
        if source not in _DPC_SOURCES:
            ctx.report(
                "P005",
                path,
                f"unknown dpc_source {source!r}; expected one of "
                f"{sorted(_DPC_SOURCES)}",
            )
        table_name = (
            node.inner_table if isinstance(node, INLJoinPlan) else node.table
        )
        table = ctx.table(table_name)
        if table is not None and not isinstance(node.estimated_dpc, bool):
            pages = table.num_pages
            limit = pages * (1.0 + _RELATIVE_TOLERANCE)
            if (
                isinstance(node.estimated_dpc, (int, float))
                and math.isfinite(node.estimated_dpc)
                and node.estimated_dpc > limit
            ):
                ctx.report(
                    "P005",
                    path,
                    f"estimated_dpc {node.estimated_dpc:.1f} exceeds "
                    f"{table_name}'s page count {pages}",
                    hint="a distinct page count is bounded by the table size "
                    "(UB = min(n, P), §II-A)",
                )
        if ctx.injections is None:
            continue
        if isinstance(node, INLJoinPlan):
            injected = ctx.injections.join_page_count(
                node.inner_table, node.join_predicate
            )
        else:
            expression = _fetch_expression(node)
            injected = (
                ctx.injections.access_page_count(node.table, expression)
                if expression is not None
                else None
            )
        if injected is not None and source == "model":
            ctx.report(
                "P005",
                path,
                "an injected feedback DPC exists for this expression but the "
                "plan was costed with the analytical model",
                hint="dpc_source must record 'injected' when feedback "
                "overrode the Yao/Mackert-Lohman estimate",
            )
        elif injected is None and source == "injected":
            ctx.report(
                "P005",
                path,
                "dpc_source claims an injected value but the injection set "
                "has no entry for this expression",
                hint="injection provenance must be traceable",
            )


# ----------------------------------------------------------------------
# P006 — shape-key hygiene
# ----------------------------------------------------------------------
_PERTURBABLE = ("estimated_rows", "estimated_cost_ms", "estimated_dpc", "dpc_source")


def _check_shape(ctx: _Context, nodes: list[tuple[str, PlanNode]]) -> None:
    for path, node in nodes:
        first = node.signature()
        if node.signature() != first:
            ctx.report(
                "P006",
                path,
                "signature() is unstable: two consecutive calls disagree",
                hint="signatures must be pure functions of plan shape",
            )
            continue
        before = node.shape_key()
        saved = {
            name: getattr(node, name)
            for name in _PERTURBABLE
            if hasattr(node, name)
        }
        try:
            for name, value in saved.items():
                if name == "dpc_source":
                    setattr(node, name, "injected" if value != "injected" else "model")
                else:
                    setattr(node, name, float(value) + 1.0 if isinstance(value, (int, float)) else 1.0)
            if node.shape_key() != before:
                ctx.report(
                    "P006",
                    path,
                    "shape_key() depends on estimates or DPC provenance",
                    hint="shape_key() must exclude estimated_rows/cost/dpc and "
                    "dpc_source, or plan-change detection misfires on every "
                    "re-estimate",
                )
        finally:
            for name, value in saved.items():
                setattr(node, name, value)


_CHECKS: dict[str, Callable[[_Context, list[tuple[str, PlanNode]]], None]] = {
    "P001": _check_structure,
    "P002": _check_resolution,
    "P003": _check_seek_ranges,
    "P004": _check_estimates,
    "P005": _check_dpc,
    "P006": _check_shape,
}


def lint_plan(
    plan: PlanNode,
    database: Database,
    injections: Optional[InjectionSet] = None,
    rules: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint one plan tree; returns the (possibly empty) finding list.

    ``injections`` should be the set the producing optimizer ran with —
    it is what the P005 provenance check validates ``dpc_source`` against;
    pass ``None`` to skip provenance checking.  ``rules`` restricts the
    run to a subset of :data:`PLAN_RULES`.
    """
    selected = list(PLAN_RULES) if rules is None else list(rules)
    unknown = [r for r in selected if r not in PLAN_RULES]
    if unknown:
        raise AnalysisError(
            f"unknown plan-lint rule(s) {unknown}; known: {sorted(PLAN_RULES)}"
        )
    ctx = _Context(database=database, injections=injections, findings=[])
    nodes = list(plan.walk())
    for rule in selected:
        _CHECKS[rule](ctx, nodes)
    return ctx.findings
