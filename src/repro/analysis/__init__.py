"""Three-tier static analysis for the reproduction (see docs/static_analysis.md).

* **Tier 1** (:mod:`repro.analysis.planlint`) lints physical plan trees
  between the optimizer and the monitor planner: structural soundness,
  estimate sanity, DPC bounds and injection provenance, shape-key hygiene
  (rules ``P001``–``P006``).
* **Tier 2** (:mod:`repro.analysis.codelint`) checks repo-wide invariants
  over the source tree with ``ast``: seeded RNG discipline, buffer-pool
  accounting discipline, float-comparison and wall-clock hygiene (rules
  ``R001``–``R010``).
* **Tier 3** (:mod:`repro.analysis.dataflow`) reasons *across* functions:
  a call graph plus per-function CFGs power concurrency sanitizers
  (``C001``–``C003``: lock-order cycles, locks held across ``await``,
  blocking calls in service coroutines) and flow rules (``F001``–``F003``:
  cancellation-checkpoint coverage of drive loops, admission-slot and
  IOContext release on all paths, no epoch bumps after a cancellation).

All tiers report through :class:`repro.analysis.findings.Finding` and the
shared text/JSON renderers; ``python -m repro.analysis`` (or ``python -m
repro analyze``) runs them from the command line.
"""

from repro.analysis.codelint import CODE_RULES, lint_paths, lint_source
from repro.analysis.dataflow import DATAFLOW_RULES, analyze_paths, analyze_sources
from repro.analysis.findings import (
    Finding,
    Severity,
    errors,
    findings_to_json,
    render_findings,
    summarize,
)
from repro.analysis.planlint import PLAN_RULES, lint_plan

__all__ = [
    "CODE_RULES",
    "DATAFLOW_RULES",
    "Finding",
    "PLAN_RULES",
    "Severity",
    "analyze_paths",
    "analyze_sources",
    "errors",
    "findings_to_json",
    "lint_paths",
    "lint_plan",
    "lint_source",
    "render_findings",
    "summarize",
]
