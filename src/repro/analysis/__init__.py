"""Two-tier static analysis for the reproduction (see docs/static_analysis.md).

* **Tier 1** (:mod:`repro.analysis.planlint`) lints physical plan trees
  between the optimizer and the monitor planner: structural soundness,
  estimate sanity, DPC bounds and injection provenance, shape-key hygiene
  (rules ``P001``–``P006``).
* **Tier 2** (:mod:`repro.analysis.codelint`) checks repo-wide invariants
  over the source tree with ``ast``: seeded RNG discipline, buffer-pool
  accounting discipline, float-comparison and wall-clock hygiene (rules
  ``R001``–``R005``).

Both tiers report through :class:`repro.analysis.findings.Finding` and the
shared text/JSON renderers; ``python -m repro.analysis`` (or ``python -m
repro analyze``) runs them from the command line.
"""

from repro.analysis.codelint import CODE_RULES, lint_paths, lint_source
from repro.analysis.findings import (
    Finding,
    Severity,
    errors,
    findings_to_json,
    render_findings,
    summarize,
)
from repro.analysis.planlint import PLAN_RULES, lint_plan

__all__ = [
    "CODE_RULES",
    "Finding",
    "PLAN_RULES",
    "Severity",
    "errors",
    "findings_to_json",
    "lint_paths",
    "lint_plan",
    "lint_source",
    "render_findings",
    "summarize",
]
