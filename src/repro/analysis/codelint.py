"""Tier 2 — ``ast``-based invariant checker over the repro codebase.

The simulated engine's claims rest on repo-wide conventions that no unit
test can see: determinism requires every RNG to be seeded through
:mod:`repro.common.rng`, exact DPC ground truth requires every physical
read to be charged through :class:`~repro.storage.buffer.BufferPool`, and
reproducible experiments require nothing to read the host wall clock.
This module enforces them statically:

========  =====================================================================
``R001``  no direct RNG construction or module-level ``random.*`` /
          ``np.random.*`` calls outside ``common/rng.py`` — unseeded (or
          globally seeded) randomness breaks run-to-run determinism
``R002``  no direct clock I/O charges (``charge_random_read`` /
          ``charge_sequential_read``) outside ``storage/buffer.py`` — a
          page read that bypasses the buffer pool corrupts both the
          logical/physical accounting and monitored DPC ground truth
``R003``  no ``==`` / ``!=`` between float-typed cost/estimate
          expressions — compare with tolerances instead
``R004``  no mutable default arguments
``R005``  no wall-clock reads (``time.time`` / ``datetime.now`` /
          ``perf_counter`` …) outside ``harness/timing.py`` — simulated
          time comes from :class:`~repro.storage.accounting.IOContext`
``R006``  no global clock: ``database.clock`` / ``buffer_pool.clock``
          attribute access, ``*.clock.snapshot()`` and ``SimulatedClock``
          construction/import are forbidden outside ``storage/disk.py``,
          ``harness/timing.py`` and ``storage/accounting.py`` — per-query
          accounting flows through an explicit per-execution ``IOContext``
``R007``  no bare ``Optimizer(...)`` construction outside the lifecycle's
          sanctioned site (``lifecycle/plan.py``) — optimization must go
          through the staged query lifecycle (or its
          :func:`~repro.lifecycle.plan.build_optimizer` helper) so plan
          caching, linting and feedback-epoch bookkeeping cannot be
          bypassed
``R008``  no per-row ``charge_rows()`` / ``charge_rows(1)`` inside
          batch-mode operators (any function whose enclosing-function
          stack contains ``batch`` or ``columnar`` — nested ``flush()``
          closures included): batch/columnar mode exists to amortize
          accounting, so charge once per batch with
          ``charge_rows(len(rows))``
``R009``  no ``asyncio.get_event_loop()`` and no bare
          ``threading.Thread`` outside the sanctioned concurrency sites
          (``service/``, ``engine/engine.py``, ``harness/timing.py``) —
          ad-hoc threads bypass the engine's drain/shutdown accounting
          and admission control, and ``get_event_loop()`` is deprecated
          outside a running loop (use ``asyncio.get_running_loop()``)
``R011``  no per-row Python loops over column values inside vector
          kernel bodies (``matches_vector`` / ``evaluate_columns``):
          columnar kernels must stay whole-vector operations through
          :mod:`repro.exec.vector` (whose pure-Python fallback is the
          one sanctioned per-row site, waived by path); index loops via
          ``range(...)`` — e.g. over conjunction *terms* — are fine
``R012``  no magic batch-size literal ``1024`` under ``exec/`` or
          ``sql/`` outside its definition site ``exec/batch.py`` — use
          ``DEFAULT_BATCH_ROWS`` / ``ExecutionContext.batch_rows`` so
          the exchange granularity stays centrally tunable
``R013``  shard workers stay inside their own handle: under ``shard/``,
          any function whose enclosing-function stack contains
          ``worker`` must not read the shard registries (``engines``,
          ``shard_databases``, ``feedback_stores``, ...), reach a
          ``.feedback`` store, harvest feedback (``record_*``) or mint
          accounting contexts — cross-shard state flows only through
          the coordinator's gather/merge interfaces
``R014``  worker-child modules (``service/worker_main.py``,
          ``service/marshal.py`` — everything a spawned worker process
          imports) never touch the coordinator's authority: no
          ``.plan_cache`` access, no ``repro.lifecycle`` /
          ``PlanCache`` imports, and no feedback-store mutation
          (``record_*`` / ``harvest_observations``) — a worker's
          observations travel back only through the marshalling
          protocol, and the coordinator applies them
``R015``  mid-query re-optimization stays inside ``reopt/``: only that
          package may request a typed reopt cancellation
          (``cancel_for_reopt`` / constructing ``ReoptRequested``) or
          ingest partial observations
          (``partial_page_count_observation`` /
          ``record_partial_observations``) — partial counters are lower
          bounds from a cancelled prefix, and any other ingest path
          could publish them as exact feedback (or bump the epoch and
          poison the plan cache)
========  =====================================================================

Suppress a finding inline with a trailing ``lint: disable=R003`` comment
(or a comma-separated list) on the offending line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import Finding, Severity
from repro.common.errors import AnalysisError

#: Rule id -> one-line description (the CLI and docs render this catalog).
CODE_RULES: dict[str, str] = {
    "R001": "RNG construction only through common/rng.py (determinism)",
    "R002": "physical-read charges only inside storage/buffer.py",
    "R003": "no ==/!= between float cost/estimate expressions",
    "R004": "no mutable default arguments",
    "R005": "no wall-clock reads outside harness/timing.py",
    "R006": "no global clock: accounting flows through per-execution IOContext",
    "R007": "Optimizer construction only through the lifecycle (build_optimizer)",
    "R008": "no per-row charge_rows(1) inside batch-mode operators",
    "R009": "no get_event_loop()/bare Thread outside sanctioned concurrency sites",
    "R010": "no unused or unknown # lint: disable=... suppression comments",
    "R011": "no per-row loops inside matches_vector/evaluate_columns kernels",
    "R012": "no magic 1024 batch-size literal in exec//sql/ (DEFAULT_BATCH_ROWS)",
    "R013": "shard workers touch only their own handle (no cross-shard state)",
    "R014": "worker-child modules never touch the coordinator's "
    "PlanCache/FeedbackStore",
    "R015": "reopt cancellation and partial-observation ingest only "
    "under reopt/",
}

#: Per-rule path suffixes where the rule intentionally does not apply.
#: Entries ending in ``/`` are directory prefixes: the rule is waived for
#: every file under any directory of that name (``service/`` matches
#: ``src/repro/service/server.py``).
ALLOWED_PATHS: dict[str, tuple[str, ...]] = {
    "R001": ("common/rng.py",),
    "R002": ("storage/buffer.py", "storage/disk.py", "storage/accounting.py"),
    "R005": ("harness/timing.py",),
    "R006": ("storage/disk.py", "harness/timing.py", "storage/accounting.py"),
    # diagnostics builds throwaway what-if optimizers over injected stores;
    # routing it through the lifecycle would cycle core -> lifecycle -> core.
    "R007": ("lifecycle/plan.py", "core/diagnostics.py"),
    # the service layer, the engine's concurrency harness and the shard
    # coordinator's fan-out are where threads/event loops are supposed to
    # live (the coordinator joins every worker under dataflow rule F002).
    "R009": (
        "service/",
        "engine/engine.py",
        "harness/timing.py",
        "shard/coordinator.py",
    ),
    # the vector module IS the sanctioned pure-Python fallback: its
    # per-row loops are the list-backend implementation itself.
    "R011": ("exec/vector.py",),
    # the one definition site of DEFAULT_BATCH_ROWS.
    "R012": ("exec/batch.py",),
    # the reopt package IS the sanctioned episode runner (the definition
    # sites in common/cancellation.py and core/feedback.py only *define*
    # the privileged names; calling them is what the rule polices).
    "R015": ("reopt/",),
}

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9, ]+)")

_RNG_CALL_NAMES = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
        "Random",
        "SystemRandom",
        "getrandbits",
    }
)

_TIME_CALL_NAMES = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
    }
)
_DATETIME_CALL_NAMES = frozenset({"now", "utcnow", "today"})

#: Names whose ``.clock`` attribute was the pre-IOContext global clock (R006).
_CLOCK_OWNER_NAMES = frozenset({"database", "db", "buffer_pool"})

#: Identifiers that mark an expression as a float cost/estimate (R003).
_FLOAT_NAME_RE = re.compile(
    r"(^|_)(cost|costs|ms|dpc|selectivity|selectivities|ratio|fraction|"
    r"overhead|speedup)($|_)|(^|_)estimated?_"
)

#: Names that hold the coordinator's per-shard registries (R013): a
#: worker reading any of these can reach a *sibling's* engine or store.
_SHARD_REGISTRY_NAMES = frozenset(
    {
        "engines",
        "shards",
        "shard_engines",
        "shard_databases",
        "stores",
        "shard_stores",
        "feedback_stores",
    }
)

#: Calls a shard worker must not make (R013): feedback harvesting and
#: accounting-context creation belong to the coordinator's merge path.
_SHARD_FORBIDDEN_CALLS = frozenset(
    {
        "record_run",
        "record_shard_runs",
        "record_shard_observations",
        "record_shard_cardinality",
        "record_observations",
        "record_cardinality",
        "new_io_context",
        "IOContext",
    }
)


#: Modules a spawned worker child imports (R014): the process-boundary
#: side of the multi-process tier.  The coordinator's PlanCache and
#: FeedbackStore live in the parent; a child touching either would
#: silently mutate a *replica* nobody observes — or worse, smuggle live
#: objects across the pipe.
_WORKER_CHILD_MODULES = ("service/worker_main.py", "service/marshal.py")

#: Feedback-store mutation entry points a worker child must not call
#: (R014): harvests happen coordinator-side, from marshalled batches.
_WORKER_CHILD_FORBIDDEN_CALLS = frozenset(
    {
        "record_run",
        "record_observations",
        "record_cardinality",
        "record_shard_runs",
        "harvest_observations",
    }
)

#: Calls reserved for the reopt episode runner (R015): requesting the
#: typed mid-query cancellation and ingesting partial (lower-bound)
#: observations.  ``ReoptRequested`` construction counts — raising it
#: by hand would fake a watchdog trip past handlers that harvest
#: partials on the way out.
_REOPT_PRIVILEGED_CALLS = frozenset(
    {
        "cancel_for_reopt",
        "ReoptRequested",
        "partial_page_count_observation",
        "record_partial_observations",
    }
)


def _dotted(node: ast.AST) -> Optional[tuple[str, ...]]:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_float_like(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    chain = _dotted(node)
    if chain is None:
        return False
    return bool(_FLOAT_NAME_RE.search(chain[-1]))


class _FileChecker(ast.NodeVisitor):
    def __init__(self, file_label: str, rules: Sequence[str]) -> None:
        self.file_label = file_label
        self.rules = set(rules)
        self.findings: list[Finding] = []
        #: Enclosing function names, outermost first — lets R008/R011 see
        #: that a nested ``flush()`` closure still lives inside a
        #: ``batches()`` or kernel body.
        self._function_stack: list[str] = []
        #: R012 polices the exchange layer only: exec/ and sql/ files.
        normalized = "/" + file_label.replace("\\", "/")
        self._r012_in_scope = "/exec/" in normalized or "/sql/" in normalized
        #: R013 polices shard-local code only: files under shard/.
        self._r013_in_scope = "/shard/" in normalized
        #: R014 polices the modules a spawned worker child imports.
        self._r014_in_scope = any(
            normalized.endswith("/" + module)
            for module in _WORKER_CHILD_MODULES
        )

    def report(self, rule: str, node: ast.AST, message: str, hint: str = "") -> None:
        if rule not in self.rules:
            return
        self.findings.append(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                message=message,
                file=self.file_label,
                line=getattr(node, "lineno", 0),
                hint=hint,
            )
        )

    # -- R013: shard-worker isolation -----------------------------------
    def _in_shard_worker(self) -> bool:
        return self._r013_in_scope and any(
            "worker" in name for name in self._function_stack
        )

    def _check_shard_worker_call(
        self, node: ast.Call, chain: tuple[str, ...]
    ) -> None:
        if chain[-1] in _SHARD_FORBIDDEN_CALLS:
            self.report(
                "R013",
                node,
                f"shard worker {'/'.join(self._function_stack)} calls "
                f"{'.'.join(chain)}()",
                hint="workers execute their own handle's plan and nothing "
                "else; feedback harvests and accounting contexts belong to "
                "the coordinator's gather/merge path",
            )

    def visit_Name(self, node: ast.Name) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and node.id in _SHARD_REGISTRY_NAMES
            and self._in_shard_worker()
        ):
            self.report(
                "R013",
                node,
                f"shard worker {'/'.join(self._function_stack)} reads the "
                f"shard registry {node.id!r}",
                hint="a worker may only touch its own handle; cross-shard "
                "state flows through the coordinator's merge interfaces",
            )
        self.generic_visit(node)

    # -- R014: worker-child modules stay off coordinator authority ------
    def _check_worker_child_call(
        self, node: ast.Call, chain: tuple[str, ...]
    ) -> None:
        if chain[-1] in _WORKER_CHILD_FORBIDDEN_CALLS:
            self.report(
                "R014",
                node,
                f"worker-child module mutates a feedback store: "
                f"{'.'.join(chain)}()",
                hint="workers execute with remember=False; observations "
                "travel back through marshal_observations and the "
                "coordinator applies the batch (Engine.harvest_observations)",
            )

    # -- R001 / R002 / R005: forbidden calls ---------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if chain is not None:
            self._check_call_chain(node, chain)
            if self._in_shard_worker():
                self._check_shard_worker_call(node, chain)
            if self._r014_in_scope:
                self._check_worker_child_call(node, chain)
        self.generic_visit(node)

    def _check_call_chain(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        root, leaf = chain[0], chain[-1]
        if root == "random" and leaf in _RNG_CALL_NAMES:
            self.report(
                "R001",
                node,
                f"direct RNG call {'.'.join(chain)}()",
                hint="derive a seeded stream via repro.common.rng.make_random",
            )
        elif (
            root in ("np", "numpy")
            and len(chain) >= 3
            and chain[1] == "random"
        ):
            self.report(
                "R001",
                node,
                f"direct numpy RNG call {'.'.join(chain)}()",
                hint="use repro.common.rng.make_numpy_rng",
            )
        elif leaf in ("charge_random_read", "charge_sequential_read"):
            self.report(
                "R002",
                node,
                f"direct physical-read charge {'.'.join(chain)}()",
                hint="route page reads through BufferPool.access so the "
                "logical/physical counters stay exact",
            )
        elif root == "time" and leaf in _TIME_CALL_NAMES and len(chain) == 2:
            self.report(
                "R005",
                node,
                f"wall-clock read {'.'.join(chain)}()",
                hint="use repro.harness.timing; simulated time comes from "
                "the per-execution IOContext",
            )
        elif root in ("datetime", "date") and leaf in _DATETIME_CALL_NAMES:
            self.report(
                "R005",
                node,
                f"wall-clock read {'.'.join(chain)}()",
                hint="use repro.harness.timing (or pass dates explicitly)",
            )
        elif leaf == "SimulatedClock":
            self.report(
                "R006",
                node,
                "construction of the retired global SimulatedClock",
                hint="create a per-execution IOContext "
                "(repro.storage.accounting) instead",
            )
        elif leaf == "Optimizer":
            self.report(
                "R007",
                node,
                f"bare optimizer construction {'.'.join(chain)}()",
                hint="go through Session.optimize/run (the staged lifecycle) "
                "or repro.lifecycle.plan.build_optimizer",
            )
        elif leaf in _REOPT_PRIVILEGED_CALLS:
            self.report(
                "R015",
                node,
                f"reopt-privileged call {'.'.join(chain)}() outside reopt/",
                hint="mid-query cancellation and partial-observation ingest "
                "go through repro.reopt.run_with_reopt — partial counters "
                "are lower bounds and must stay on the epoch-free path",
            )
        elif chain == ("asyncio", "get_event_loop") or chain == (
            "get_event_loop",
        ):
            self.report(
                "R009",
                node,
                "deprecated/implicit event-loop lookup get_event_loop()",
                hint="use asyncio.get_running_loop() inside coroutines, or "
                "asyncio.run() at the entry point",
            )
        elif leaf == "Thread" and (
            len(chain) == 1 or chain[-2] == "threading"
        ):
            self.report(
                "R009",
                node,
                f"bare thread construction {'.'.join(chain)}()",
                hint="route concurrency through Engine.run_concurrent or the "
                "service's thread pool so drain/shutdown accounting holds",
            )
        elif leaf == "charge_rows" and any(
            "batch" in name or "columnar" in name
            for name in self._function_stack
        ):
            self._check_charge_rows(node, chain)
        elif leaf == "snapshot" and len(chain) >= 2 and "clock" in chain[-2]:
            # `database.clock.snapshot()` is already reported by the
            # attribute rule below; catch the aliased forms it cannot see
            # (`clock.snapshot()`, `self.clock.snapshot()`, `some_clock.snapshot()`).
            owner = chain[-3] if len(chain) >= 3 else None
            if chain[-2] != "clock" or owner not in _CLOCK_OWNER_NAMES:
                self.report(
                    "R006",
                    node,
                    f"clock snapshot protocol {'.'.join(chain)}()",
                    hint="read counters directly off the execution's "
                    "IOContext; the snapshot/delta protocol is retired",
                )

    # -- R008: per-row charging inside batch operators ------------------
    def _check_charge_rows(self, node: ast.Call, chain: tuple[str, ...]) -> None:
        arguments = [*node.args, *(kw.value for kw in node.keywords)]
        per_row = not arguments or (
            len(arguments) == 1
            and isinstance(arguments[0], ast.Constant)
            and not isinstance(arguments[0].value, bool)
            and arguments[0].value == 1
        )
        if per_row:
            self.report(
                "R008",
                node,
                f"per-row charge {'.'.join(chain)}"
                f"({ast.unparse(arguments[0]) if arguments else ''}) "
                f"inside batch-mode function "
                f"{'/'.join(self._function_stack)}",
                hint="accumulate the batch and charge once with "
                "charge_rows(len(rows))",
            )

    # -- R011: per-row loops inside vector kernel bodies ----------------
    _VECTOR_KERNEL_NAMES = ("matches_vector", "evaluate_columns")

    def _in_vector_kernel(self) -> bool:
        return any(
            name in self._VECTOR_KERNEL_NAMES for name in self._function_stack
        )

    @staticmethod
    def _is_index_loop(iter_node: ast.AST) -> bool:
        """``range(...)`` / ``enumerate(...)`` iterations index terms or
        positions, not rows — those stay legal inside kernels."""
        if not isinstance(iter_node, ast.Call):
            return False
        chain = _dotted(iter_node.func)
        return chain is not None and chain[-1] in ("range", "enumerate")

    def _check_vector_loop(self, node: ast.AST, iter_node: ast.AST) -> None:
        if self._in_vector_kernel() and not self._is_index_loop(iter_node):
            self.report(
                "R011",
                node,
                "per-row Python loop inside vector kernel "
                f"{'/'.join(self._function_stack)}",
                hint="express the kernel as whole-vector operations via "
                "repro.exec.vector (its pure-Python backend is the one "
                "sanctioned per-row site)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_vector_loop(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_vector_loop(node, generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- R012: magic batch-size literal ---------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            type(node.value) is int
            and node.value == 1024
            and self._r012_in_scope
        ):
            self.report(
                "R012",
                node,
                "magic batch-size literal 1024",
                hint="use repro.exec.batch.DEFAULT_BATCH_ROWS (or "
                "ExecutionContext.batch_rows) so the exchange granularity "
                "stays centrally tunable",
            )
        self.generic_visit(node)

    # -- R001 / R005: forbidden imports --------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        names = {alias.name for alias in node.names}
        if module == "random" and names & _RNG_CALL_NAMES:
            self.report(
                "R001",
                node,
                f"importing RNG entry points from random: {sorted(names)}",
                hint="derive a seeded stream via repro.common.rng",
            )
        elif module == "numpy.random" or (module == "numpy" and "random" in names):
            self.report(
                "R001",
                node,
                "importing numpy RNG entry points",
                hint="use repro.common.rng.make_numpy_rng",
            )
        elif module == "time" and names & _TIME_CALL_NAMES:
            self.report(
                "R005",
                node,
                f"importing wall-clock entry points from time: {sorted(names)}",
                hint="use repro.harness.timing",
            )
        elif names & {"SimulatedClock", "ClockSnapshot"}:
            self.report(
                "R006",
                node,
                "importing the retired global-clock types "
                f"{sorted(names & {'SimulatedClock', 'ClockSnapshot'})}",
                hint="use repro.storage.accounting.IOContext",
            )
        elif module == "threading" and "Thread" in names:
            self.report(
                "R009",
                node,
                "importing threading.Thread",
                hint="route concurrency through Engine.run_concurrent or the "
                "service's thread pool so drain/shutdown accounting holds",
            )
        elif module == "asyncio" and "get_event_loop" in names:
            self.report(
                "R009",
                node,
                "importing asyncio.get_event_loop",
                hint="use asyncio.get_running_loop() inside coroutines",
            )
        if self._r014_in_scope and (
            module.startswith("repro.lifecycle") or "PlanCache" in names
        ):
            self.report(
                "R014",
                node,
                f"worker-child module imports coordinator machinery "
                f"from {module}",
                hint="repro.lifecycle (PlanCache) is coordinator-side; "
                "nothing a worker child imports may reach it",
            )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if self._r014_in_scope:
            for alias in node.names:
                if alias.name.startswith("repro.lifecycle"):
                    self.report(
                        "R014",
                        node,
                        f"worker-child module imports coordinator machinery "
                        f"{alias.name}",
                        hint="repro.lifecycle (PlanCache) is "
                        "coordinator-side; nothing a worker child imports "
                        "may reach it",
                    )
        self.generic_visit(node)

    # -- R006: global clock attribute access ---------------------------
    # -- R013: shard workers reaching a feedback store ------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "clock":
            owner = _dotted(node.value)
            if owner is not None and owner[-1] in _CLOCK_OWNER_NAMES:
                self.report(
                    "R006",
                    node,
                    f"global clock access {'.'.join(owner)}.clock",
                    hint="thread the execution's IOContext "
                    "(repro.storage.accounting) to here and charge it",
                )
        elif node.attr == "feedback" and self._in_shard_worker():
            self.report(
                "R013",
                node,
                f"shard worker {'/'.join(self._function_stack)} reaches a "
                "feedback store (.feedback)",
                hint="per-shard observations flow back through the worker's "
                "result; the coordinator merges and harvests them",
            )
        elif node.attr == "plan_cache" and self._r014_in_scope:
            self.report(
                "R014",
                node,
                "worker-child module reaches a plan cache (.plan_cache)",
                hint="the coordinator owns the one authoritative PlanCache; "
                "worker children optimize with their own engine's private "
                "state and ship nothing back but rows, stats and marshalled "
                "observations",
            )
        self.generic_visit(node)

    # -- R003: float equality ------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_like(left) or _is_float_like(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    "R003",
                    node,
                    f"float cost/estimate compared with {symbol}",
                    hint="use math.isclose or an explicit tolerance",
                )
        self.generic_visit(node)

    # -- R004: mutable defaults ----------------------------------------
    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                chain = _dotted(default.func)
                mutable = chain is not None and chain[-1] in (
                    "list",
                    "dict",
                    "set",
                    "bytearray",
                    "OrderedDict",
                    "defaultdict",
                )
            if mutable:
                self.report(
                    "R004",
                    default,
                    "mutable default argument",
                    hint="default to None (or use dataclasses.field) and "
                    "construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()


def _suppressed_rules(source: str) -> dict[int, set[str]]:
    """Line number -> rules suppressed by a trailing lint comment."""
    suppressions: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            suppressions[number] = {r for r in rules if r}
    return suppressions


def _path_waived(path_label: str, allowed: str) -> bool:
    """File-suffix match, or directory-prefix match for ``dir/`` entries."""
    normalized = "/" + path_label.replace("\\", "/")
    if allowed.endswith("/"):
        return f"/{allowed}" in normalized
    return normalized.endswith("/" + allowed)


def _rules_for(path_label: str, rules: Sequence[str]) -> list[str]:
    return [
        rule
        for rule in rules
        if not any(
            _path_waived(path_label, allowed)
            for allowed in ALLOWED_PATHS.get(rule, ())
        )
    ]


def applicable_code_rules(
    file_label: str, rules: Optional[Iterable[str]] = None
) -> list[str]:
    """The selected rules minus per-path waivers, validated.

    The CLI's unused-suppression audit needs to know which rules were
    *actually checked* for a file: a suppression for a rule that did not
    run (a waived path, a ``--rules`` subset, a Tier-3 rule without
    ``--dataflow``) is not "unused", just dormant.
    """
    selected = list(CODE_RULES) if rules is None else list(rules)
    unknown = [r for r in selected if r not in CODE_RULES]
    if unknown:
        raise AnalysisError(
            f"unknown code-lint rule(s) {unknown}; known: {sorted(CODE_RULES)}"
        )
    return _rules_for(file_label, selected)


def lint_source_raw(
    source: str, file_label: str, rules: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint one file *without* applying inline suppression comments.

    The unused-suppression audit compares this raw set against the
    suppression map; everyday callers want :func:`lint_source`.
    """
    applicable = applicable_code_rules(file_label, rules)
    if not applicable:
        return []
    try:
        tree = ast.parse(source, filename=file_label)
    except SyntaxError as exc:
        return [
            Finding(
                rule="R000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                file=file_label,
                line=exc.lineno or 0,
            )
        ]
    checker = _FileChecker(file_label, applicable)
    checker.visit(tree)
    return checker.findings


def lint_source(
    source: str, file_label: str, rules: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint one file's source text; ``file_label`` is used in findings."""
    suppressions = _suppressed_rules(source)
    return [
        finding
        for finding in lint_source_raw(source, file_label, rules)
        if finding.rule not in suppressions.get(finding.line, set())
    ]


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.is_file():
            if path.suffix == ".py":
                files.add(path)
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(files)


def lint_paths(
    paths: Iterable[str | Path], rules: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), rules))
    return findings
