"""Staged query lifecycle: plan caching, freshness epochs, observability.

See :mod:`repro.lifecycle.runner` for the stage pipeline,
:mod:`repro.lifecycle.plancache` for the shared invalidating plan cache,
and :mod:`repro.lifecycle.plan` for canonicalization and the sanctioned
optimizer construction site (codelint rule R007).
"""

from repro.lifecycle.plan import (
    CanonicalQuery,
    build_optimizer,
    cache_key,
    canonicalize,
    freshness_vector,
    hint_fingerprint,
)
from repro.lifecycle.plancache import (
    CacheStats,
    FreshnessVector,
    PlanCache,
    PlanCacheKey,
)
from repro.lifecycle.runner import (
    STAGES,
    ExecutedQuery,
    LifecycleTrace,
    QueryLifecycle,
    StageRecord,
)

__all__ = [
    "STAGES",
    "CacheStats",
    "CanonicalQuery",
    "ExecutedQuery",
    "FreshnessVector",
    "LifecycleTrace",
    "PlanCache",
    "PlanCacheKey",
    "QueryLifecycle",
    "StageRecord",
    "build_optimizer",
    "cache_key",
    "canonicalize",
    "freshness_vector",
    "hint_fingerprint",
]
