"""The staged query lifecycle: canonicalize → … → execute → harvest.

The paper's exploitation story (§II-C, §V) is a *standing loop*:
monitored executions keep correcting DPC estimates for future queries.
Run at engine scale, that loop has a fixed per-query shape, which this
module makes explicit.  Every query moves through seven named stages:

==============  ========================================================
canonicalize    compute the query's stable cache identity and the set of
                tables it touches
plan-cache      consult the shared :class:`~repro.lifecycle.PlanCache`
                (``hit`` / ``miss`` / ``coalesced`` / ``bypassed``)
optimize        cost-based optimization (skipped on a cache hit)
lint            plan-invariant linting, rules P001–P006 (skipped on a
                hit: the cached plan was linted before publication)
monitor-plan    attach page-count monitors to the chosen plan
execute         run the operator tree under the execution's IOContext
harvest         optionally fold the run's observations back into the
                feedback store (bumping its epoch)
==============  ========================================================

Each stage leaves a :class:`StageRecord` in the run's
:class:`LifecycleTrace`, which is surfaced through
``RunStats.render()``/``to_dict()`` — the observability contract the
repeated-query benchmarks and the CI plan-cache smoke assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.common.cancellation import CancellationToken
from repro.core.planner import build_executable
from repro.core.requests import PageCountRequest
from repro.exec.base import ExecutionWatchdog
from repro.exec.executor import QueryResult, execute
from repro.lifecycle.plan import (
    build_optimizer,
    cache_key,
    canonicalize,
    freshness_vector,
)
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Query
from repro.optimizer.plans import PlanNode
from repro.storage.accounting import IOContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session -> runner)
    from repro.session import Session

#: Canonical stage order (every trace lists all seven, in this order).
STAGES: tuple[str, ...] = (
    "canonicalize",
    "plan-cache",
    "optimize",
    "lint",
    "monitor-plan",
    "execute",
    "harvest",
)


@dataclass
class StageRecord:
    """One lifecycle stage's outcome."""

    stage: str
    status: str  # "ok" | "hit" | "miss" | "coalesced" | "bypassed" | "skipped"
    detail: str = ""

    def render(self) -> str:
        return f"{self.stage}:{self.status}" + (
            f" ({self.detail})" if self.detail else ""
        )


@dataclass
class LifecycleTrace:
    """The observable record of one query's trip through the stages."""

    records: list[StageRecord] = field(default_factory=list)
    #: Plan-cache outcome: "hit", "miss", "coalesced", or "bypassed".
    cache_event: str = "bypassed"

    def record(self, stage: str, status: str, detail: str = "") -> None:
        self.records.append(StageRecord(stage=stage, status=status, detail=detail))

    def stage(self, name: str) -> Optional[StageRecord]:
        for entry in self.records:
            if entry.stage == name:
                return entry
        return None

    @property
    def optimized(self) -> bool:
        """Whether this run actually ran the optimizer (cache miss path)."""
        stage = self.stage("optimize")
        return stage is not None and stage.status == "ok"

    def render(self) -> str:
        return " → ".join(f"{r.stage}:{r.status}" for r in self.records)

    def to_dict(self) -> dict[str, Any]:
        return {
            "cache_event": self.cache_event,
            "stages": [
                {"stage": r.stage, "status": r.status, "detail": r.detail}
                for r in self.records
            ],
        }


@dataclass
class ExecutedQuery:
    """A plan, the result of running it, and the lifecycle that chose it."""

    query: Query
    plan: PlanNode
    result: QueryResult
    trace: Optional[LifecycleTrace] = None

    @property
    def elapsed_ms(self) -> float:
        return self.result.elapsed_ms

    @property
    def observations(self):
        return self.result.runstats.observations

    def summary(self) -> str:
        return (
            f"{self.query.describe()}\n"
            f"plan: {self.plan.describe()}\n"
            f"{self.result.runstats.render()}"
        )


class QueryLifecycle:
    """Drives one session's queries through the staged lifecycle.

    Stateless besides the session reference: the interesting state — the
    shared plan cache, the epoch-versioned feedback store — lives on the
    session/engine, so lifecycles are free to construct per call.
    """

    def __init__(self, session: "Session") -> None:
        self.session = session

    # ------------------------------------------------------------------
    # Planning stages: canonicalize → plan-cache → optimize → lint
    # ------------------------------------------------------------------
    def plan(
        self,
        query: Query,
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
        trace: Optional[LifecycleTrace] = None,
    ) -> tuple[PlanNode, LifecycleTrace]:
        """Resolve a plan for ``query``, through the cache when possible."""
        session = self.session
        trace = trace if trace is not None else LifecycleTrace()

        canonical = canonicalize(query)
        trace.record(
            "canonicalize",
            "ok",
            f"key={canonical.key!r} tables={list(canonical.tables)}",
        )

        # Injections and the freshness vector must describe the same
        # feedback-store state, so they are snapshotted atomically.
        if use_feedback:
            injections, _ = session.feedback.snapshot_injections(
                session.injections.copy(), canonical.tables
            )
        else:
            injections = session.injections.copy()

        cache = session.plan_cache
        if cache is None:
            trace.record("plan-cache", "bypassed", "no cache configured")
            trace.cache_event = "bypassed"
            plan_node = self._optimize_and_lint(
                query, injections, hint, trace.records
            )
            return plan_node, trace

        key = cache_key(
            canonical,
            injections,
            hint,
            use_feedback,
            session.page_count_model,
        )
        freshness = freshness_vector(
            session.database, session.feedback, canonical.tables, use_feedback
        )
        built: list[StageRecord] = []

        def builder() -> PlanNode:
            return self._optimize_and_lint(query, injections, hint, built)

        plan_node, event = cache.get_or_build(key, freshness, builder)
        trace.cache_event = event
        trace.record(
            "plan-cache",
            event,
            f"epochs={[(t, e, s) for t, e, s in freshness]}",
        )
        if built:
            trace.records.extend(built)
        else:
            trace.record("optimize", "skipped", f"plan-cache {event}")
            trace.record("lint", "skipped", "linted when first cached")
        return plan_node, trace

    def _optimize_and_lint(
        self,
        query: Query,
        injections: InjectionSet,
        hint: Optional[PlanHint],
        records: list[StageRecord],
    ) -> PlanNode:
        session = self.session
        optimizer = build_optimizer(
            session.database,
            injections=injections,
            page_count_model=session.page_count_model,
            hint=hint,
        )
        plan_node = optimizer.optimize(query)
        records.append(
            StageRecord("optimize", "ok", plan_node.describe())
        )
        if session.lint_plans:
            before = len(session.lint_findings)
            session.lint(plan_node, optimizer.injections)
            found = len(session.lint_findings) - before
            records.append(StageRecord("lint", "ok", f"{found} finding(s)"))
        else:
            records.append(StageRecord("lint", "skipped", "lint_plans=False"))
        return plan_node

    # ------------------------------------------------------------------
    # Execution stages: monitor-plan → execute → harvest
    # ------------------------------------------------------------------
    def run(
        self,
        query: Query,
        requests: Sequence[PageCountRequest] = (),
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
        cold_cache: bool = True,
        io: Optional[IOContext] = None,
        remember: bool = False,
        exec_mode: str = "row",
        cancellation: Optional[CancellationToken] = None,
    ) -> ExecutedQuery:
        """The full lifecycle: plan (cached or fresh), execute, harvest."""
        plan_node, trace = self.plan(query, use_feedback=use_feedback, hint=hint)
        return self.run_plan(
            query,
            plan_node,
            requests=requests,
            cold_cache=cold_cache,
            io=io,
            remember=remember,
            trace=trace,
            exec_mode=exec_mode,
            cancellation=cancellation,
        )

    def run_plan(
        self,
        query: Query,
        plan_node: PlanNode,
        requests: Sequence[PageCountRequest] = (),
        cold_cache: bool = True,
        io: Optional[IOContext] = None,
        remember: bool = False,
        trace: Optional[LifecycleTrace] = None,
        exec_mode: str = "row",
        cancellation: Optional[CancellationToken] = None,
        watchdog: Optional[ExecutionWatchdog] = None,
    ) -> ExecutedQuery:
        """Execute a specific plan with monitors (stages 5–7 only).

        ``io`` is the execution's accounting context (default: a fresh
        shared-pool context); pass an *isolated* context to run
        interference-free next to concurrent executions.  ``exec_mode``
        selects row-at-a-time or page-at-a-time drive (see
        :func:`repro.exec.executor.execute`).  ``cancellation`` threads a
        cooperative-cancellation token into the execute stage; a
        cancelled run raises :class:`~repro.common.errors.QueryCancelled`
        out of this method *before* the harvest stage, so a partial run
        can never bump the feedback store's epoch.  ``watchdog`` is the
        reopt regret watchdog: it is attached to the built operator tree
        (so it sees exactly the monitor bundles the run feeds) and then
        observes every execution checkpoint.
        """
        session = self.session
        trace = trace if trace is not None else LifecycleTrace()
        build = build_executable(
            plan_node, session.database, list(requests), session.monitor_config
        )
        summary = build.summary()
        if watchdog is not None:
            attach = getattr(watchdog, "attach", None)
            if attach is not None:
                summary += f", watchdog on {attach(build.root)} scan(s)"
        trace.record("monitor-plan", "ok", summary)
        result = execute(
            build.root,
            session.database,
            cold_cache=cold_cache,
            io=io,
            mode=exec_mode,
            cancellation=cancellation,
            watchdog=watchdog,
        )
        result.runstats.observations.extend(build.unanswerable)
        trace.record(
            "execute",
            "ok",
            f"mode={exec_mode} rows={result.rows} "
            f"physical_reads={result.runstats.physical_reads}",
        )
        executed = ExecutedQuery(
            query=query, plan=plan_node, result=result, trace=trace
        )
        if remember:
            stored = session.remember(executed)
            trace.record("harvest", "ok", f"{stored} observation(s) remembered")
        else:
            trace.record("harvest", "skipped", "remember not requested")
        result.runstats.lifecycle = trace.to_dict()
        if session.plan_cache is not None:
            result.runstats.lifecycle["plan_cache"] = (
                session.plan_cache.stats.snapshot()
            )
        return executed
