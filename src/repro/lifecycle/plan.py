"""Canonicalization and optimizer construction for the query lifecycle.

This module is the **sanctioned construction site** for
:class:`~repro.optimizer.optimizer.Optimizer` (codelint rule R007): query
paths must reach the optimizer through the staged lifecycle — or, for
harness/tooling code, through :func:`build_optimizer` — so that plan
caching, linting and feedback-epoch bookkeeping cannot be bypassed by
accident.  Benchmarks and tests, which deliberately probe the raw
optimizer, are outside the linted tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.catalog.catalog import Database
from repro.core.feedback import FeedbackStore
from repro.lifecycle.plancache import FreshnessVector, PlanCacheKey
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Optimizer, Query
from repro.optimizer.pagecount_model import AnalyticalPageCountModel


@dataclass(frozen=True)
class CanonicalQuery:
    """The canonicalize stage's output: a stable identity for a query."""

    key: str
    tables: tuple[str, ...]


def canonicalize(query: Query) -> CanonicalQuery:
    """Canonical cache identity and touched-table set for ``query``."""
    return CanonicalQuery(key=query.canonical_key(), tables=query.tables())


def hint_fingerprint(hint: Optional[PlanHint]) -> str:
    """Stable identity of a plan hint (hints restrict the plan space, so
    differently-hinted optimizations must not share a cache entry)."""
    if hint is None:
        return ""
    return f"{hint.kind}|{hint.index_name or ''}|{hint.inner_table or ''}"


def model_fingerprint(model: Optional[AnalyticalPageCountModel]) -> str:
    """Identity of the page-count model variant an optimization used."""
    if model is None:
        return ""
    return type(model).__name__


def cache_key(
    canonical: CanonicalQuery,
    injections: InjectionSet,
    hint: Optional[PlanHint],
    use_feedback: bool,
    page_count_model: Optional[AnalyticalPageCountModel] = None,
) -> PlanCacheKey:
    """Assemble the plan-cache key for one optimization problem."""
    model_tag = model_fingerprint(page_count_model)
    hint_tag = hint_fingerprint(hint)
    return PlanCacheKey(
        query_key=canonical.key,
        injection_fingerprint=injections.fingerprint(),
        hint_fingerprint=f"{hint_tag}#{model_tag}" if model_tag else hint_tag,
        mode="feedback" if use_feedback else "plain",
    )


def freshness_vector(
    database: Database,
    feedback: FeedbackStore,
    tables: tuple[str, ...],
    use_feedback: bool,
) -> FreshnessVector:
    """Current (table, feedback epoch, statistics version) vector.

    Plans optimized *without* feedback do not depend on the store, so
    their entries carry a constant feedback tag (-1) and survive
    ``remember()`` calls; statistics versions always participate.
    """
    stats_versions = dict(database.statistics_versions(tables))
    if use_feedback:
        epochs = dict(feedback.table_epochs(tables))
    else:
        epochs = {}
    return tuple(
        (table, epochs.get(table, -1), stats_versions[table])
        for table in sorted(set(tables))
    )


def build_optimizer(
    database: Database,
    injections: Optional[InjectionSet] = None,
    page_count_model: Optional[AnalyticalPageCountModel] = None,
    hint: Optional[PlanHint] = None,
    dpc_histograms: Optional[dict] = None,
) -> Optimizer:
    """Construct a cost-based optimizer (the lifecycle's optimize stage).

    Harness and tooling code that needs a raw optimizer — methodology
    sweeps, ``explain`` CLIs — goes through this function rather than
    constructing :class:`Optimizer` directly, keeping R007's promise that
    optimization entry points are enumerable.
    """
    return Optimizer(
        database,
        injections=injections,
        page_count_model=page_count_model,
        hint=hint,
        dpc_histograms=dpc_histograms,
    )
