"""A thread-safe, invalidating, engine-shared plan cache.

The production question behind this module (cf. Sampling-Based Query
Re-Optimization and PLANSIEVE in the related work): *when is a previously
chosen plan still trustworthy, and how cheaply can we detect that it is
not?*  Our answer is structural.  A cached plan is trustworthy exactly
while the inputs it was optimized from are unchanged, and every such
input is versioned:

* the **canonical query key** and the **injection fingerprint** identify
  what was optimized (they form the cache key, together with the hint
  fingerprint and the feedback mode);
* the **freshness vector** — per touched table, the
  :class:`~repro.core.feedback.FeedbackStore` epoch and the
  :class:`~repro.storage.table.Table` statistics version — identifies
  what it was optimized *against*.  A lookup whose current vector
  differs from the entry's recorded vector counts an invalidation,
  evicts the entry and rebuilds; a stale plan is therefore unreachable
  by construction, not by best-effort eviction hooks.

Logically the cache is keyed on (query key, injection fingerprint,
freshness vector); physically the vector lives *in the entry* and is
compared on lookup, so superseded epochs do not pile up as dead entries.

Lookups are **stampede-safe**: concurrent misses on the same key
serialize on a per-key build lock, so one thread optimizes while the
rest wait and then reuse its plan (counted as ``coalesced``).  Distinct
keys build fully in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.optimizer.plans import PlanNode

#: Per touched table: (table, feedback epoch, statistics version).
FreshnessVector = tuple[tuple[str, int, int], ...]


@dataclass(frozen=True)
class PlanCacheKey:
    """Identity of one optimization problem (freshness excluded)."""

    query_key: str
    injection_fingerprint: str
    hint_fingerprint: str = ""
    #: ``"feedback"`` or ``"plain"`` — a feedback-driven optimization and
    #: a plain one are distinct problems even when the store is empty
    #: (their freshness vectors evolve differently).
    mode: str = "plain"


@dataclass
class CacheStats:
    """Counters surfaced through ``RunStats.render()`` and engine reports."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    builds: int = 0
    coalesced: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without optimizing (hits only)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "builds": self.builds,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def render(self) -> str:
        return (
            f"plan-cache: hits={self.hits} misses={self.misses} "
            f"invalidations={self.invalidations} builds={self.builds} "
            f"coalesced={self.coalesced} evictions={self.evictions} "
            f"hit-rate={self.hit_rate:.1%}"
        )


@dataclass
class _Entry:
    plan: PlanNode
    freshness: FreshnessVector


class PlanCache:
    """LRU cache of optimized plans with freshness validation on lookup.

    Shared by all of an :class:`~repro.engine.Engine`'s sessions; all
    public methods are thread-safe.  Cached :class:`PlanNode` trees are
    treated as immutable: they are linted before publication and only
    read afterwards (``build_executable`` constructs fresh operators).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanCacheKey, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Per-key build locks (stampede control).  Bounded by the number
        #: of distinct keys ever seen; pruned opportunistically on evict.
        self._building: dict[PlanCacheKey, threading.Lock] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(
        self, key: PlanCacheKey, freshness: FreshnessVector
    ) -> Optional[PlanNode]:
        """A fresh cached plan, or ``None`` (counting a miss).

        A present-but-stale entry counts an invalidation *and* a miss and
        is evicted, so the stale plan can never be returned again.
        """
        with self._lock:
            return self._lookup_locked(key, freshness)

    def _lookup_locked(
        self, key: PlanCacheKey, freshness: FreshnessVector
    ) -> Optional[PlanNode]:
        entry = self._entries.get(key)
        if entry is not None:
            if entry.freshness == freshness:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.plan
            del self._entries[key]
            self.stats.invalidations += 1
        self.stats.misses += 1
        return None

    def get_or_build(
        self,
        key: PlanCacheKey,
        freshness: FreshnessVector,
        builder: Callable[[], PlanNode],
    ) -> tuple[PlanNode, str]:
        """The fresh plan for ``key``, building it at most once per miss.

        Returns ``(plan, event)`` with ``event`` one of ``"hit"`` (served
        from cache), ``"miss"`` (this call optimized), or ``"coalesced"``
        (another thread optimized the same key while we waited on its
        build lock).  ``builder`` runs outside the cache-wide lock but
        under the per-key lock, so an exploding build never blocks
        lookups of other keys, and concurrent identical queries cost one
        optimization, not N.
        """
        with self._lock:
            plan = self._lookup_locked(key, freshness)
            if plan is not None:
                return plan, "hit"
            build_lock = self._building.get(key)
            if build_lock is None:
                build_lock = threading.Lock()
                self._building[key] = build_lock
        with build_lock:
            # Double-check: a concurrent builder may have published the
            # plan while this thread waited on the key's build lock.
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry.freshness == freshness:
                    self._entries.move_to_end(key)
                    self.stats.coalesced += 1
                    return entry.plan, "coalesced"
            plan = builder()
            self.store(key, freshness, plan)
            return plan, "miss"

    def store(
        self, key: PlanCacheKey, freshness: FreshnessVector, plan: PlanNode
    ) -> None:
        """Publish a built plan (evicting LRU entries over capacity)."""
        with self._lock:
            self._entries[key] = _Entry(plan=plan, freshness=freshness)
            self._entries.move_to_end(key)
            self.stats.builds += 1
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self._building.pop(evicted_key, None)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    def invalidate(self, table: Optional[str] = None) -> int:
        """Drop entries touching ``table`` (or all entries); returns count.

        Freshness validation already prevents stale *serving*; this is
        the explicit operational lever (DBA dropped an index, reloaded a
        table object wholesale, …).
        """
        with self._lock:
            if table is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                doomed = [
                    key
                    for key, entry in self._entries.items()
                    if any(name == table for name, _, _ in entry.freshness)
                ]
                for key in doomed:
                    del self._entries[key]
                dropped = len(doomed)
            self.stats.invalidations += dropped
            return dropped

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"PlanCache({len(self._entries)}/{self.capacity} entries, "
                f"hits={self.stats.hits}, misses={self.stats.misses})"
            )
