"""The asyncio query service fronting one shared :class:`Engine`.

This is the subsystem that turns per-query machinery into a multi-client,
continuously-learning system: every admitted request runs through the
engine's staged lifecycle on a worker thread (isolated IOContext, shared
plan cache, shared feedback store), so one client's harvested page-count
feedback re-optimizes the next client's plan.

Request path::

    admit (bounded semaphore + bounded queue)  ->  stage pipeline
    (canonicalize ... execute on thread pool)  ->  harvest (optional)
    ->  respond (rows + RunStats + lifecycle trace)

Properties the tests and the CI smoke gate hold the service to:

* **No unbounded queues.**  Past ``max_in_flight`` running and
  ``max_queue_depth`` waiting, requests are rejected with
  ``SERVICE_OVERLOADED`` instead of parked.
* **Deadlines cancel work, not just responses.**  ``deadline_ms`` bounds
  the admission wait (an expired request leaves the queue and answers
  promptly) and arms an event-loop timer that cancels the run's
  :class:`~repro.common.cancellation.CancellationToken`; the executor
  stops at the next page/batch boundary, so a timed-out query stops
  charging its IOContext, releases its admission slot, and (because the
  harvest stage is never reached) cannot bump the feedback epoch with a
  partial run.
* **Graceful shutdown.**  New requests are rejected with
  ``SERVICE_SHUTTING_DOWN``; in-flight queries drain (with
  ``drain=False`` running queries are cancelled *and* admission-queued
  requests are aborted without executing); then the engine itself is
  shut down, after which ``Engine.session()`` raises.
* **Slot conservation.**  Every admitted request terminates in exactly
  one of completed/timed-out/cancelled/failed and returns its slot —
  :meth:`ServiceTelemetry.leaked_slots` audits this after every run.

Engine work happens on a ``ThreadPoolExecutor`` sized to the admission
limit and bridged with ``loop.run_in_executor``; the event loop itself
never blocks on a query.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from dataclasses import dataclass

from repro.common.cancellation import CancellationToken
from repro.common.errors import (
    AdmissionError,
    QueryCancelled,
    ReproError,
    ExpressionError,
    ServiceError,
    WorkerCrashed,
    WorkerQueryError,
)
from repro.engine import Engine, WorkloadItem
from repro.harness.methodology import default_requests
from repro.harness.timing import Stopwatch
from repro.service.admission import AdmissionController
from repro.service.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    INTERNAL_ERROR,
    QUERY_ERROR,
    SERVICE_OVERLOADED,
    SERVICE_SHUTTING_DOWN,
    WORKER_CRASHED,
    QueryRequest,
    QueryResponse,
)
from repro.service.telemetry import ServiceTelemetry
from repro.service.workers import WorkerPool
from repro.sql import parse_query


@dataclass
class ExecutionOutcome:
    """One executed request, uniform across the two execution paths.

    The in-process path converts its :class:`ExecutedQuery`; the worker
    path's :class:`~repro.service.workers.WorkerOutcome` already carries
    wire-shaped rows and a ``RunStats`` dict.
    """

    rows: list[list[Any]]
    columns: list[str]
    runstats: dict[str, Any]


class QueryService:
    """Admission-controlled asyncio front end over one :class:`Engine`."""

    def __init__(
        self,
        engine: Engine,
        max_in_flight: int = 8,
        max_queue_depth: int = 32,
        monitor_by_default: bool = True,
        reopt_by_default: bool = False,
        worker_pool: Optional[WorkerPool] = None,
    ) -> None:
        self.engine = engine
        self.admission = AdmissionController(max_in_flight, max_queue_depth)
        self.telemetry = ServiceTelemetry()
        self.monitor_by_default = monitor_by_default
        #: Run monitored in-process requests under the reopt watchdog
        #: even when they do not ask (``serve --reopt``); a request's own
        #: ``reopt=True`` always opts in regardless.
        self.reopt_by_default = reopt_by_default
        #: Optional multi-process execution tier; with a pool attached,
        #: admitted queries run on worker processes while this service's
        #: engine keeps the one authoritative feedback store/plan cache.
        self.worker_pool = worker_pool
        if worker_pool is not None:
            worker_pool.attach_telemetry(self.telemetry)
        self._pool = ThreadPoolExecutor(
            max_workers=max_in_flight, thread_name_prefix="repro-service"
        )
        self._accepting = True
        self._aborting = False
        self._pending = 0
        self._drained: Optional[asyncio.Event] = None
        #: Tokens of in-flight executions, for fast-abort shutdown.
        self._live_tokens: set[CancellationToken] = set()

    # ------------------------------------------------------------------
    @property
    def accepting(self) -> bool:
        return self._accepting

    @property
    def pending(self) -> int:
        """Requests currently inside :meth:`handle` (queued or running)."""
        return self._pending

    def _drain_event(self) -> asyncio.Event:
        if self._drained is None:
            self._drained = asyncio.Event()
            self._drained.set()
        return self._drained

    # ------------------------------------------------------------------
    async def handle(self, request: QueryRequest) -> QueryResponse:
        """Serve one request end to end (the in-process client entry)."""
        watch = Stopwatch()
        if not self._accepting:
            self.telemetry.count("rejected")
            return QueryResponse.failure(
                request.request_id,
                SERVICE_SHUTTING_DOWN,
                "service is shutting down; not accepting new queries",
            )
        drained = self._drain_event()
        self._pending += 1
        drained.clear()
        try:
            return await self._admit_and_run(request, watch)
        finally:
            self._pending -= 1
            if self._pending == 0:
                drained.set()

    async def _admit_and_run(
        self, request: QueryRequest, watch: Stopwatch
    ) -> QueryResponse:
        try:
            self.telemetry.gauge_set(
                "queue_depth", self.admission.queue_depth + 1
            )
            if request.deadline_ms is not None:
                # Bound the queue wait by the deadline so an expired
                # request leaves its queue slot and answers promptly
                # instead of holding it until admission.
                slot = await asyncio.wait_for(
                    self.admission.admit(), request.deadline_ms / 1000
                )
            else:
                slot = await self.admission.admit()
        except asyncio.TimeoutError:
            self.telemetry.count("rejected")
            self.telemetry.gauge_set(
                "queue_depth", self.admission.queue_depth
            )
            queue_wait_ms = watch.elapsed_seconds * 1000
            return self._finish(
                QueryResponse.failure(
                    request.request_id,
                    DEADLINE_EXCEEDED,
                    f"deadline of {request.deadline_ms:.1f}ms spent "
                    f"waiting for admission ({queue_wait_ms:.1f}ms)",
                ),
                queue_wait_ms,
                watch,
            )
        except AdmissionError as exc:
            # Overload, or a fast-abort shutdown failing the queue.
            self.telemetry.count("rejected")
            self.telemetry.gauge_set(
                "queue_depth", self.admission.queue_depth
            )
            code = SERVICE_OVERLOADED if self._accepting else (
                SERVICE_SHUTTING_DOWN
            )
            return self._finish(
                QueryResponse.failure(request.request_id, code, str(exc)),
                watch.elapsed_seconds * 1000,
                watch,
            )
        # From here the slot is held: everything up to the return must sit
        # inside the try so the finally's idempotent release covers every
        # path — a telemetry hiccup before the old try started would have
        # leaked the slot and wedged admission capacity forever (F002).
        queue_wait_ms = watch.elapsed_seconds * 1000
        timer: Optional[asyncio.TimerHandle] = None
        try:
            if self._aborting:
                # Granted in the race between shutdown(drain=False) and a
                # running query's release: hand the slot back unused.
                slot.release()
                self.telemetry.count("rejected")
                self.telemetry.gauge_set(
                    "in_flight", self.admission.in_flight
                )
                self.telemetry.gauge_set(
                    "queue_depth", self.admission.queue_depth
                )
                return self._finish(
                    QueryResponse.failure(
                        request.request_id,
                        SERVICE_SHUTTING_DOWN,
                        "service is shutting down; queued request aborted",
                    ),
                    queue_wait_ms,
                    watch,
                )
            self.telemetry.count("admitted")
            self.telemetry.observe("queue_wait_ms", queue_wait_ms)
            self.telemetry.gauge_set("in_flight", self.admission.in_flight)
            self.telemetry.gauge_set(
                "queue_depth", self.admission.queue_depth
            )

            token = CancellationToken()
            loop = asyncio.get_running_loop()
            if request.deadline_ms is not None:
                remaining_ms = request.deadline_ms - queue_wait_ms
                if remaining_ms <= 0:
                    self.telemetry.count("timed_out")
                    return self._finish(
                        QueryResponse.failure(
                            request.request_id,
                            DEADLINE_EXCEEDED,
                            f"deadline of {request.deadline_ms:.1f}ms spent "
                            f"waiting for admission ({queue_wait_ms:.1f}ms)",
                        ),
                        queue_wait_ms,
                        watch,
                    )
                timer = loop.call_later(
                    remaining_ms / 1000,
                    token.cancel,
                    f"deadline of {request.deadline_ms:.1f}ms exceeded",
                )
            self._live_tokens.add(token)
            try:
                outcome = await loop.run_in_executor(
                    self._pool, self._execute_blocking, request, token
                )
            finally:
                self._live_tokens.discard(token)
            self.telemetry.count("completed")
            self._count_reopt(outcome.runstats)
            self.telemetry.observe(
                "execution_ms", watch.elapsed_seconds * 1000 - queue_wait_ms
            )
            self.telemetry.observe("rows_returned", len(outcome.rows))
            return self._finish(
                QueryResponse(
                    request_id=request.request_id,
                    rows=outcome.rows,
                    columns=outcome.columns,
                    runstats=outcome.runstats,
                ),
                queue_wait_ms,
                watch,
            )
        except QueryCancelled as exc:
            if exc.reason.startswith("deadline"):
                self.telemetry.count("timed_out")
                code = DEADLINE_EXCEEDED
            else:
                self.telemetry.count("cancelled")
                code = SERVICE_SHUTTING_DOWN
            return self._finish(
                QueryResponse.failure(request.request_id, code, exc.reason),
                queue_wait_ms,
                watch,
            )
        except WorkerQueryError as exc:
            # A worker-side failure already classified into the wire
            # vocabulary: relay code and message verbatim.
            self.telemetry.count("failed")
            return self._finish(
                QueryResponse.failure(
                    request.request_id, exc.code, exc.message
                ),
                queue_wait_ms,
                watch,
            )
        except WorkerCrashed as exc:
            # The worker process died under this request.  The slot
            # settles through the finally below (conservation law), and
            # the pool respawns the worker on its next acquisition.
            self.telemetry.count("failed")
            return self._finish(
                QueryResponse.failure(
                    request.request_id, WORKER_CRASHED, str(exc)
                ),
                queue_wait_ms,
                watch,
            )
        except (ExpressionError, ServiceError) as exc:
            self.telemetry.count("failed")
            return self._finish(
                QueryResponse.failure(
                    request.request_id, BAD_REQUEST, str(exc)
                ),
                queue_wait_ms,
                watch,
            )
        except ReproError as exc:
            self.telemetry.count("failed")
            return self._finish(
                QueryResponse.failure(
                    request.request_id,
                    QUERY_ERROR,
                    f"{type(exc).__name__}: {exc}",
                ),
                queue_wait_ms,
                watch,
            )
        except Exception as exc:  # noqa: BLE001 — the wire must answer
            self.telemetry.count("failed")
            return self._finish(
                QueryResponse.failure(
                    request.request_id,
                    INTERNAL_ERROR,
                    f"{type(exc).__name__}: {exc}",
                ),
                queue_wait_ms,
                watch,
            )
        finally:
            if timer is not None:
                timer.cancel()
            slot.release()
            self.telemetry.gauge_set("in_flight", self.admission.in_flight)
            self.telemetry.gauge_set("queue_depth", self.admission.queue_depth)

    def _count_reopt(self, runstats: dict[str, Any]) -> None:
        """Fold a completed run's reopt episode into the counters.

        Reads the episode summary the reopt runner leaves in the run's
        lifecycle payload.  These counters annotate completed requests
        (one request, one slot, however many plans it took), so they stay
        outside :meth:`ServiceTelemetry.leaked_slots`' conservation sum.
        """
        lifecycle = runstats.get("lifecycle") or {}
        episode = lifecycle.get("reopt")
        if not episode or not episode.get("tripped"):
            return
        self.telemetry.count("reopt_trips")
        if episode.get("switched"):
            self.telemetry.count("reopt_wins")
        if episode.get("false_trip"):
            self.telemetry.count("reopt_false_trips")

    @staticmethod
    def _finish(
        response: QueryResponse, queue_wait_ms: float, watch: Stopwatch
    ) -> QueryResponse:
        response.queue_wait_ms = queue_wait_ms
        response.service_ms = watch.elapsed_seconds * 1000
        return response

    def _execute_blocking(
        self, request: QueryRequest, token: CancellationToken
    ) -> ExecutionOutcome:
        """The thread-pool half: parse, plan, execute, (maybe) harvest.

        With a worker pool attached the execution (and its monitoring)
        happens in a worker process; the SQL still parses *here* first so
        malformed requests fail fast as ``BAD_REQUEST`` without spending
        a worker, and the pool applies any returned observations to this
        service's authoritative feedback store before the reply returns.
        The ``reopt`` flag is in-process only: worker executions run the
        plain path (a worker's replan would read its own stale feedback
        snapshot, not this service's authoritative store).
        """
        query = parse_query(request.sql)
        monitor = (
            self.monitor_by_default
            if request.monitor is None
            else request.monitor
        )
        if self.worker_pool is not None:
            outcome = self.worker_pool.execute(
                request, token=token, monitor=monitor
            )
            return ExecutionOutcome(
                rows=outcome.rows,
                columns=outcome.columns,
                runstats=outcome.runstats,
            )
        requests = (
            tuple(default_requests(self.engine.database, query))
            if monitor
            else ()
        )
        item = WorkloadItem(
            query=query,
            requests=requests,
            use_feedback=request.use_feedback,
            hint=request.plan_hint(),
            remember=request.remember,
            exec_mode=request.exec_mode,
            # The reopt watchdog needs streaming monitor counters to
            # project from, so the flag is inert without monitors (and
            # the engine's session routing ignores requestless items).
            reopt=request.reopt or self.reopt_by_default,
        )
        session = self.engine.session()
        executed = self.engine.execute(
            item, session=session, cancellation=token
        )
        return ExecutionOutcome(
            rows=[list(row) for row in executed.result.rows],
            columns=list(executed.result.columns),
            runstats=executed.result.runstats.to_dict(),
        )

    # ------------------------------------------------------------------
    async def stats(self) -> dict[str, Any]:
        """The ``stats`` endpoint payload: telemetry + admission + engine."""
        return {
            "kind": "stats",
            "accepting": self._accepting,
            "telemetry": self.telemetry.snapshot(),
            "admission": self.admission.snapshot(),
            "engine": {
                "feedback_records": len(self.engine.feedback),
                "feedback_epoch": self.engine.feedback.epoch,
                "plan_cache": (
                    self.engine.plan_cache.stats.snapshot()
                    if self.engine.plan_cache is not None
                    else None
                ),
                "report": self.engine.report(),
            },
            "workers": (
                self.worker_pool.snapshot()
                if self.worker_pool is not None
                else None
            ),
        }

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, settle in-flight work, shut the engine down.

        ``drain=True`` lets queued and running queries finish;
        ``drain=False`` aborts the admission queue (each waiter answers
        ``SERVICE_SHUTTING_DOWN`` without executing) and cancels every
        live execution's token (each stops at its next page/batch
        boundary and answers ``SERVICE_SHUTTING_DOWN``).  Either way, by
        return the service is idle, the thread pool is closed, and the
        engine refuses new sessions.  Idempotent.
        """
        self._accepting = False
        if not drain:
            self._aborting = True
            self.admission.abort_waiters(
                "service is shutting down; queued request aborted"
            )
            for token in list(self._live_tokens):
                token.cancel("shutdown: service stopping")
        await self._drain_event().wait()
        # Post-drain teardown: every request has answered and the pool's
        # workers are idle (or stopping at their next checkpoint), so
        # these two blocking joins return promptly and nothing else runs
        # on the loop that they could starve.
        self._pool.shutdown(wait=True)  # lint: disable=C003
        if self.worker_pool is not None:
            self.worker_pool.shutdown()
        if not self.engine.closed:
            self.engine.shutdown(drain=True)  # lint: disable=C003
