"""Marshalling for the multi-process worker tier.

Everything that crosses the coordinator↔worker process boundary is a
plain dict of JSON-able scalars built here, so both sides agree on one
wire shape and neither smuggles live objects across (R014 makes that
structural: worker-importable modules cannot reach the coordinator's
``PlanCache``/``FeedbackStore`` — observations travel only through these
functions).

Three payload families:

* **worker spec** — :class:`WorkerSpec` names a dotted database factory
  (``"module:callable"``) plus its kwargs, so a child process can
  rebuild the *same* seeded database the coordinator holds and execute
  against a bit-identical copy;
* **observations** — a harvested
  :class:`~repro.core.requests.PageCountObservation` flattens to
  ``{key, table, mechanism, estimate, exact, answered, reason}`` and
  reconstitutes into an observation the coordinator's
  :meth:`~repro.core.feedback.FeedbackStore.record_observations` folds
  in bit-identically to an in-process harvest (same key, same estimate,
  same exactness, same mechanism string, same table-epoch tagging);
* **query/reply envelopes** — built inline by the pool and the child
  loop (:mod:`repro.service.workers` / ``worker_main``); this module
  only owns the parts both sides must agree on byte for byte.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence, cast

from repro.common.errors import WorkerError
from repro.core.requests import (
    Mechanism,
    PageCountObservation,
    PageCountRequest,
)


@dataclass(frozen=True)
class WorkerSpec:
    """How a worker child rebuilds the coordinator's database.

    ``database_factory`` is a dotted ``"module:callable"`` path (it must
    be importable in the child — worker processes start via ``spawn``,
    so nothing is inherited from the parent's memory); ``factory_kwargs``
    are passed through verbatim.  Building from the same factory with
    the same kwargs is what keeps the loadgen equivalence diff at zero:
    the child's rows, B-tree heights and page layout are bit-identical
    to the coordinator's.
    """

    database_factory: str
    factory_kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if ":" not in self.database_factory:
            raise WorkerError(
                "database_factory must be a dotted 'module:callable' path, "
                f"got {self.database_factory!r}"
            )

    def resolve_factory(self) -> Callable[..., Any]:
        """Import and return the factory callable (child-side)."""
        module_name, _, attr = self.database_factory.partition(":")
        try:
            module = importlib.import_module(module_name)
            factory = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise WorkerError(
                f"cannot resolve database factory "
                f"{self.database_factory!r}: {exc}"
            ) from exc
        if not callable(factory):
            raise WorkerError(
                f"database factory {self.database_factory!r} is not callable"
            )
        return factory

    def build_database(self) -> Any:
        return self.resolve_factory()(**self.factory_kwargs)


@dataclass(frozen=True)
class _WireRequest:
    """Stand-in for a :data:`~repro.core.requests.PageCountRequest`.

    A harvested observation only needs two things from its request to be
    applied to the store: the feedback ``key()`` and the owning
    ``table`` (for epoch tagging).  The expression objects themselves
    stay on the worker side of the boundary.
    """

    table: str
    wire_key: str

    def key(self) -> str:
        return self.wire_key


def marshal_observations(
    observations: Sequence[PageCountObservation],
) -> list[dict[str, Any]]:
    """Flatten harvested observations for the trip back to the parent."""
    payload = []
    for obs in observations:
        request_table = getattr(obs.request, "table", None)
        if request_table is None:
            request_table = getattr(obs.request, "inner_table", "")
        payload.append(
            {
                "key": obs.key,
                "table": str(request_table),
                "mechanism": obs.mechanism.value,
                "estimate": obs.estimate,
                "exact": obs.exact,
                "answered": obs.answered,
                "reason": obs.reason,
            }
        )
    return payload


def unmarshal_observations(
    payload: Sequence[Mapping[str, Any]],
) -> list[PageCountObservation]:
    """Reconstitute wire observations for the coordinator-side harvest.

    The result feeds
    :meth:`~repro.core.feedback.FeedbackStore.record_observations`
    unchanged: same keys, same estimates/exactness, same mechanism
    values and the same table-epoch tagging as the in-process path, so a
    round-tripped batch leaves the store bit-identical to a local
    harvest of the same run.
    """
    observations = []
    for entry in payload:
        try:
            observations.append(
                PageCountObservation(
                    request=cast(
                        PageCountRequest,
                        _WireRequest(
                            table=str(entry["table"]),
                            wire_key=str(entry["key"]),
                        ),
                    ),
                    mechanism=Mechanism(entry["mechanism"]),
                    estimate=entry["estimate"],
                    exact=bool(entry["exact"]),
                    answered=bool(entry["answered"]),
                    reason=str(entry.get("reason", "")),
                )
            )
        except (KeyError, ValueError) as exc:
            raise WorkerError(
                f"malformed wire observation {dict(entry)!r}: {exc}"
            ) from exc
    return observations
