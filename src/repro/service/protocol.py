"""Wire protocol: newline-delimited JSON request/response messages.

One message per line, UTF-8 JSON, no framing beyond the newline — trivial
to speak from ``nc``, a test, or any language.  Every message carries a
``kind``:

``query``
    Execute SQL through the engine's staged lifecycle.  The request mirrors
    :meth:`repro.session.Session.run`: exec mode, feedback use, an optional
    plan hint, an optional harvest (``remember``) and an optional
    ``deadline_ms`` budget covering queue wait + execution.
``stats``
    Return the service telemetry registry, admission-controller state and
    the engine report.

Responses echo the request's ``id`` and carry either the result payload
(rows, ``RunStats.to_dict()``, the lifecycle trace) or a machine-readable
``error_code`` from :data:`ERROR_CODES`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Optional

from repro.common.errors import ServiceError
from repro.optimizer.hints import PlanHint

#: Machine-readable error codes a response may carry.
SERVICE_OVERLOADED = "SERVICE_OVERLOADED"
SERVICE_SHUTTING_DOWN = "SERVICE_SHUTTING_DOWN"
DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
BAD_REQUEST = "BAD_REQUEST"
QUERY_ERROR = "QUERY_ERROR"
INTERNAL_ERROR = "INTERNAL_ERROR"
#: A worker process died while this request was in flight on it.
WORKER_CRASHED = "WORKER_CRASHED"

ERROR_CODES = (
    SERVICE_OVERLOADED,
    SERVICE_SHUTTING_DOWN,
    DEADLINE_EXCEEDED,
    BAD_REQUEST,
    QUERY_ERROR,
    INTERNAL_ERROR,
    WORKER_CRASHED,
)

_EXEC_MODES = ("row", "batch", "columnar")


@dataclass(frozen=True)
class QueryRequest:
    """One client query as it crosses the wire."""

    sql: str
    request_id: str = ""
    exec_mode: str = "row"
    #: Optimize with the engine's shared feedback store folded in.
    use_feedback: bool = False
    #: Harvest this run's observations into the shared store (epoch bump).
    remember: bool = False
    #: Attach the default page-count monitor requests for the query.
    #: ``None`` (unspecified on the wire) defers to the service's
    #: ``monitor_by_default``; an explicit value always wins.
    monitor: Optional[bool] = None
    #: Optional plan restriction, as :class:`PlanHint` fields
    #: (``{"kind": "table_scan"}``, ...).
    hint: Optional[dict[str, Any]] = None
    #: Run under the mid-query re-optimization watchdog: the execution
    #: may be cancelled at a checkpoint, replanned from partial actuals
    #: and switched to a better plan (episode outcome lands in the
    #: response's ``runstats.lifecycle["reopt"]``).  Needs monitoring —
    #: a request that also disables monitors runs plain.
    reopt: bool = False
    #: Total budget in wall-clock milliseconds (queue wait + execution);
    #: ``None`` means no deadline.
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.sql, str) or not self.sql.strip():
            raise ServiceError("query request needs a non-empty 'sql' string")
        if self.exec_mode not in _EXEC_MODES:
            raise ServiceError(
                f"unknown exec_mode {self.exec_mode!r}; expected "
                f"{'|'.join(_EXEC_MODES)}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ServiceError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )

    def plan_hint(self) -> Optional[PlanHint]:
        """Materialize the hint dict (validates the kind)."""
        if self.hint is None:
            return None
        try:
            return PlanHint(**self.hint)
        except TypeError as exc:
            raise ServiceError(f"malformed hint {self.hint!r}: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        payload = {"kind": "query", **asdict(self)}
        return {k: v for k, v in payload.items() if v is not None}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        fields = dict(payload)
        fields.pop("kind", None)
        unknown = set(fields) - {
            "sql",
            "request_id",
            "exec_mode",
            "use_feedback",
            "remember",
            "monitor",
            "hint",
            "reopt",
            "deadline_ms",
        }
        if unknown:
            raise ServiceError(
                f"unknown query request field(s) {sorted(unknown)}"
            )
        if "sql" not in fields:
            raise ServiceError("query request needs a non-empty 'sql' string")
        return cls(**fields)


@dataclass
class QueryResponse:
    """The service's answer to one request."""

    request_id: str = ""
    status: str = "ok"  # "ok" | "error"
    error_code: str = ""
    error: str = ""
    #: Result rows as lists (JSON has no tuples); empty on error.
    rows: list[list[Any]] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    #: ``RunStats.to_dict()`` of the execution (includes the lifecycle
    #: trace and page-count observations); ``None`` on error.
    runstats: Optional[dict[str, Any]] = None
    #: Milliseconds spent waiting for an admission slot.
    queue_wait_ms: float = 0.0
    #: Total milliseconds inside the service (queue wait + execution).
    service_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": "response",
            "request_id": self.request_id,
            "status": self.status,
            "queue_wait_ms": self.queue_wait_ms,
            "service_ms": self.service_ms,
        }
        if self.ok:
            payload["rows"] = self.rows
            payload["columns"] = self.columns
            payload["runstats"] = self.runstats
        else:
            payload["error_code"] = self.error_code
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryResponse":
        return cls(
            request_id=payload.get("request_id", ""),
            status=payload.get("status", "error"),
            error_code=payload.get("error_code", ""),
            error=payload.get("error", ""),
            rows=payload.get("rows", []) or [],
            columns=list(payload.get("columns", []) or []),
            runstats=payload.get("runstats"),
            queue_wait_ms=payload.get("queue_wait_ms", 0.0),
            service_ms=payload.get("service_ms", 0.0),
        )

    @classmethod
    def failure(
        cls, request_id: str, code: str, message: str
    ) -> "QueryResponse":
        if code not in ERROR_CODES:
            raise ServiceError(f"unknown error code {code!r}")
        return cls(
            request_id=request_id, status="error", error_code=code,
            error=message,
        )


def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (
        json.dumps(payload, separators=(",", ":"), default=_jsonify) + "\n"
    ).encode("utf-8")


def _jsonify(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"cannot serialize {type(value).__name__} on the wire")


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one wire frame; raises :class:`ServiceError` on junk."""
    text = line.decode("utf-8") if isinstance(line, bytes) else line
    text = text.strip()
    if not text:
        raise ServiceError("empty message")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"malformed JSON message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(
            f"message must be a JSON object, got {type(payload).__name__}"
        )
    return payload
