"""NDJSON-over-TCP front end for :class:`QueryService`.

``asyncio.start_server`` accept loop; each connection is a stream of
newline-delimited JSON messages, answered in order on the same socket.
All real work — admission, deadlines, engine execution — lives in
:class:`~repro.service.service.QueryService`; this module only frames
bytes and maps junk input to ``BAD_REQUEST`` without dropping the
connection.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.common.errors import ServiceError
from repro.service.protocol import (
    BAD_REQUEST,
    QueryRequest,
    QueryResponse,
    decode_message,
    encode_message,
)
from repro.service.service import QueryService

#: Refuse absurd frames before json-parsing them (1 MiB per line).
MAX_LINE_BYTES = 1 << 20


class QueryServer:
    """Serve a :class:`QueryService` on a TCP host/port."""

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0`` (ephemeral)."""
        if self._server is None:
            raise ServiceError("server is not running")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise ServiceError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )
        return self.address

    async def stop(self, drain: bool = True) -> None:
        """Close the listener, then shut the service (and engine) down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown(drain=drain)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        QueryResponse.failure(
                            "", BAD_REQUEST,
                            f"message exceeds {MAX_LINE_BYTES} bytes",
                        ).to_dict(),
                    )
                    break
                if not line:
                    break  # client closed its end
                if not line.strip():
                    continue  # bare keep-alive newline
                await self._send(writer, await self._dispatch(line))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing to answer
        finally:
            # No wait_closed(): every write was drained, and awaiting the
            # close handshake here leaves the handler task alive across
            # loop teardown (noisy CancelledError in 3.11's streams).
            writer.close()

    async def _dispatch(self, line: bytes) -> dict[str, Any]:
        try:
            payload = decode_message(line)
        except ServiceError as exc:
            return QueryResponse.failure("", BAD_REQUEST, str(exc)).to_dict()
        kind = payload.get("kind", "query")
        if kind == "stats":
            return await self.service.stats()
        if kind != "query":
            return QueryResponse.failure(
                str(payload.get("request_id", "")),
                BAD_REQUEST,
                f"unknown message kind {kind!r}; expected 'query' or 'stats'",
            ).to_dict()
        try:
            request = QueryRequest.from_dict(payload)
        except ServiceError as exc:
            return QueryResponse.failure(
                str(payload.get("request_id", "")), BAD_REQUEST, str(exc)
            ).to_dict()
        except TypeError as exc:
            return QueryResponse.failure(
                str(payload.get("request_id", "")),
                BAD_REQUEST,
                f"malformed query request: {exc}",
            ).to_dict()
        response = await self.service.handle(request)
        return response.to_dict()

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        writer.write(encode_message(payload))
        await writer.drain()
