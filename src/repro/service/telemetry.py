"""Service telemetry registry: counters, histograms and gauges.

The service's observable contract, exposed through the ``stats`` wire
request and printed by the load harness.  Three instrument shapes:

* :class:`Counter` — monotonically increasing event counts (admitted,
  rejected, completed, timed-out, cancelled, failed);
* :class:`Histogram` — recorded samples with tail percentiles
  (queue-wait ms, execution wall-clock ms, rows returned);
* :class:`Gauge` — a current level (queries in flight, queue depth).

All instruments are thread-safe under one registry lock: records arrive
from the event-loop thread while tests and the stats endpoint snapshot
concurrently.  Percentile math is shared with the figure harness
(:func:`repro.harness.reporting.percentile`).
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.harness.reporting import format_table, latency_summary

#: Counters every :class:`ServiceTelemetry` starts with.
#: ``worker_restarts`` counts worker-process respawns by the
#: multi-process tier (0 on a pool-less service — the snapshot shape is
#: identical either way).  The ``reopt_*`` counters describe mid-query
#: re-optimization episodes (``reopt_trips`` = watchdog cancellations,
#: ``reopt_wins`` = trips whose replan chose a different plan,
#: ``reopt_false_trips`` = trips that re-chose the same plan); they
#: annotate *completed* requests, so they stay outside the admission
#: slot-conservation sum in :func:`leaked_slots_from`.
STANDARD_COUNTERS = (
    "admitted",
    "rejected",
    "completed",
    "timed_out",
    "cancelled",
    "failed",
    "worker_restarts",
    "reopt_trips",
    "reopt_wins",
    "reopt_false_trips",
)

#: Histograms every :class:`ServiceTelemetry` starts with.
STANDARD_HISTOGRAMS = ("queue_wait_ms", "execution_ms", "rows_returned")

#: Gauges every :class:`ServiceTelemetry` starts with.  The two
#: ``workers_*`` gauges track the multi-process tier's occupancy and
#: stay 0 on a pool-less service.
STANDARD_GAUGES = ("in_flight", "queue_depth", "workers_busy", "workers_idle")


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A current level; settable and adjustable."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def adjust(self, delta: int) -> None:
        self.value += delta


class Histogram:
    """Recorded samples with percentile digests.

    Keeps every sample (service runs are bounded by the load harness's
    request count, not an unbounded stream); ``summary()`` digests to
    count/mean/p50/p95/p99/max.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def record(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self) -> dict[str, float]:
        return latency_summary(self.samples)


class ServiceTelemetry:
    """The service's instrument registry.

    Instruments are created eagerly (:data:`STANDARD_COUNTERS` and
    friends) so a snapshot always has the same shape — a counter that
    never fired reports 0, not a missing key.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = {name: Counter(name) for name in STANDARD_COUNTERS}
        self._histograms = {
            name: Histogram(name) for name in STANDARD_HISTOGRAMS
        }
        self._gauges = {name: Gauge(name) for name in STANDARD_GAUGES}

    # -- recording ------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name].inc(amount)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self._histograms[name].record(value)

    def gauge_set(self, name: str, value: int) -> None:
        with self._lock:
            self._gauges[name].set(value)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name].value

    def gauge(self, name: str) -> int:
        with self._lock:
            return self._gauges[name].value

    def histogram(self, name: str) -> dict[str, float]:
        with self._lock:
            return self._histograms[name].summary()

    def snapshot(self) -> dict[str, Any]:
        """One coherent read of every instrument (single lock hold)."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in self._counters.items()
                },
                "gauges": {
                    name: gauge.value for name, gauge in self._gauges.items()
                },
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in self._histograms.items()
                },
            }

    def render(self) -> str:
        """Plain-text report (the ``stats`` endpoint's human form)."""
        snap = self.snapshot()
        lines = [
            "counters: "
            + " ".join(f"{k}={v}" for k, v in snap["counters"].items()),
            "gauges:   "
            + " ".join(f"{k}={v}" for k, v in snap["gauges"].items()),
        ]
        rows = [
            [
                name,
                digest["count"],
                digest["mean"],
                digest["p50"],
                digest["p95"],
                digest["p99"],
                digest["max"],
            ]
            for name, digest in snap["histograms"].items()
        ]
        lines.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                rows,
            )
        )
        return "\n".join(lines)

    def leaked_slots(self) -> Optional[str]:
        """Admission-slot conservation check; ``None`` when balanced.

        Every admitted request must terminate in exactly one of
        completed/timed-out/cancelled/failed, and nothing may remain in
        flight — the load harness and the CI smoke gate call this after a
        drained run.
        """
        return leaked_slots_from(self.snapshot())


def leaked_slots_from(snapshot: dict[str, Any]) -> Optional[str]:
    """:meth:`ServiceTelemetry.leaked_slots` over a snapshot dict.

    Module-level so remote auditors (the TCP load generator reading the
    ``stats`` endpoint) can run the same conservation check without
    holding the registry.
    """
    counters = snapshot["counters"]
    finished = (
        counters["completed"]
        + counters["timed_out"]
        + counters["cancelled"]
        + counters["failed"]
    )
    if counters["admitted"] != finished:
        return (
            f"admitted={counters['admitted']} but only {finished} "
            "request(s) reached a terminal state — an admission slot "
            "leaked"
        )
    if snapshot["gauges"]["in_flight"] != 0:
        return (
            f"in_flight gauge stuck at {snapshot['gauges']['in_flight']} "
            "after drain"
        )
    return None
