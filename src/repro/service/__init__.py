"""The query service layer: asyncio front end over a shared engine.

See :mod:`repro.service.service` for the subsystem overview (admission
control, deadlines, telemetry, graceful shutdown) and
``docs/architecture.md`` for where it sits in the stack.
"""

from repro.service.admission import AdmissionController, AdmissionSlot
from repro.service.client import InProcessClient, TCPClient
from repro.service.marshal import (
    WorkerSpec,
    marshal_observations,
    unmarshal_observations,
)
from repro.service.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    ERROR_CODES,
    INTERNAL_ERROR,
    QUERY_ERROR,
    SERVICE_OVERLOADED,
    SERVICE_SHUTTING_DOWN,
    WORKER_CRASHED,
    QueryRequest,
    QueryResponse,
    decode_message,
    encode_message,
)
from repro.service.server import QueryServer
from repro.service.service import ExecutionOutcome, QueryService
from repro.service.telemetry import (
    STANDARD_COUNTERS,
    STANDARD_GAUGES,
    STANDARD_HISTOGRAMS,
    ServiceTelemetry,
)
from repro.service.workers import WorkerOutcome, WorkerPool

__all__ = [
    "AdmissionController",
    "AdmissionSlot",
    "BAD_REQUEST",
    "DEADLINE_EXCEEDED",
    "ERROR_CODES",
    "ExecutionOutcome",
    "INTERNAL_ERROR",
    "InProcessClient",
    "QUERY_ERROR",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "QueryService",
    "SERVICE_OVERLOADED",
    "SERVICE_SHUTTING_DOWN",
    "STANDARD_COUNTERS",
    "STANDARD_GAUGES",
    "STANDARD_HISTOGRAMS",
    "ServiceTelemetry",
    "TCPClient",
    "WORKER_CRASHED",
    "WorkerOutcome",
    "WorkerPool",
    "WorkerSpec",
    "decode_message",
    "encode_message",
    "marshal_observations",
    "unmarshal_observations",
]
