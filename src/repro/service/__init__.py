"""The query service layer: asyncio front end over a shared engine.

See :mod:`repro.service.service` for the subsystem overview (admission
control, deadlines, telemetry, graceful shutdown) and
``docs/architecture.md`` for where it sits in the stack.
"""

from repro.service.admission import AdmissionController, AdmissionSlot
from repro.service.client import InProcessClient, TCPClient
from repro.service.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    ERROR_CODES,
    INTERNAL_ERROR,
    QUERY_ERROR,
    SERVICE_OVERLOADED,
    SERVICE_SHUTTING_DOWN,
    QueryRequest,
    QueryResponse,
    decode_message,
    encode_message,
)
from repro.service.server import QueryServer
from repro.service.service import QueryService
from repro.service.telemetry import (
    STANDARD_COUNTERS,
    STANDARD_GAUGES,
    STANDARD_HISTOGRAMS,
    ServiceTelemetry,
)

__all__ = [
    "AdmissionController",
    "AdmissionSlot",
    "BAD_REQUEST",
    "DEADLINE_EXCEEDED",
    "ERROR_CODES",
    "INTERNAL_ERROR",
    "InProcessClient",
    "QUERY_ERROR",
    "QueryRequest",
    "QueryResponse",
    "QueryServer",
    "QueryService",
    "SERVICE_OVERLOADED",
    "SERVICE_SHUTTING_DOWN",
    "STANDARD_COUNTERS",
    "STANDARD_GAUGES",
    "STANDARD_HISTOGRAMS",
    "ServiceTelemetry",
    "TCPClient",
    "decode_message",
    "encode_message",
]
