"""Clients for the query service: in-process and TCP.

:class:`InProcessClient` calls :meth:`QueryService.handle` directly on
the running event loop — no sockets, no serialization — which is what the
load harness and the CI smoke use: it exercises admission, deadlines and
the thread-pool bridge without measuring the kernel's TCP stack.

:class:`TCPClient` speaks the NDJSON wire protocol over a real socket,
one request/response at a time per connection (the server answers in
order, so a connection is a serial channel; open several for
concurrency).
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional

from repro.common.errors import ServiceError
from repro.service.protocol import (
    QueryRequest,
    QueryResponse,
    decode_message,
    encode_message,
)
from repro.service.server import MAX_LINE_BYTES
from repro.service.service import QueryService


class InProcessClient:
    """Zero-copy client: requests go straight into the service."""

    def __init__(self, service: QueryService) -> None:
        self.service = service

    async def query(self, request: QueryRequest) -> QueryResponse:
        return await self.service.handle(request)

    async def stats(self) -> dict[str, Any]:
        return await self.service.stats()


class TCPClient:
    """One NDJSON connection to a running :class:`QueryServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "TCPClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def __aenter__(self) -> "TCPClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _round_trip(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self._reader is None or self._writer is None:
            raise ServiceError("client is not connected; call connect()")
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return decode_message(line)

    async def query(self, request: QueryRequest) -> QueryResponse:
        return QueryResponse.from_dict(
            await self._round_trip(request.to_dict())
        )

    async def stats(self) -> dict[str, Any]:
        return await self._round_trip({"kind": "stats"})
