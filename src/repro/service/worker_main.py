"""Worker-process entry point for the multi-process execution tier.

Each worker child rebuilds the seeded database from its
:class:`~repro.service.marshal.WorkerSpec`, holds its **own**
:class:`~repro.engine.Engine` (private plan cache, private feedback
*replica*) and serves one query at a time off a request pipe.  The
division of authority is strict:

* the **coordinator** owns the one authoritative ``FeedbackStore`` and
  ``PlanCache``; this module never touches them (codelint R014 makes
  that structural) — every query here runs with ``remember=False`` and
  harvested observations travel back flattened by
  :func:`~repro.service.marshal.marshal_observations` for the
  coordinator to apply as one atomic batch;
* a ``use_feedback`` query reads a **replica**: the coordinator attaches
  a serialized store snapshot when the worker's copy is stale, and the
  child swaps its engine's store wholesale — replicas are rebuilt, never
  mutated, so a worker cannot bump an epoch anybody else observes.

Cancellation crosses the boundary cooperatively: a dedicated cancel pipe
is watched by a daemon thread that cancels the *current* query's
:class:`~repro.common.cancellation.CancellationToken` (sequence numbers
keep a late cancel from hitting the next query); the executor then stops
at its next page/batch checkpoint exactly as it does in-process.

The ``debug`` envelope field exists for the crash tests only: it lets a
test make the child die mid-scan (``exit_after_checks``) or between
finishing a query and replying (``exit_before_reply``), proving the
coordinator's slot-conservation and respawn behavior.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Mapping, Optional

from repro.common.cancellation import CancellationToken
from repro.common.errors import (
    ExpressionError,
    QueryCancelled,
    ReproError,
    ServiceError,
)
from repro.core.feedback import FeedbackStore
from repro.engine import Engine, WorkloadItem
from repro.harness.methodology import default_requests
from repro.harness.timing import Stopwatch
from repro.service.marshal import WorkerSpec, marshal_observations
from repro.service.protocol import (
    BAD_REQUEST,
    INTERNAL_ERROR,
    QUERY_ERROR,
    QueryRequest,
)
from repro.sql import parse_query

#: Exit status a debug-crashed worker dies with (tests assert respawn,
#: not this value; it only keeps crash exits distinguishable in ps/CI).
CRASH_EXIT_STATUS = 17


class _CrashAfterChecksToken(CancellationToken):
    """Debug token: hard-kill the process at the Nth checkpoint.

    Checkpoints fire at page/batch boundaries inside the executor, so
    ``os._exit`` here is a genuine crash *mid-scan* — no reply, no
    cleanup, the pipe just goes EOF on the coordinator.
    """

    def __init__(self, crash_after: int) -> None:
        super().__init__()
        self._crash_after = crash_after
        self._checks = 0

    def checkpoint(self) -> None:
        self._checks += 1
        if self._checks >= self._crash_after:
            os._exit(CRASH_EXIT_STATUS)
        super().checkpoint()


class _CurrentQuery:
    """The cancel-watcher's view of what is executing right now.

    The watcher thread and the serve loop race by construction (that is
    the point); the lock plus the sequence number make a cancel land on
    exactly the query it was sent for.  A cancel that arrives *before*
    its query registers (the coordinator can send one the instant the
    envelope is written) is parked and applied at registration.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = -1
        self._token: Optional[CancellationToken] = None
        self._pending: dict[int, str] = {}

    def register(self, seq: int, token: CancellationToken) -> None:
        with self._lock:
            self._seq = seq
            self._token = token
            reason = self._pending.get(seq)
            self._pending = {}
        # Cancel outside the lock: token.cancel is idempotent and
        # thread-safe, and calling it under _lock would order this lock
        # against whatever the token's own cancel path takes.
        if reason is not None:
            token.cancel(reason)

    def clear(self, seq: int) -> None:
        with self._lock:
            if self._seq == seq:
                self._token = None

    def cancel(self, seq: int, reason: str) -> None:
        with self._lock:
            if seq == self._seq and self._token is not None:
                self._token.cancel(reason)
            elif seq > self._seq:
                self._pending[seq] = reason


def _watch_cancels(cancel_conn: Any, current: _CurrentQuery) -> None:
    """Daemon loop: forward cancel envelopes into the current token."""
    while True:
        try:
            message = cancel_conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(message, dict):
            continue
        current.cancel(
            int(message.get("seq", -1)),
            str(message.get("reason", "cancelled")),
        )


def _debug_hold(token: CancellationToken, debug: Mapping[str, Any]) -> None:
    """Test hook: park mid-query for ``hold_s`` seconds.

    Checkpoints while parked (so a forwarded cancel lands at a
    deterministic point) unless ``ignore_cancel`` is set — the rogue-
    worker simulation that forces the coordinator's grace-window kill.
    """
    pause = threading.Event()
    watch = Stopwatch()
    obeys_cancel = not debug.get("ignore_cancel", False)
    while watch.elapsed_seconds < float(debug["hold_s"]):
        if obeys_cancel:
            token.checkpoint()
        pause.wait(0.005)


def _make_token(debug: Optional[Mapping[str, Any]]) -> CancellationToken:
    if debug and "exit_after_checks" in debug:
        return _CrashAfterChecksToken(int(debug["exit_after_checks"]))
    return CancellationToken()


def _serve_query(
    engine: Engine, message: Mapping[str, Any], current: _CurrentQuery
) -> dict[str, Any]:
    """Execute one query envelope; always returns a reply envelope.

    Failures are classified into the service's wire error-code
    vocabulary *here*, with the same message formatting as the
    in-process path, so the coordinator can relay them verbatim and a
    worker-side failure is indistinguishable from a local one.
    """
    seq = int(message["seq"])
    debug = message.get("debug")
    token = _make_token(debug)
    current.register(seq, token)
    try:
        feedback_sync = message.get("feedback")
        if feedback_sync is not None:
            # Replica swap: rebuilt wholesale, never mutated in place.
            engine.feedback = FeedbackStore.from_json(feedback_sync)
        request = QueryRequest.from_dict(message["request"])
        if debug and debug.get("hold_s"):
            _debug_hold(token, debug)
        query = parse_query(request.sql)
        requests = (
            tuple(default_requests(engine.database, query))
            if bool(message.get("monitor", False))
            else ()
        )
        item = WorkloadItem(
            query=query,
            requests=requests,
            use_feedback=request.use_feedback,
            hint=request.plan_hint(),
            remember=False,  # the coordinator owns the harvest
            exec_mode=request.exec_mode,
        )
        executed = engine.execute(item, cancellation=token)
        reply: dict[str, Any] = {
            "status": "ok",
            "seq": seq,
            "rows": [list(row) for row in executed.result.rows],
            "columns": list(executed.result.columns),
            "runstats": executed.result.runstats.to_dict(),
            "observations": (
                marshal_observations(executed.observations)
                if request.remember
                else []
            ),
        }
        if debug and debug.get("exit_before_reply"):
            os._exit(CRASH_EXIT_STATUS)
        return reply
    except QueryCancelled as exc:
        return {"status": "cancelled", "seq": seq, "reason": exc.reason}
    except (ExpressionError, ServiceError) as exc:
        return {
            "status": "error",
            "seq": seq,
            "code": BAD_REQUEST,
            "message": str(exc),
        }
    except ReproError as exc:
        return {
            "status": "error",
            "seq": seq,
            "code": QUERY_ERROR,
            "message": f"{type(exc).__name__}: {exc}",
        }
    except Exception as exc:  # noqa: BLE001 — the pipe must answer
        return {
            "status": "error",
            "seq": seq,
            "code": INTERNAL_ERROR,
            "message": f"{type(exc).__name__}: {exc}",
        }
    finally:
        current.clear(seq)


def worker_entry(conn: Any, cancel_conn: Any, spec: WorkerSpec) -> None:
    """The child process's main loop (target of ``WorkerPool`` spawns).

    Rebuilds the database, then serves ``query`` envelopes one at a time
    until a ``stop`` envelope or pipe EOF.  The first query envelope may
    already be queued in the pipe while the rebuild runs — the
    coordinator never waits for a ready handshake.
    """
    current = _CurrentQuery()
    watcher = threading.Thread(
        target=_watch_cancels,
        args=(cancel_conn, current),
        name="worker-cancel-watcher",
        daemon=True,
    )
    watcher.start()
    engine = Engine(spec.build_database())
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(message, dict):
            continue
        op = message.get("op")
        if op == "stop":
            return
        if op == "ping":
            conn.send({"status": "ok", "op": "ping"})
            continue
        if op == "query":
            conn.send(_serve_query(engine, message, current))
