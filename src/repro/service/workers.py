"""Coordinator side of the multi-process worker execution tier.

A :class:`WorkerPool` spawns N worker processes (each rebuilding the
seeded database from a :class:`~repro.service.marshal.WorkerSpec` and
holding its own engine) and routes admitted queries onto them, keeping
the service's single-process contract intact:

* **One authoritative feedback store.**  Workers execute with
  ``remember=False`` and return their harvested observations flattened;
  the pool applies each batch atomically through
  :meth:`Engine.harvest_observations` (epoch bumped exactly once per
  batch, zero-answerable batches are no-ops — the
  ``record_shard_runs`` contract).  ``use_feedback`` queries read a
  serialized replica shipped per worker, memoized per epoch.
* **Deadlines abandon or recycle, never leak.**  While a query is on a
  worker the pool polls the request's token; a cancel is forwarded over
  the worker's cancel pipe and the worker stops at its next checkpoint.
  A worker that ignores the cancel past the grace window is killed and
  respawned — either way the admission slot settles through the
  service's ``finally``.
* **Crashes are typed and contained.**  A worker dying mid-query raises
  :class:`~repro.common.errors.WorkerCrashed` (the service answers
  ``WORKER_CRASHED``); the dead handle stays pool-owned and is respawned
  on its next acquisition, counted by the ``worker_restarts`` telemetry
  counter and the per-worker ``respawns`` gauge.

The pool is thread-safe: callers are the service's executor threads.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any, Optional

from repro.common.cancellation import CancellationToken
from repro.common.errors import (
    QueryCancelled,
    WorkerCrashed,
    WorkerError,
    WorkerQueryError,
)
from repro.engine import Engine
from repro.harness.timing import Stopwatch
from repro.service.marshal import WorkerSpec, unmarshal_observations
from repro.service.protocol import QueryRequest
from repro.service.telemetry import ServiceTelemetry
from repro.service.worker_main import worker_entry

#: Seconds a cancelled query may keep its worker before the pool kills
#: and recycles it (a cooperative stop normally lands within one page).
DEFAULT_CANCEL_GRACE_S = 5.0

#: Seconds granted to a stopping worker before it is killed outright.
SHUTDOWN_GRACE_S = 5.0

#: Reply-pipe poll interval while a query is out on a worker.
_POLL_INTERVAL_S = 0.02


@dataclass
class WorkerOutcome:
    """What a worker execution hands back to the service."""

    rows: list[list[Any]]
    columns: list[str]
    runstats: dict[str, Any]
    #: Observations stored into the authoritative feedback store by the
    #: coordinator-side harvest of this reply (0 unless ``remember``).
    harvested: int = 0


@dataclass
class _WorkerHandle:
    """One worker process plus its pipes and counters (pool-internal)."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    cancel_conn: Connection
    seq: int = 0
    busy: bool = False
    queries_served: int = 0
    respawns: int = 0
    #: Feedback epoch of the replica last shipped to this worker
    #: (-1 = never synced).
    synced_epoch: int = -1
    dead: bool = False

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    def snapshot(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "pid": self.process.pid,
            "alive": self.alive(),
            "busy": self.busy,
            "queries_served": self.queries_served,
            "respawns": self.respawns,
            "synced_epoch": self.synced_epoch,
        }


class WorkerPool:
    """N worker processes behind the admission controller.

    ``engine`` is the coordinator's engine — the owner of the one
    authoritative feedback store the pool harvests into and snapshots
    replicas from.  The pool never executes on it.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        num_workers: int,
        engine: Engine,
        telemetry: Optional[ServiceTelemetry] = None,
        cancel_grace_s: float = DEFAULT_CANCEL_GRACE_S,
    ) -> None:
        if num_workers <= 0:
            raise WorkerError(
                f"num_workers must be positive, got {num_workers}"
            )
        self.spec = spec
        self.num_workers = num_workers
        self.engine = engine
        self.telemetry = telemetry
        self.cancel_grace_s = cancel_grace_s
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._closed = False
        #: Replica payload memoized per epoch (one serialization per
        #: harvest, not per query).
        self._feedback_cache: Optional[tuple[int, str]] = None
        #: One-shot debug envelope armed by :meth:`inject_debug`.
        self._injected_debug: Optional[dict[str, Any]] = None
        self._handles: list[_WorkerHandle] = []
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        for worker_id in range(num_workers):
            handle = self._spawn(worker_id)
            self._handles.append(handle)
            self._idle.put(handle)
        self._update_gauges()

    # -- lifecycle ------------------------------------------------------
    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        parent_cancel, child_cancel = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_entry,
            args=(child_conn, child_cancel, self.spec),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        child_cancel.close()
        return _WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            cancel_conn=parent_cancel,
        )

    def _destroy(self, handle: _WorkerHandle) -> None:
        """Kill a worker's process and close its pipes (idempotent)."""
        handle.dead = True
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=SHUTDOWN_GRACE_S)
        for conn in (handle.conn, handle.cancel_conn):
            try:
                conn.close()
            except OSError:
                pass

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker's process in place, keeping its slot."""
        self._destroy(handle)
        fresh = self._spawn(handle.worker_id)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.cancel_conn = fresh.cancel_conn
        handle.dead = False
        handle.synced_epoch = -1
        handle.respawns += 1
        if self.telemetry is not None:
            self.telemetry.count("worker_restarts")

    def attach_telemetry(self, telemetry: ServiceTelemetry) -> None:
        """Bind the service's registry (the service calls this on init)."""
        self.telemetry = telemetry
        self._update_gauges()

    def rebind_engine(self, engine: Engine) -> None:
        """Point the harvest/replica side at a different coordinator
        engine (benchmarks reuse one spawned pool across runs).  Worker
        replicas are invalidated so the next ``use_feedback`` query
        ships a fresh snapshot."""
        with self._lock:
            self.engine = engine
            self._feedback_cache = None
            for handle in self._handles:
                handle.synced_epoch = -1

    def shutdown(self) -> None:
        """Stop every worker: polite ``stop`` first, then the kill."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for handle in self._handles:
            if handle.alive():
                try:
                    handle.conn.send({"op": "stop"})
                except (OSError, ValueError):
                    pass
        for handle in self._handles:
            handle.process.join(timeout=SHUTDOWN_GRACE_S)
            self._destroy(handle)
        self._update_gauges()

    def leaked_workers(self) -> list[int]:
        """PIDs of worker processes still alive (empty after shutdown)."""
        return [
            handle.process.pid or 0
            for handle in self._handles
            if handle.process.is_alive()
        ]

    # -- observability --------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            workers = [handle.snapshot() for handle in self._handles]
        busy = sum(1 for w in workers if w["busy"])
        return {
            "num_workers": self.num_workers,
            "busy": busy,
            "idle": len(workers) - busy,
            "restarts": sum(w["respawns"] for w in workers),
            "workers": workers,
        }

    def _update_gauges(self) -> None:
        if self.telemetry is None:
            return
        with self._lock:
            busy = sum(1 for handle in self._handles if handle.busy)
        self.telemetry.gauge_set("workers_busy", busy)
        self.telemetry.gauge_set("workers_idle", self.num_workers - busy)

    def inject_debug(self, debug: dict[str, Any]) -> None:
        """Arm a debug envelope for the next :meth:`execute` (tests only).

        The crash tests need to make a worker die while a request is in
        flight *through the service*, and the wire ``QueryRequest``
        (rightly) has no debug field — so the injection rides the pool.
        One-shot: consumed by the next execute, whichever thread runs it.
        """
        with self._lock:
            self._injected_debug = dict(debug)

    # -- execution ------------------------------------------------------
    def execute(
        self,
        request: QueryRequest,
        token: Optional[CancellationToken] = None,
        monitor: bool = False,
        debug: Optional[dict[str, Any]] = None,
    ) -> WorkerOutcome:
        """Run one admitted request on an idle worker (blocking).

        Called from the service's executor threads; blocks while all
        workers are busy (admission already bounds how many callers can
        be here).  Raises :class:`QueryCancelled`,
        :class:`WorkerQueryError` or :class:`WorkerCrashed` exactly like
        the in-process execution path raises its failures, so the
        service's exception-to-error-code mapping stays in one place.
        """
        if token is not None and token.cancelled:
            # Mirror the in-process path, where the first executor
            # checkpoint raises before any page is read: an already-
            # cancelled request never spends a worker.
            raise QueryCancelled(token.reason)
        if debug is None:
            with self._lock:
                debug = self._injected_debug
                self._injected_debug = None
        handle = self._acquire(token)
        handle.busy = True
        self._update_gauges()
        try:
            return self._run_on(handle, request, token, monitor, debug)
        finally:
            handle.busy = False
            self._idle.put(handle)
            self._update_gauges()

    def _acquire(self, token: Optional[CancellationToken]) -> _WorkerHandle:
        """Next idle worker, respawned first if its process died idle."""
        while True:
            if self._closed:
                raise WorkerError("worker pool is shut down")
            try:
                handle = self._idle.get(timeout=_POLL_INTERVAL_S)
            except queue.Empty:
                if token is not None and token.cancelled:
                    raise QueryCancelled(token.reason)
                continue
            if not handle.alive():
                self._respawn(handle)
            return handle

    def _feedback_payload(self) -> tuple[int, str]:
        with self._lock:
            epoch = self.engine.feedback.epoch
            if self._feedback_cache is None or self._feedback_cache[0] != epoch:
                self._feedback_cache = self.engine.feedback.snapshot_json()
            return self._feedback_cache

    def _run_on(
        self,
        handle: _WorkerHandle,
        request: QueryRequest,
        token: Optional[CancellationToken],
        monitor: bool,
        debug: Optional[dict[str, Any]],
    ) -> WorkerOutcome:
        seq = handle.next_seq()
        envelope: dict[str, Any] = {
            "op": "query",
            "seq": seq,
            "request": request.to_dict(),
            "monitor": monitor,
        }
        if request.use_feedback:
            epoch, payload = self._feedback_payload()
            if handle.synced_epoch != epoch:
                envelope["feedback"] = payload
                handle.synced_epoch = epoch
        if debug:
            envelope["debug"] = debug
        try:
            handle.conn.send(envelope)
        except (OSError, ValueError) as exc:
            handle.dead = True
            raise WorkerCrashed(
                f"worker {handle.worker_id} (pid {handle.process.pid}) "
                f"pipe closed before accepting a query: {exc}"
            ) from exc
        reply = self._await_reply(handle, seq, token)
        return self._interpret_reply(handle, request, reply)

    def _await_reply(
        self,
        handle: _WorkerHandle,
        seq: int,
        token: Optional[CancellationToken],
    ) -> dict[str, Any]:
        """Poll for the reply, forwarding a cancel and enforcing grace."""
        cancel_watch: Optional[Stopwatch] = None
        while True:
            try:
                if handle.conn.poll(_POLL_INTERVAL_S):
                    reply = handle.conn.recv()
                    if isinstance(reply, dict) and reply.get("seq") == seq:
                        return reply
                    continue  # stale frame from a pre-crash query
            except (EOFError, OSError):
                handle.dead = True
                raise WorkerCrashed(
                    f"worker {handle.worker_id} (pid {handle.process.pid}) "
                    "died mid-query; its request fails with WORKER_CRASHED "
                    "and the worker will be respawned"
                )
            if not handle.process.is_alive() and not handle.conn.poll(0):
                handle.dead = True
                raise WorkerCrashed(
                    f"worker {handle.worker_id} (pid {handle.process.pid}) "
                    "died mid-query; its request fails with WORKER_CRASHED "
                    "and the worker will be respawned"
                )
            if token is not None and token.cancelled:
                if cancel_watch is None:
                    cancel_watch = Stopwatch()
                    try:
                        handle.cancel_conn.send(
                            {"seq": seq, "reason": token.reason}
                        )
                    except (OSError, ValueError):
                        pass  # worker already dying; next poll sees EOF
                elif cancel_watch.elapsed_seconds > self.cancel_grace_s:
                    # The worker ignored the cancel past the grace
                    # window: abandon it (kill + respawn-on-next-use)
                    # so the admission slot settles now.
                    self._destroy(handle)
                    raise QueryCancelled(token.reason)

    def _interpret_reply(
        self,
        handle: _WorkerHandle,
        request: QueryRequest,
        reply: dict[str, Any],
    ) -> WorkerOutcome:
        status = reply.get("status")
        if status == "cancelled":
            raise QueryCancelled(str(reply.get("reason", "cancelled")))
        if status == "error":
            raise WorkerQueryError(
                str(reply.get("code", "INTERNAL_ERROR")),
                str(reply.get("message", "worker-side failure")),
            )
        if status != "ok":
            raise WorkerError(
                f"worker {handle.worker_id} sent a malformed reply "
                f"(status {status!r})"
            )
        handle.queries_served += 1
        harvested = 0
        if request.remember:
            observations = unmarshal_observations(
                reply.get("observations", [])
            )
            # Atomic batch into the one authoritative store: the epoch
            # advances exactly once, zero-answerable batches not at all.
            harvested = self.engine.harvest_observations(observations)
            if harvested:
                with self._lock:
                    self._feedback_cache = None
        return WorkerOutcome(
            rows=list(reply.get("rows", [])),
            columns=list(reply.get("columns", [])),
            runstats=dict(reply.get("runstats", {})),
            harvested=harvested,
        )
