"""Admission control: a bounded in-flight semaphore plus a bounded queue.

A service fronting a shared engine must bound *both* dimensions of load:

* ``max_in_flight`` — executions running concurrently on the thread pool
  (past the point of diminishing returns more concurrency only inflates
  every query's latency);
* ``max_queue_depth`` — admitted-but-waiting requests.  An unbounded
  queue converts overload into unbounded latency and memory; this one
  rejects instead, with an explicit ``SERVICE_OVERLOADED`` error the
  client can back off on.

The controller is a plain asyncio object: single event-loop, no locks.
``admit()`` either grants immediately, parks the caller in FIFO order, or
raises :class:`~repro.common.errors.AdmissionError`.  Grants hand back an
:class:`AdmissionSlot` whose idempotent :meth:`~AdmissionSlot.release`
passes the slot to the next waiter — the telemetry invariant checked
after every load run is that slots are conserved.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque

from repro.common.errors import AdmissionError


class AdmissionSlot:
    """Possession of one unit of service concurrency."""

    __slots__ = ("_controller", "_released")

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Give the slot back (idempotent — double release is a no-op,
        so error paths can release defensively without double-granting)."""
        if not self._released:
            self._released = True
            self._controller._release_one()


class AdmissionController:
    """Bounded concurrency + bounded waiting; reject past both limits."""

    def __init__(self, max_in_flight: int, max_queue_depth: int) -> None:
        if max_in_flight <= 0:
            raise ValueError(
                f"max_in_flight must be positive, got {max_in_flight}"
            )
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self.in_flight = 0
        self._waiters: Deque[asyncio.Future] = deque()
        #: Cumulative decisions, mirrored into ServiceTelemetry by the
        #: service; kept here too so the controller is testable alone.
        self.total_admitted = 0
        self.total_rejected = 0
        self.total_aborted = 0

    @property
    def queue_depth(self) -> int:
        return sum(1 for w in self._waiters if not w.done())

    async def admit(self) -> AdmissionSlot:
        """Obtain a slot: immediately, after queueing, or never (raise).

        FIFO: a request only bypasses the queue when the queue is empty,
        so a burst cannot starve earlier waiters.
        """
        if self.in_flight < self.max_in_flight and not self._waiters:
            self.in_flight += 1
            self.total_admitted += 1
            return AdmissionSlot(self)
        if self.queue_depth >= self.max_queue_depth:
            self.total_rejected += 1
            raise AdmissionError(
                f"service overloaded: {self.in_flight}/{self.max_in_flight} "
                f"in flight and {self.queue_depth}/{self.max_queue_depth} "
                "queued"
            )
        loop = asyncio.get_running_loop()
        waiter: asyncio.Future = loop.create_future()
        self._waiters.append(waiter)
        try:
            await waiter
        except asyncio.CancelledError:
            # The waiting task was cancelled.  If the grant already
            # happened (release raced with cancellation), pass it on so
            # the slot is not lost.
            if waiter.done() and not waiter.cancelled():
                self._release_one()
            raise
        self.total_admitted += 1
        return AdmissionSlot(self)

    def abort_waiters(self, reason: str) -> int:
        """Fail every parked waiter with :class:`AdmissionError`.

        Fast-abort shutdown calls this so queued requests answer
        immediately instead of acquiring slots later and executing after
        the service stopped accepting work.  Waiters whose grant already
        happened (done futures) are untouched — their tasks hold a slot
        and release it normally.  Returns the number aborted.
        """
        aborted = 0
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_exception(AdmissionError(reason))
                aborted += 1
        self.total_aborted += aborted
        return aborted

    def _release_one(self) -> None:
        """Hand the freed slot to the next live waiter, or free it."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)  # in_flight transfers to the waiter
                return
        self.in_flight -= 1

    def snapshot(self) -> dict[str, int]:
        return {
            "in_flight": self.in_flight,
            "max_in_flight": self.max_in_flight,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "total_admitted": self.total_admitted,
            "total_rejected": self.total_rejected,
            "total_aborted": self.total_aborted,
        }
