"""Shared substrate: errors, cancellation, identifier types, hashing and RNG."""

from repro.common.cancellation import CancellationToken
from repro.common.errors import (
    AdmissionError,
    BufferPoolError,
    CatalogError,
    EstimationError,
    ExecutionError,
    ExpressionError,
    FeedbackError,
    IndexError_,
    MonitorError,
    OptimizerError,
    PageError,
    QueryCancelled,
    ReproError,
    SchemaError,
    ServiceError,
    StorageError,
    WorkloadError,
)
from repro.common.hashing import hash_to_bucket, hash_value, mix64
from repro.common.rng import derive_seed, make_numpy_rng, make_random
from repro.common.types import INVALID_PAGE_ID, RID, FileId, PageId

__all__ = [
    "AdmissionError",
    "BufferPoolError",
    "CancellationToken",
    "CatalogError",
    "EstimationError",
    "ExecutionError",
    "ExpressionError",
    "FeedbackError",
    "FileId",
    "INVALID_PAGE_ID",
    "IndexError_",
    "MonitorError",
    "OptimizerError",
    "PageError",
    "PageId",
    "QueryCancelled",
    "RID",
    "ReproError",
    "SchemaError",
    "ServiceError",
    "StorageError",
    "WorkloadError",
    "derive_seed",
    "hash_to_bucket",
    "hash_value",
    "make_numpy_rng",
    "make_random",
    "mix64",
]
