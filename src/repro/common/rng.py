"""Deterministic random-number helpers.

Every stochastic component (Bernoulli page sampling, workload generation,
permutation families) takes an explicit seed so that experiments are exactly
reproducible.  This module centralises seed derivation: a single experiment
seed fans out into independent streams for each named component.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING

from repro.common.hashing import mix64

if TYPE_CHECKING:  # NumPy is optional at runtime (see repro.exec.vector).
    import numpy as np


def _stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of ``text``.

    The builtin ``hash(str)`` is randomized per process (PYTHONHASHSEED),
    which would make "seeded" workloads differ across runs — exactly the
    nondeterminism the simulated engine is supposed to rule out.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    Stable across runs *and processes*: ``derive_seed(7, "synthetic",
    "C3")`` always yields the same value.  Uses the mix64 avalanche so
    sibling streams are statistically independent.
    """
    seed = mix64(root_seed)
    for name in names:
        seed = mix64(seed ^ _stable_hash(str(name)))
    return seed & 0x7FFFFFFF


def make_random(root_seed: int, *names: object) -> random.Random:
    """Return a :class:`random.Random` seeded from the derived seed path."""
    return random.Random(derive_seed(root_seed, *names))


def make_numpy_rng(root_seed: int, *names: object) -> "np.random.Generator":
    """Return a numpy Generator seeded from the derived seed path.

    Imports NumPy lazily so the pure-Python install (no NumPy) can still
    import :mod:`repro.common`; only callers that actually need NumPy
    sampling (synthetic data generation) pay the import.
    """
    import numpy as np

    return np.random.default_rng(derive_seed(root_seed, *names))
