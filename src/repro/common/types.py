"""Fundamental identifier types shared across the engine.

The storage engine addresses rows with a :class:`RID` (page id, slot number).
Page ids are plain integers, but we wrap the pair in a small immutable type so
operator code and the page-count monitors can pass row addresses around
without tuple-index arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NewType

#: Identifier of a disk page within one stored file.  Page ids are dense and
#: start at 0; they are *per file*, not global, mirroring how a real engine
#: numbers pages within a database file.
PageId = NewType("PageId", int)

#: Identifier of a stored file (heap file, clustered file or index file)
#: within the simulated database.  Allocated by the catalog.
FileId = NewType("FileId", int)

INVALID_PAGE_ID = PageId(-1)


@dataclass(frozen=True, slots=True)
class RID:
    """Physical row identifier: ``(page_id, slot)`` within one file.

    RIDs are what secondary indexes on *heap* tables store, and what the
    Fetch operator receives.  For clustered tables the index stores the
    clustering key instead, but the Fetch still resolves to a page — the
    page id is the quantity the paper's monitors count.
    """

    page_id: PageId
    slot: int

    def __post_init__(self) -> None:
        if self.page_id < 0:
            raise ValueError(f"RID page_id must be >= 0, got {self.page_id}")
        if self.slot < 0:
            raise ValueError(f"RID slot must be >= 0, got {self.slot}")

    def __repr__(self) -> str:  # compact, log-friendly
        return f"RID({int(self.page_id)}:{self.slot})"
