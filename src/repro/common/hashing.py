"""Deterministic 64-bit hashing used by the page-count monitors.

Python's builtin :func:`hash` is randomized per process (``PYTHONHASHSEED``)
and is the identity on small ints, which would make the linear-counting
bitmap of Fig. 3 and the bit-vector filter of Fig. 5 behave pathologically
(page ids are small dense integers).  We therefore use a fixed avalanche mix
(the 64-bit finalizer from MurmurHash3 / SplitMix64) so that:

* results are reproducible across processes and platforms,
* consecutive page ids scatter uniformly over the bitmap,
* independent hash functions can be derived by salting the seed.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def mix64(value: int, seed: int = 0) -> int:
    """Return a well-scrambled 64-bit hash of ``value``.

    Uses the SplitMix64 finalizer, which passes avalanche tests: flipping any
    input bit flips each output bit with probability ~1/2.  ``seed`` selects
    one member of a family of independent hash functions.
    """
    # (seed + 1) so that seed 0 still mixes value 0 away from the fixed
    # point of the finalizer (mix of exactly 0 would return 0).
    z = (value + (seed + 1) * 0x9E3779B97F4A7C15) & _MASK64
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def hash_to_bucket(value: int, num_buckets: int, seed: int = 0) -> int:
    """Map ``value`` uniformly onto ``[0, num_buckets)``.

    Raises :class:`ValueError` if ``num_buckets`` is not positive.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    return mix64(value, seed) % num_buckets


def hash_value(value: object, seed: int = 0) -> int:
    """Hash an arbitrary (hashable) join-key value to 64 bits.

    Integers are mixed directly; other values go through the builtin hash
    first and are then scrambled, so strings and dates work as join keys.
    The builtin hash of ``str`` is randomized per process, which is fine for
    bit-vector filtering (only collision *rates* matter, and those are
    seed-independent); integer keys — the common case in the paper's
    workloads — remain fully deterministic.
    """
    if isinstance(value, bool):
        # bool is an int subclass; keep True/False distinct from 1/0 anyway
        # for clarity (hash parity with int is acceptable but be explicit).
        return mix64(int(value), seed)
    if isinstance(value, int):
        return mix64(value, seed)
    return mix64(hash(value), seed)
