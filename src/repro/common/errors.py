"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch one base type.  Subsystems raise the most specific subclass that
describes the failure; messages always name the offending object (table,
index, column, page) so diagnostics do not require a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed (unknown table, index, ...)."""


class SchemaError(CatalogError):
    """A schema definition or column reference is invalid."""


class StorageError(ReproError):
    """The storage engine detected an inconsistency (bad RID, full page...)."""


class PageError(StorageError):
    """A page-level operation failed (bad slot, overflow, unknown PID)."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (no evictable frame...)."""


class IndexError_(StorageError):
    """A B-tree index operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has different semantics.
    """


class ShardError(ReproError):
    """A sharded-deployment operation failed (partitioning, scatter-gather,
    or per-shard feedback merge)."""


class ExecutionError(ReproError):
    """A runtime operator failed while executing a plan."""


class QueryCancelled(ExecutionError):
    """An execution stopped at a cooperative cancellation checkpoint.

    Raised from the executor's page/batch-boundary checkpoints when the
    run's :class:`~repro.common.cancellation.CancellationToken` has been
    cancelled (deadline expiry, client disconnect, service shutdown).
    ``reason`` carries the cause recorded at :meth:`cancel` time."""

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class ReoptRequested(QueryCancelled):
    """A regret watchdog stopped the execution to re-optimize mid-query.

    Subclasses :class:`QueryCancelled` so every existing handler that
    settles admission slots and skips the exact-feedback harvest on
    cancellation treats a re-optimization stop identically; only the
    reopt episode runner (``repro.reopt``) catches this type specifically
    to harvest *partial* actuals and switch plans.  Raised exclusively by
    :meth:`~repro.common.cancellation.CancellationToken.checkpoint` after
    a ``cancel_for_reopt`` — codelint rule R015 keeps it that way."""

    def __init__(self, reason: str = "reopt") -> None:
        super().__init__(reason)


class EngineError(ReproError):
    """The multi-session engine violated (or detected a violation of) a
    workload-level contract, e.g. a concurrent run that did not produce
    exactly one result per workload item."""


class ExpressionError(ReproError):
    """A predicate or scalar expression is malformed or mistyped."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for the query."""


class EstimationError(OptimizerError):
    """A cardinality or page-count estimate could not be computed."""


class MonitorError(ReproError):
    """A page-count monitor was misconfigured or observed invalid input."""


class FeedbackError(ReproError):
    """The feedback store rejected a record or lookup."""


class WorkloadError(ReproError):
    """A workload/data generator received invalid parameters."""


class ServiceError(ReproError):
    """The query service layer rejected or failed a request."""


class AdmissionError(ServiceError):
    """The admission controller refused a request (in-flight semaphore
    saturated and the bounded wait queue full, or the service no longer
    accepting).  Clients see this as ``SERVICE_OVERLOADED``."""


class WorkerError(ServiceError):
    """The multi-process worker tier violated its protocol (bad spec,
    unexpected reply shape, pool misuse)."""


class WorkerCrashed(WorkerError):
    """A worker process died while a query was in flight on it.

    The coordinator answers the affected request with the typed
    ``WORKER_CRASHED`` error code, releases its admission slot and
    respawns the worker; other in-flight requests are untouched."""


class WorkerQueryError(WorkerError):
    """A query failed *inside* a worker process for an ordinary reason
    (bad request, execution error).  The worker classifies the failure
    into the service's wire error-code vocabulary and the coordinator
    relays ``code``/``message`` verbatim, so worker-side failures answer
    bit-identically to in-process ones."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


class AnalysisError(ReproError):
    """The static-analysis subsystem received invalid input."""


class PlanLintError(AnalysisError):
    """A plan-linter rule fired in strict mode (see repro.analysis)."""
