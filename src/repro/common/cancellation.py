"""Cooperative cancellation for in-flight query executions.

The service layer admits queries with per-request deadlines; when a
deadline fires the execution must *stop* — not merely have its result
discarded — so it stops charging its :class:`~repro.storage.accounting.IOContext`
and releases its admission slot promptly.  Python threads cannot be
interrupted from outside, so cancellation is cooperative: the executor
checks a :class:`CancellationToken` at page/batch boundaries
(:mod:`repro.exec.executor`) and raises
:class:`~repro.common.errors.QueryCancelled` once the token is cancelled.

Tokens are cancelled from *other* threads (an asyncio event-loop timer in
the service, a test driver) while the execution runs on a worker thread,
so the cancelled flag is a :class:`threading.Event`.  A token belongs to
exactly one execution; create a fresh one per run.

For deterministic tests, ``cancel_after_checks=N`` self-cancels the token
on its N-th checkpoint — "the deadline expired mid-scan" becomes an exact,
repeatable program point instead of a wall-clock race.
"""

from __future__ import annotations

import threading
from typing import Optional, Type

from repro.common.errors import QueryCancelled, ReoptRequested


class CancellationToken:
    """One execution's cancellation flag, checked at executor checkpoints.

    ``cancel()`` is thread-safe and idempotent (the first reason wins);
    ``checkpoint()`` is called only by the owning execution's thread.
    """

    __slots__ = (
        "_event",
        "_reason",
        "_exc_class",
        "checks",
        "cancel_after_checks",
    )

    def __init__(self, cancel_after_checks: Optional[int] = None) -> None:
        if cancel_after_checks is not None and cancel_after_checks <= 0:
            raise ValueError(
                f"cancel_after_checks must be positive, got {cancel_after_checks}"
            )
        self._event = threading.Event()
        self._reason = "cancelled"
        #: Exception type the next checkpoint raises once cancelled.
        self._exc_class: Type[QueryCancelled] = QueryCancelled
        #: Checkpoints passed so far (owning thread only; no lock needed).
        self.checks = 0
        self.cancel_after_checks = cancel_after_checks

    # -- cancellation side (any thread) --------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Mark the token cancelled; the next checkpoint raises."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    def cancel_for_reopt(self, reason: str = "reopt") -> None:
        """Typed cancellation for mid-query re-optimization.

        The next checkpoint raises :class:`ReoptRequested` instead of the
        base :class:`QueryCancelled`, telling the reopt episode runner —
        and nobody else — that the partial actuals are worth harvesting.
        Idempotent like :meth:`cancel`: a plain cancellation that already
        landed (deadline, shutdown) keeps its base type and reason.
        Callable only from ``repro.reopt`` (codelint rule R015).
        """
        if not self._event.is_set():
            self._exc_class = ReoptRequested
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason

    # -- execution side (owning thread) --------------------------------
    def checkpoint(self) -> None:
        """Raise :class:`QueryCancelled` if the token has been cancelled.

        Called by the executor at page/batch boundaries; cheap enough for
        the checked drive loop (an Event.is_set read) but never on the
        token-less fast path.
        """
        self.checks += 1
        if (
            self.cancel_after_checks is not None
            and self.checks >= self.cancel_after_checks
        ):
            self.cancel(
                f"cancel_after_checks={self.cancel_after_checks} reached"
            )
        if self._event.is_set():
            raise self._exc_class(self._reason)

    def __repr__(self) -> str:
        state = f"cancelled: {self._reason}" if self.cancelled else "live"
        return f"CancellationToken({state}, checks={self.checks})"
