"""Scatter-gather execution over N shard-local engines.

:class:`ShardCoordinator` is an :class:`~repro.engine.Engine`-shaped
front end for a sharded deployment.  It keeps the *global* database for
planning and splits its rows across N independent shard engines
(:func:`repro.shard.partition.partition_database`); one query then runs
as:

1. **canonicalize + optimize once** — the coordinator's planning session
   plans against the global catalog (global statistics, merged feedback
   injections) through the shared
   :class:`~repro.lifecycle.PlanCache`, so a repeated query costs one
   cached plan resolution no matter how many shards execute it;
2. **scatter** — the same plan node fans out to every shard engine,
   which rebinds it *by table/index name* (shard catalogs clone the
   global schema) and executes it concurrently under its own isolated
   accounting context via :meth:`~repro.engine.Engine.execute_plan` —
   no per-shard re-optimization, ever;
3. **gather** — every fanned-out execution *settles* (joins, or is
   cancelled via the shared token when a sibling fails) on all normal
   and exceptional paths before the coordinator proceeds (dataflow rule
   F002 audits exactly this);
4. **merge** — per-shard row streams recombine through the exec-layer
   gather operators (:mod:`repro.exec.merge`), per-shard observations
   merge by summing disjoint page counts
   (:func:`repro.core.feedback.merge_page_count_observations`), and —
   when the item asks to remember — per-shard run statistics land in the
   :class:`~repro.shard.feedback.ShardedFeedbackStore` as one atomic,
   single-epoch-bump harvest.

Shard workers are deliberately blinkered: a worker receives *its own*
handle (engine, plan, token, result slot) and nothing else.  Cross-shard
state — result rows, observations, feedback — flows only through the
coordinator's merge interfaces (codelint rule R013 enforces this
structurally for every worker in this package).

Merged ``RunStats`` model the parallel deployment: integer I/O counters
**sum** across shards (total work), while the simulated times take the
**maximum** over shards (makespan — shards run concurrently), which is
what the ≥3×-at-4-shards scan-throughput gate in
``benchmarks/smoke_shard.py`` measures.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Database
from repro.catalog.schema import PartitionSpec
from repro.common.cancellation import CancellationToken
from repro.common.errors import EngineError, QueryCancelled, ShardError
from repro.core.feedback import merge_page_count_observations
from repro.core.planner import MonitorConfig
from repro.core.requests import PageCountRequest
from repro.engine.engine import Engine, WorkloadItem
from repro.exec.executor import QueryResult, execute
from repro.exec.merge import ShardStream, gather_for_plan
from repro.exec.runstats import RunStats
from repro.lifecycle.plancache import PlanCache
from repro.lifecycle.runner import ExecutedQuery
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Query
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.optimizer.plans import PlanNode
from repro.session import Session
from repro.shard.feedback import ShardedFeedbackStore
from repro.shard.partition import partition_database


@dataclass
class ShardedExecutedQuery(ExecutedQuery):
    """A merged execution result plus the per-shard executions behind it."""

    shard_results: list[ExecutedQuery] = field(default_factory=list)


@dataclass
class _ShardHandle:
    """Everything one shard worker may touch: its own slice of the fan-out."""

    shard_index: int
    engine: Engine
    query: Query
    plan: PlanNode
    requests: tuple[PageCountRequest, ...]
    exec_mode: str
    token: CancellationToken
    thread: Optional[threading.Thread] = None
    result: Optional[ExecutedQuery] = None
    error: Optional[BaseException] = None


def _shard_worker(handle: _ShardHandle) -> None:
    """Execute the fanned-out plan on this worker's own shard engine.

    On failure the worker cancels the fan-out's shared token so sibling
    shards stop at their next page/batch boundary instead of completing
    doomed work; the coordinator re-raises the root cause after every
    shard has settled.
    """
    try:
        handle.result = handle.engine.execute_plan(
            handle.query,
            handle.plan,
            requests=handle.requests,
            exec_mode=handle.exec_mode,
            cancellation=handle.token,
        )
    except BaseException as exc:  # re-raised by the coordinator's gather
        handle.error = exc
        handle.token.cancel(f"shard {handle.shard_index} failed: {exc}")


class ShardCoordinator:
    """Engine-compatible scatter-gather front end over shard engines."""

    def __init__(
        self,
        database: Database,
        num_shards: int = 4,
        strategy: str = "range",
        partition_column: Optional[str] = None,
        partition_seed: int = 0,
        monitor_config: Optional[MonitorConfig] = None,
        page_count_model: Optional[AnalyticalPageCountModel] = None,
        plan_cache: Optional[PlanCache] = None,
        use_plan_cache: bool = True,
    ) -> None:
        spec = PartitionSpec(
            num_shards=num_shards, strategy=strategy, column=partition_column
        )
        self.database = database
        self.spec = spec
        self.shard_databases = partition_database(
            database, spec, seed=partition_seed
        )
        self.monitor_config = (
            monitor_config if monitor_config is not None else MonitorConfig()
        )
        self.page_count_model = page_count_model
        #: One cache at the coordinator: the planning session resolves a
        #: repeated query once and every shard executes the cached plan —
        #: the "shard-local plan reuse" is this shared resolution.
        self.plan_cache: Optional[PlanCache] = (
            plan_cache
            if plan_cache is not None
            else (PlanCache() if use_plan_cache else None)
        )
        #: Shard engines never optimize (plans arrive pre-built), so they
        #: carry no plan cache of their own.
        self.engines = [
            Engine(
                shard_db,
                monitor_config=self.monitor_config,
                page_count_model=self.page_count_model,
                use_plan_cache=False,
            )
            for shard_db in self.shard_databases
        ]
        self.feedback = ShardedFeedbackStore(
            [engine.feedback for engine in self.engines]
        )
        self._feedback_lock = threading.Lock()
        self._state = threading.Condition()
        self._closed = False
        self._active = 0

    # ------------------------------------------------------------------
    # Engine-facade lifecycle
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.engines)

    @property
    def closed(self) -> bool:
        with self._state:
            return self._closed

    @property
    def active_executions(self) -> int:
        with self._state:
            return self._active

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop admitting work, drain in-flight fan-outs, cascade to shards."""
        with self._state:
            self._closed = True
            drained = (
                self._state.wait_for(lambda: self._active == 0, timeout=timeout)
                if drain
                else self._active == 0
            )
        for engine in self.engines:
            drained = engine.shutdown(drain=drain, timeout=timeout) and drained
        return drained

    def _begin_execution(self) -> None:
        with self._state:
            if self._closed:
                raise EngineError(
                    "coordinator is shut down; execute() rejected "
                    f"({self._active} fan-out(s) still draining)"
                )
            self._active += 1

    def _end_execution(self) -> None:
        with self._state:
            self._active -= 1
            self._state.notify_all()

    # ------------------------------------------------------------------
    # Planning (once, at the coordinator, against the global catalog)
    # ------------------------------------------------------------------
    def session(self, injections: Optional[InjectionSet] = None) -> Session:
        """A planning session over the global database + merged feedback."""
        with self._state:
            if self._closed:
                raise EngineError("coordinator is shut down; session() rejected")
        return Session(
            database=self.database,
            feedback=self.feedback,  # type: ignore[arg-type]
            injections=(
                injections.copy() if injections is not None else InjectionSet()
            ),
            monitor_config=self.monitor_config,
            page_count_model=self.page_count_model,
            feedback_lock=self._feedback_lock,
            plan_cache=self.plan_cache,
        )

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------
    def _scatter(
        self,
        query: Query,
        plan: PlanNode,
        item: WorkloadItem,
        token: CancellationToken,
    ) -> list[_ShardHandle]:
        """Fan the plan out: one worker thread per shard, all started."""
        handles = [
            _ShardHandle(
                shard_index=index,
                engine=engine,
                query=query,
                plan=plan,
                requests=tuple(item.requests),
                exec_mode=item.exec_mode,
                token=token,
            )
            for index, engine in enumerate(self.engines)
        ]
        for handle in handles:
            thread = threading.Thread(
                target=_shard_worker,
                args=(handle,),
                name=f"shard-worker-{handle.shard_index}",
            )
            handle.thread = thread
            thread.start()
        return handles

    def _gather(self, handles: Sequence[_ShardHandle]) -> list[ExecutedQuery]:
        """Settle every fanned-out execution, then surface the root cause.

        Every shard thread is joined unconditionally (a failing shard has
        already cancelled the shared token, so siblings stop at their
        next checkpoint rather than running to completion).  If any shard
        failed, the first *non-cancellation* error is re-raised — the
        cancellations it triggered are collateral, not the cause.
        """
        try:
            for handle in handles:
                if handle.thread is not None:
                    handle.thread.join()
        finally:
            # Joining never raises in practice; the finally guards the
            # invariant that no code path leaves a live worker behind.
            still_alive = [
                h.shard_index
                for h in handles
                if h.thread is not None and h.thread.is_alive()
            ]
            if still_alive:
                raise ShardError(
                    f"shard worker(s) {still_alive} failed to settle"
                )
        errors = [h.error for h in handles if h.error is not None]
        if errors:
            for error in errors:
                if not isinstance(error, QueryCancelled):
                    raise error
            raise errors[0]
        results: list[ExecutedQuery] = []
        for handle in handles:
            if handle.result is None:
                raise ShardError(
                    f"shard {handle.shard_index} returned no result and no "
                    "error; refusing to merge a partial fan-out"
                )
            results.append(handle.result)
        return results

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _merge(
        self,
        plan: PlanNode,
        item: WorkloadItem,
        shard_runs: Sequence[ExecutedQuery],
    ) -> QueryResult:
        streams = [
            ShardStream(
                shard_index=index,
                rows=run.result.rows,
                columns=run.result.columns,
                shard_root_stats=run.result.runstats.root,
            )
            for index, run in enumerate(shard_runs)
        ]
        gather = gather_for_plan(plan, streams, self.database)
        merged = execute(
            gather,
            self.database,
            io=self.database.new_io_context(isolated=True),
            mode=item.exec_mode,
        )
        shard_stats = [run.result.runstats for run in shard_runs]
        merged_observations = merge_page_count_observations(
            [stats.observations for stats in shard_stats]
        )
        runstats = RunStats(
            root=merged.runstats.root,
            # Makespan of the parallel fan-out: shards execute
            # concurrently, so the deployment's simulated time is the
            # slowest shard's (plus the free merge pass).
            elapsed_ms=max(s.elapsed_ms for s in shard_stats)
            + merged.runstats.elapsed_ms,
            io_ms=max(s.io_ms for s in shard_stats),
            cpu_ms=max(s.cpu_ms for s in shard_stats),
            random_reads=sum(s.random_reads for s in shard_stats),
            sequential_reads=sum(s.sequential_reads for s in shard_stats),
            logical_reads=sum(s.logical_reads for s in shard_stats),
            pool_hits=sum(s.pool_hits for s in shard_stats),
            execution_mode=item.exec_mode,
            observations=merged_observations,
        )
        return QueryResult(
            rows=merged.rows, runstats=runstats, columns=merged.columns
        )

    # ------------------------------------------------------------------
    # The Engine-compatible execution entry points
    # ------------------------------------------------------------------
    def execute(
        self,
        item: WorkloadItem,
        session: Optional[Session] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> ShardedExecutedQuery:
        """Plan once, scatter, gather, merge — one sharded execution."""
        session = session if session is not None else self.session()
        self._begin_execution()
        try:
            plan = session.optimize(
                item.query, use_feedback=item.use_feedback, hint=item.hint
            )
            trace = session.last_trace
            executed = self.run_plan(
                item.query,
                plan,
                requests=item.requests,
                exec_mode=item.exec_mode,
                cancellation=cancellation,
            )
            if item.remember:
                self.feedback.record_shard_runs(
                    [run.result.runstats for run in executed.shard_results]
                )
            executed.trace = trace
            return executed
        finally:
            self._end_execution()

    def run_plan(
        self,
        query: Query,
        plan: PlanNode,
        requests: Sequence[PageCountRequest] = (),
        exec_mode: str = "row",
        cancellation: Optional[CancellationToken] = None,
    ) -> ShardedExecutedQuery:
        """Scatter an already-optimized plan, gather, and merge.

        The lower half of :meth:`execute`; the methodology harness uses
        it directly because §V-B's steps hand the coordinator explicit
        plans (P, then P').  Feedback is *not* harvested here.
        """
        token = (
            cancellation if cancellation is not None else CancellationToken()
        )
        item = WorkloadItem(
            query=query,
            requests=tuple(requests),
            exec_mode=exec_mode,
        )
        handles = self._scatter(query, plan, item, token)
        shard_runs = self._gather(handles)
        result = self._merge(plan, item, shard_runs)
        return ShardedExecutedQuery(
            query=query,
            plan=plan,
            result=result,
            shard_results=list(shard_runs),
        )

    def run_serial(self, items: Sequence[WorkloadItem]) -> list[ExecutedQuery]:
        """Execute a workload one item at a time through one session."""
        session = self.session()
        return [self.execute(item, session=session) for item in items]

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Coordinator health: shard shape, merged feedback, plan cache."""
        lines = [
            f"shards: {self.num_shards} ({self.spec.strategy} partitioning)",
            f"feedback: {len(self.feedback)} merged record(s), "
            f"epoch={self.feedback.epoch}",
        ]
        if self.plan_cache is None:
            lines.append("plan-cache: disabled")
        else:
            lines.append(self.plan_cache.stats.render())
        return "\n".join(lines)
