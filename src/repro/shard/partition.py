"""Partitioning a database across N shard-local databases.

The coordinator (:mod:`repro.shard.coordinator`) runs one independent
:class:`~repro.engine.Engine` per shard; this module builds the shard
databases it runs them over.  Two strategies, both recorded as
:class:`~repro.catalog.schema.PartitionSpec` /
:class:`~repro.catalog.schema.TablePartition` catalog metadata:

* **range** (default) — each shard receives a *contiguous run of whole
  global pages* in storage order.  Because every shard file is rebuilt
  with the source table's exact ``fill_factor`` (hence the identical
  ``page_capacity``), shard-local page ``p`` of shard ``s`` holds
  precisely the rows of global page ``page_offset(s) + p``.  That 1:1
  page correspondence is what makes per-shard distinct page counts *sum*
  to the single-engine count bit-for-bit — no global page is split
  across shards, so no page can be counted twice (see
  ``docs/paper_mapping.md``).  For a clustered table the runs are
  clustering-key ranges, so shard-concatenation order equals global key
  order.

* **hash** — rows scatter by a seeded deterministic hash
  (:func:`repro.common.hashing.mix64`) of the partitioning column.
  Totals (cardinalities, summed DPC over *shard* pages) remain correct,
  but shard pages no longer correspond to global pages, so per-shard
  page counts are not bit-comparable to an unsharded run.  Offered for
  balance experiments; the serial≡sharded equivalence harness uses
  range.
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from repro.catalog.catalog import Database
from repro.catalog.schema import IndexDef, PartitionSpec, TablePartition
from repro.common.errors import ShardError
from repro.common.hashing import mix64
from repro.storage.table import Table


def hash_to_shard(value: Any, num_shards: int, seed: int = 0) -> int:
    """Deterministically map a partitioning-column value to a shard."""
    if num_shards <= 0:
        raise ShardError(f"num_shards must be positive, got {num_shards}")
    if isinstance(value, bool) or not isinstance(value, int):
        value = zlib.crc32(repr(value).encode("utf-8"))
    return mix64(value, seed=seed) % num_shards


def partition_column(table: Table, spec: PartitionSpec) -> str:
    """The column a table partitions on under ``spec``.

    An explicit ``spec.column`` wins when the table has it; otherwise the
    clustering key's leading column, falling back to the first schema
    column for heaps.
    """
    if spec.column is not None and table.schema.has_column(spec.column):
        return spec.column
    if table.clustered_index is not None:
        return table.clustered_index.key_columns[0]
    return table.schema.column_names[0]


def _storage_order_rows(table: Table) -> list[tuple]:
    """All rows in physical (page, slot) order, without I/O accounting."""
    rows: list[tuple] = []
    for page_id in table.all_page_ids():
        rows.extend(table.rows_on_page(page_id))
    return rows


def _range_slices(table: Table, num_shards: int) -> list[tuple[int, int]]:
    """Per-shard ``(first_page, end_page)`` runs of whole global pages.

    Pages distribute as evenly as whole pages allow: the first
    ``num_pages % num_shards`` shards take one extra page.  Shards beyond
    the page count come out empty (their run is zero-length).
    """
    num_pages = table.num_pages
    base, extra = divmod(num_pages, num_shards)
    slices: list[tuple[int, int]] = []
    start = 0
    for shard in range(num_shards):
        length = base + (1 if shard < extra else 0)
        slices.append((start, start + length))
        start += length
    return slices


def _secondary_defs(table: Table) -> list[IndexDef]:
    return [index.definition for index in table.indexes.values()]


def partition_database(
    database: Database, spec: PartitionSpec, seed: int = 0
) -> list[Database]:
    """Split ``database`` into ``spec.num_shards`` shard-local databases.

    Every shard database reproduces the source schema exactly — same
    table and index names, same clustering, same ``fill_factor`` — so a
    plan optimized against the global catalog rebinds on any shard by
    name alone.  Per-shard statistics are rebuilt from the shard's own
    rows (the "per-shard statistics" the catalog layer owns); the global
    database is left untouched and keeps serving the coordinator's
    planning.
    """
    if database.partition_spec is not None:
        raise ShardError(
            f"database {database.name} is already a shard "
            f"(shard_index={database.shard_index})"
        )
    if not database.tables:
        raise ShardError(f"database {database.name} has no tables to partition")
    shards: list[Database] = []
    for shard_index in range(spec.num_shards):
        shard_db = Database(
            name=f"{database.name}/shard{shard_index}",
            buffer_pool_pages=database.buffer_pool.capacity_pages,
            disk_params=database.disk_params,
        )
        shard_db.partition_spec = spec
        shard_db.shard_index = shard_index
        shards.append(shard_db)

    for table in database.tables.values():
        rows = _storage_order_rows(table)
        clustered_on = (
            table.clustered_index.key_columns
            if table.clustered_index is not None
            else None
        )
        fill_factor = table.data_file.fill_factor
        secondary = _secondary_defs(table)
        if spec.strategy == "range":
            slices = _range_slices(table, spec.num_shards)
            capacity = table.data_file.page_capacity
            shard_rows: list[list[tuple]] = [
                rows[first * capacity : end * capacity] for first, end in slices
            ]
            partitions = [
                TablePartition(
                    spec=spec,
                    shard_index=shard,
                    page_offset=slices[shard][0],
                    row_offset=slices[shard][0] * capacity,
                )
                for shard in range(spec.num_shards)
            ]
        else:
            column = partition_column(table, spec)
            position = table.schema.position(column)
            shard_rows = [[] for _ in range(spec.num_shards)]
            for row in rows:
                shard_rows[
                    hash_to_shard(row[position], spec.num_shards, seed)
                ].append(row)
            partitions = [
                TablePartition(spec=spec, shard_index=shard)
                for shard in range(spec.num_shards)
            ]
        for shard_db, slice_rows, partition in zip(
            shards, shard_rows, partitions
        ):
            shard_table = shard_db.load_table(
                table.schema,
                slice_rows,
                clustered_on=clustered_on,
                indexes=secondary,
                build_stats=bool(slice_rows),
                fill_factor=fill_factor,
            )
            shard_table.partition = partition
    return shards


def check_page_alignment(
    database: Database, shards: Sequence[Database]
) -> list[str]:
    """Audit the range layout: shard pages must tile the global pages.

    Returns human-readable violations (empty when the invariant holds).
    Used by tests and the sharded smoke gate — if this ever reports, the
    bit-identical feedback-merge claim is void.
    """
    problems: list[str] = []
    for table in database.tables.values():
        total_pages = 0
        total_rows = 0
        for shard_db in shards:
            shard_table = shard_db.table(table.name)
            if shard_table.data_file.page_capacity != table.data_file.page_capacity:
                problems.append(
                    f"{table.name}: shard {shard_db.shard_index} page capacity "
                    f"{shard_table.data_file.page_capacity} != global "
                    f"{table.data_file.page_capacity}"
                )
            partition = shard_table.partition
            if partition is not None and partition.page_offset is not None:
                if partition.page_offset != total_pages:
                    problems.append(
                        f"{table.name}: shard {shard_db.shard_index} starts at "
                        f"global page {partition.page_offset}, expected {total_pages}"
                    )
            total_pages += shard_table.num_pages
            total_rows += shard_table.num_rows
        if total_pages != table.num_pages:
            problems.append(
                f"{table.name}: shards hold {total_pages} pages, "
                f"global table has {table.num_pages}"
            )
        if total_rows != table.num_rows:
            problems.append(
                f"{table.name}: shards hold {total_rows} rows, "
                f"global table has {table.num_rows}"
            )
    return problems
