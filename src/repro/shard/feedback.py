"""The shard-aware feedback view: N per-shard stores, one optimizer truth.

Each shard's :class:`~repro.engine.Engine` harvests execution feedback
into its own :class:`~repro.core.feedback.FeedbackStore` — those stores
only ever see observations taken on that shard's pages.
:class:`ShardedFeedbackStore` wraps all of them behind the exact
epoch/injection protocol the planner, plan cache and service already
speak, so the coordinator's planning session consumes *merged global*
actuals without any caller knowing the deployment is sharded:

* the **global epoch** lives here, not on the per-shard stores: one
  scatter-gather harvest (:meth:`record_shard_runs`) ingests every
  shard's run statistics and advances the epoch exactly once, atomically
  — concurrent harvests serialize under one lock, and a harvest in which
  no shard stored anything is a complete no-op (no epoch movement, no
  cache invalidation), mirroring the single-store contract;
* :meth:`to_injections` lowers **summed** page counts: shards hold
  disjoint page sets, so the global distinct page count for a key is the
  sum of the shards' counts (see ``docs/paper_mapping.md`` on why this
  never double-charges a page); cardinalities merge the same way;
* a key only *some* shards reported yields the partial sum but is never
  marked exact — partial coverage cannot vouch for pages it never saw.

Per-shard writes that bypass the batch path
(:meth:`record_shard_cardinality`, :meth:`record_shard_observations`)
also route through the coordinator store so the epoch stays the single
source of freshness truth.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.common.errors import ShardError
from repro.core.feedback import FeedbackStore, table_of_key
from repro.core.requests import PageCountObservation
from repro.exec.runstats import RunStats
from repro.optimizer.injection import InjectionSet


@dataclass(frozen=True)
class MergedFeedbackRecord:
    """One key's merged view across every shard that reported it."""

    key: str
    page_count: Optional[float]
    page_count_exact: bool
    cardinality: Optional[float]
    shards_reporting: int
    mechanism: str = ""


class ShardedFeedbackStore:
    """Merged read view + atomic write path over N per-shard stores."""

    def __init__(self, shard_stores: Sequence[FeedbackStore]) -> None:
        if not shard_stores:
            raise ShardError("a sharded feedback store needs >= 1 shard store")
        self._stores = tuple(shard_stores)
        self._lock = threading.RLock()
        self._epoch = 0
        self._table_epochs: dict[str, int] = {}
        self._lowered: Optional[InjectionSet] = None
        self._lowered_epoch = -1
        self.lowering_builds = 0
        self.lowering_reuses = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._stores)

    def shard_store(self, shard_index: int) -> FeedbackStore:
        return self._stores[shard_index]

    def keys(self) -> list[str]:
        with self._lock:
            merged: set[str] = set()
            for store in self._stores:
                merged.update(store.keys())
            return sorted(merged)

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return any(key in store for store in self._stores)

    # ------------------------------------------------------------------
    # Epochs (the coordinator-global freshness truth)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    def table_epoch(self, table: str) -> int:
        with self._lock:
            return self._table_epochs.get(table, 0)

    def table_epochs(self, tables: Iterable[str]) -> tuple[tuple[str, int], ...]:
        with self._lock:
            return tuple(
                (table, self._table_epochs.get(table, 0))
                for table in sorted(set(tables))
            )

    def _bump(self, tables: Iterable[str]) -> None:
        """Advance the global epoch and re-tag ``tables`` (lock held)."""
        self._epoch += 1
        for table in tables:
            if table is not None:
                self._table_epochs[table] = self._epoch

    # ------------------------------------------------------------------
    # Ingest (one atomic batch per scatter-gather execution)
    # ------------------------------------------------------------------
    def record_shard_runs(
        self, runstats_by_shard: Sequence[Optional[RunStats]]
    ) -> int:
        """Harvest one fanned-out execution's per-shard run statistics.

        ``runstats_by_shard[i]`` belongs to shard ``i`` (``None`` for a
        shard that produced nothing).  The whole batch is one atomic
        write: per-shard stores ingest under the coordinator lock, and
        the **global** epoch advances exactly once iff at least one shard
        stored an answerable observation.  Returns the total number of
        observations stored.
        """
        if len(runstats_by_shard) != self.num_shards:
            raise ShardError(
                f"expected runstats for {self.num_shards} shard(s), "
                f"got {len(runstats_by_shard)}"
            )
        with self._lock:
            stored_total = 0
            tables: set[str] = set()
            for store, runstats in zip(self._stores, runstats_by_shard):
                if runstats is None:
                    continue
                stored = store.record_run(runstats)
                stored_total += stored
                if stored:
                    tables.update(
                        table
                        for table in (
                            table_of_key(obs.key)
                            for obs in runstats.observations
                            if obs.answered and obs.estimate is not None
                        )
                        if table is not None
                    )
            if stored_total:
                self._bump(tables)
            return stored_total

    def record_shard_observations(
        self,
        shard_index: int,
        observations: Iterable[PageCountObservation],
    ) -> int:
        """Ingest observations for one shard (out-of-band harvest path)."""
        store = self._stores[shard_index]
        batch = list(observations)
        with self._lock:
            stored = store.record_observations(batch)
            if stored:
                self._bump(
                    table
                    for table in (
                        table_of_key(obs.key)
                        for obs in batch
                        if obs.answered and obs.estimate is not None
                    )
                    if table is not None
                )
            return stored

    def record_shard_cardinality(
        self, shard_index: int, key: str, rows: float
    ) -> None:
        """Record one shard's observed actual cardinality for ``key``.

        Shards hold disjoint row sets, so the merged view sums these into
        the global actual.
        """
        with self._lock:
            self._stores[shard_index].record_cardinality(key, rows)
            table = table_of_key(key)
            self._bump([table] if table is not None else [])

    # ------------------------------------------------------------------
    # Merged read view
    # ------------------------------------------------------------------
    def merged_records(self) -> dict[str, MergedFeedbackRecord]:
        """Per-key merge across shards: summed counts, guarded exactness."""
        with self._lock:
            merged: dict[str, MergedFeedbackRecord] = {}
            for key in self.keys():
                per_shard = [
                    record
                    for record in (store.record(key) for store in self._stores)
                    if record is not None
                ]
                pages = [
                    r.page_count for r in per_shard if r.page_count is not None
                ]
                cards = [
                    r.cardinality for r in per_shard if r.cardinality is not None
                ]
                merged[key] = MergedFeedbackRecord(
                    key=key,
                    page_count=sum(pages) if pages else None,
                    page_count_exact=(
                        len(pages) == self.num_shards
                        and all(
                            r.page_count_exact
                            for r in per_shard
                            if r.page_count is not None
                        )
                    ),
                    cardinality=sum(cards) if cards else None,
                    shards_reporting=len(per_shard),
                    mechanism=per_shard[0].mechanism if per_shard else "",
                )
            return merged

    def record(self, key: str) -> Optional[MergedFeedbackRecord]:
        return self.merged_records().get(key)

    # ------------------------------------------------------------------
    # Export (the protocol the planner and plan cache consume)
    # ------------------------------------------------------------------
    def _lowered_set(self) -> InjectionSet:
        with self._lock:
            if self._lowered is None or self._lowered_epoch != self._epoch:
                lowered = InjectionSet()
                for key, record in self.merged_records().items():
                    if record.page_count is not None:
                        lowered.inject_page_count_by_key(key, record.page_count)
                self._lowered = lowered
                self._lowered_epoch = self._epoch
                self.lowering_builds += 1
            else:
                self.lowering_reuses += 1
            return self._lowered

    def to_injections(self, base: Optional[InjectionSet] = None) -> InjectionSet:
        """Lower merged (summed) page counts into optimizer injections."""
        lowered = self._lowered_set()
        if base is None:
            return lowered.copy()
        base.merge_from(lowered)
        return base

    def snapshot_injections(
        self,
        base: Optional[InjectionSet] = None,
        tables: Iterable[str] = (),
    ) -> tuple[InjectionSet, tuple[tuple[str, int], ...]]:
        """Atomically lower the merged view *and* read the freshness vector."""
        with self._lock:
            return self.to_injections(base), self.table_epochs(tables)

    # ------------------------------------------------------------------
    # Guard rails
    # ------------------------------------------------------------------
    def record_run(self, runstats: RunStats) -> int:
        """Reject shard-blind harvests.

        An un-attributed run statistic cannot be merged without knowing
        *which* shard's pages it counted — silently picking one would
        corrupt the summed view.  The coordinator harvests through
        :meth:`record_shard_runs` instead.
        """
        raise ShardError(
            "sharded feedback needs per-shard attribution; "
            "use record_shard_runs (or record_shard_observations)"
        )
