"""Horizontal sharding: partition-aware storage + scatter-gather execution.

* :mod:`repro.shard.partition` — split a database into N shard-local
  databases (page-aligned range runs, or hash scatter) with the
  partitioning recorded as catalog metadata;
* :mod:`repro.shard.coordinator` — the Engine-compatible
  :class:`ShardCoordinator`: plan once, fan out, gather, merge;
* :mod:`repro.shard.feedback` — the :class:`ShardedFeedbackStore`
  merging per-shard DPC/cardinality actuals into one optimizer view
  under a single atomically-advancing epoch.
"""

from repro.shard.coordinator import ShardCoordinator, ShardedExecutedQuery
from repro.shard.feedback import MergedFeedbackRecord, ShardedFeedbackStore
from repro.shard.partition import (
    check_page_alignment,
    hash_to_shard,
    partition_database,
)

__all__ = [
    "MergedFeedbackRecord",
    "ShardCoordinator",
    "ShardedExecutedQuery",
    "ShardedFeedbackStore",
    "check_page_alignment",
    "hash_to_shard",
    "partition_database",
]
