"""LEO-style feedback store for page counts (§II-C).

The paper proposes augmenting a feedback infrastructure like LEO [17] to
capture ``(expression, cardinality, distinct page count)`` triples from
executed plans so that *future* queries with the same (or contained)
expressions benefit.  :class:`FeedbackStore` implements that store:

* :meth:`record_run` harvests a finished query's run statistics —
  answered page-count observations and, when available, actual
  cardinalities — into keyed records;
* :meth:`to_injections` lowers the store into an
  :class:`~repro.optimizer.injection.InjectionSet` the optimizer consumes;
* repeated observations of the same expression are reconciled by recency
  (newest wins), with exact observations preferred over estimates taken in
  the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.common.errors import FeedbackError
from repro.core.requests import PageCountObservation
from repro.exec.runstats import RunStats
from repro.optimizer.injection import InjectionSet


@dataclass
class FeedbackRecord:
    """One remembered fact about an expression."""

    key: str
    page_count: Optional[float] = None
    page_count_exact: bool = False
    cardinality: Optional[float] = None
    mechanism: str = ""
    sequence: int = 0

    def merge_observation(
        self, observation: PageCountObservation, sequence: int
    ) -> None:
        """Fold a new observation in; newer beats older, exact beats
        estimated within the same run."""
        if observation.estimate is None:
            return
        newer = sequence > self.sequence
        same_run_upgrade = (
            sequence == self.sequence
            and observation.exact
            and not self.page_count_exact
        )
        if self.page_count is None or newer or same_run_upgrade:
            self.page_count = observation.estimate
            self.page_count_exact = observation.exact
            self.mechanism = observation.mechanism.value
            self.sequence = sequence


class FeedbackStore:
    """Accumulates execution feedback across query runs."""

    def __init__(self) -> None:
        self._records: dict[str, FeedbackRecord] = {}
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def record(self, key: str) -> Optional[FeedbackRecord]:
        return self._records.get(key)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record_observations(
        self, observations: Iterable[PageCountObservation]
    ) -> int:
        """Store answered observations; returns how many were stored."""
        self._sequence += 1
        stored = 0
        for observation in observations:
            if not observation.answered or observation.estimate is None:
                continue
            record = self._records.setdefault(
                observation.key, FeedbackRecord(key=observation.key)
            )
            record.merge_observation(observation, self._sequence)
            stored += 1
        return stored

    def record_run(self, runstats: RunStats) -> int:
        """Harvest one executed query's feedback."""
        return self.record_observations(runstats.observations)

    def record_cardinality(self, key: str, rows: float) -> None:
        """Store an observed actual cardinality for an expression key."""
        if rows < 0:
            raise FeedbackError(f"cardinality must be >= 0, got {rows}")
        self._sequence += 1
        record = self._records.setdefault(key, FeedbackRecord(key=key))
        record.cardinality = rows
        record.sequence = self._sequence

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_injections(self, base: Optional[InjectionSet] = None) -> InjectionSet:
        """Lower the store into optimizer injections.

        Page-count records become page-count injections under their
        original keys (the key format is shared with the optimizer's
        lookup, so round-tripping is lossless).
        """
        injections = base if base is not None else InjectionSet()
        for record in self._records.values():
            if record.page_count is not None:
                injections.inject_page_count_by_key(record.key, record.page_count)
        return injections

    def keys(self) -> list[str]:
        return sorted(self._records)

    # ------------------------------------------------------------------
    # Persistence (the DBA-tool use case: feedback outlives the session)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the store to a JSON string."""
        import json

        payload = {
            "version": 1,
            "sequence": self._sequence,
            "records": [
                {
                    "key": record.key,
                    "page_count": record.page_count,
                    "page_count_exact": record.page_count_exact,
                    "cardinality": record.cardinality,
                    "mechanism": record.mechanism,
                    "sequence": record.sequence,
                }
                for record in self._records.values()
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FeedbackStore":
        """Reconstruct a store serialised by :meth:`to_json`."""
        import json

        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FeedbackError(f"invalid feedback JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise FeedbackError(
                f"unsupported feedback payload version: {payload.get('version')!r}"
            )
        store = cls()
        store._sequence = int(payload.get("sequence", 0))
        for entry in payload.get("records", []):
            record = FeedbackRecord(
                key=entry["key"],
                page_count=entry.get("page_count"),
                page_count_exact=bool(entry.get("page_count_exact", False)),
                cardinality=entry.get("cardinality"),
                mechanism=entry.get("mechanism", ""),
                sequence=int(entry.get("sequence", 0)),
            )
            store._records[record.key] = record
        return store

    def save(self, path) -> None:
        """Write the store to ``path`` (a str or Path)."""
        from pathlib import Path

        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "FeedbackStore":
        """Read a store previously written by :meth:`save`."""
        from pathlib import Path

        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:
        return f"FeedbackStore({len(self._records)} expressions)"
