"""LEO-style feedback store for page counts (§II-C), epoch-versioned.

The paper proposes augmenting a feedback infrastructure like LEO [17] to
capture ``(expression, cardinality, distinct page count)`` triples from
executed plans so that *future* queries with the same (or contained)
expressions benefit.  :class:`FeedbackStore` implements that store:

* :meth:`record_run` harvests a finished query's run statistics —
  answered page-count observations and, when available, actual
  cardinalities — into keyed records;
* :meth:`to_injections` lowers the store into an
  :class:`~repro.optimizer.injection.InjectionSet` the optimizer consumes;
* repeated observations of the same expression are reconciled by recency
  (newest wins), with exact observations preferred over estimates taken in
  the same run.

The store is **epoch-versioned**: every successful write bumps a global
:attr:`epoch` and tags the tables the written expressions refer to with
that epoch (:meth:`table_epoch`).  Consumers that cache anything derived
from the store — most importantly the
:class:`~repro.lifecycle.PlanCache` — key their entries on the epochs of
the tables a plan touches, so a remembered page count can never silently
serve a plan built from superseded feedback.  The lowering itself is
memoized per epoch: repeated :meth:`to_injections` calls between writes
reuse one frozen injection set instead of rebuilding it record by record.

The store is internally thread-safe (all record/epoch/memo state is
guarded by one reentrant lock); the
:class:`~repro.engine.Engine` additionally serializes *writes* across
sessions so harvest order is deterministic under its own lock.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.common.errors import FeedbackError
from repro.core.requests import Mechanism, PageCountObservation, PageCountRequest
from repro.exec.runstats import RunStats
from repro.optimizer.injection import InjectionSet

#: Feedback keys are ``MECH(table, expression)`` — ``DPC(t, a < 9)``,
#: ``CARD(t, a < 9)`` — so the owning table is the first argument.
_KEY_TABLE_RE = re.compile(r"^[A-Za-z_]+\(\s*([^,()]+?)\s*[,)]")


def table_of_key(key: str) -> Optional[str]:
    """The table a feedback key refers to, or ``None`` if unparseable.

    Both key families the engine produces — ``DPC(table, expression)``
    and ``CARD(table, expression)`` — name the table first.
    """
    match = _KEY_TABLE_RE.match(key)
    return match.group(1) if match else None


def _request_table(request: PageCountRequest) -> str:
    """The table whose pages a request counts (access path or join inner)."""
    table = getattr(request, "table", None)
    if table is not None:
        return str(table)
    return str(request.inner_table)  # type: ignore[union-attr]


def merge_page_count_observations(
    per_shard: Sequence[Sequence[PageCountObservation]],
) -> list[PageCountObservation]:
    """Combine per-shard observations of one execution into global ones.

    Each shard monitors only its own disjoint slice of every table, so
    the global distinct page count for a key is the **sum** of the
    shards' counts — no page can be charged twice because no page exists
    on two shards.  Merging rules, per key:

    * ``estimate`` sums the answering shards' estimates;
    * ``exact`` holds only when *every* shard answered exactly — a key
      some shard could not answer yields a partial sum, and partial
      coverage never claims exactness;
    * ``mechanism``/``request`` come from the first answering shard (the
      plan is identical on every shard, so mechanisms agree);
    * a key no shard answered stays a single unanswerable observation.

    Key order follows first appearance across shards in shard order, so
    merged fingerprints are deterministic.
    """
    num_shards = len(per_shard)
    grouped: dict[str, list[PageCountObservation]] = {}
    for shard_observations in per_shard:
        for observation in shard_observations:
            grouped.setdefault(observation.key, []).append(observation)
    merged: list[PageCountObservation] = []
    for key, group in grouped.items():
        answered = [
            obs for obs in group if obs.answered and obs.estimate is not None
        ]
        if not answered:
            merged.append(
                PageCountObservation.unanswerable(
                    group[0].request, group[0].reason
                )
            )
            continue
        first = answered[0]
        merged.append(
            PageCountObservation(
                request=first.request,
                mechanism=first.mechanism,
                estimate=sum(obs.estimate for obs in answered),  # type: ignore[misc]
                exact=(
                    len(answered) == num_shards
                    and all(obs.exact for obs in answered)
                ),
                answered=True,
                details={
                    "shards": num_shards,
                    "shards_answered": len(answered),
                    "per_shard_estimates": tuple(
                        obs.estimate for obs in answered
                    ),
                },
            )
        )
    return merged


def partial_page_count_observation(
    request: PageCountRequest,
    mechanism: Mechanism,
    satisfied_pages: float,
    pages_seen: int,
    total_pages: int,
) -> PageCountObservation:
    """An observation harvested from a *cancelled* (reopt-stopped) run.

    A stopped scan's counters cover only the pages it reached, so the
    value is a **lower bound** on the true DPC: ``exact`` is always
    False whatever the mechanism would have claimed at completion, and
    the details mark the observation partial with its page coverage so
    diagnostics can tell it from a finished sampled estimate.  Only the
    reopt subsystem may construct these (codelint rule R015): everything
    else harvests finished runs through :meth:`FeedbackStore.record_run`.
    """
    if satisfied_pages < 0:
        raise FeedbackError(
            f"partial page count must be >= 0, got {satisfied_pages}"
        )
    return PageCountObservation(
        request=request,
        mechanism=mechanism,
        estimate=float(satisfied_pages),
        exact=False,
        details={
            "partial": True,
            "pages_seen": pages_seen,
            "total_pages": total_pages,
        },
    )


@dataclass
class FeedbackRecord:
    """One remembered fact about an expression."""

    key: str
    page_count: Optional[float] = None
    page_count_exact: bool = False
    cardinality: Optional[float] = None
    mechanism: str = ""
    sequence: int = 0
    #: True while the page count is a lower bound harvested from a
    #: reopt-cancelled run; cleared when a complete observation lands.
    partial: bool = False

    def merge_observation(
        self, observation: PageCountObservation, sequence: int
    ) -> None:
        """Fold a new observation in; newer beats older, exact beats
        estimated within the same run, and a complete observation always
        replaces a partial lower bound (replace, never add — the partial
        pages are a subset of the complete count, so summing would
        double-count them)."""
        if observation.estimate is None:
            return
        newer = sequence > self.sequence
        same_run_upgrade = (
            sequence == self.sequence
            and observation.exact
            and not self.page_count_exact
        )
        if self.page_count is None or self.partial or newer or same_run_upgrade:
            self.page_count = observation.estimate
            self.page_count_exact = observation.exact
            self.mechanism = observation.mechanism.value
            self.sequence = sequence
            self.partial = False

    def merge_partial_observation(
        self, observation: PageCountObservation
    ) -> None:
        """Fold in a lower bound from a reopt-cancelled run.

        A partial count never displaces a complete record (the finished
        run saw strictly more), never claims exactness, and two partials
        reconcile by keeping the larger lower bound — recency would let a
        shorter partial scan *lower* an established bound.
        """
        if observation.estimate is None:
            return
        if self.page_count is not None and not self.partial:
            return
        if self.page_count is None or observation.estimate > self.page_count:
            self.page_count = observation.estimate
            self.page_count_exact = False
            self.mechanism = observation.mechanism.value
            self.partial = True


class FeedbackStore:
    """Accumulates execution feedback across query runs."""

    def __init__(self) -> None:
        self._records: dict[str, FeedbackRecord] = {}
        self._sequence = 0
        #: Global version: bumped once per successful write batch.
        self._epoch = 0
        #: table -> epoch of the last write touching that table.
        self._table_epochs: dict[str, int] = {}
        #: Partial (reopt-harvest) write batches.  Deliberately separate
        #: from the epoch: a cancelled run's lower bounds must not make
        #: cached plans look stale, but the lowering memo still has to
        #: see that the records changed.
        self._partial_sequence = 0
        self._lock = threading.RLock()
        #: Memoized lowering (rebuilt lazily when the epoch moves).
        self._lowered: Optional[InjectionSet] = None
        self._lowered_epoch = -1
        self._lowered_partial = -1
        #: Observability counters for the memoization (tests/reports).
        self.lowering_builds = 0
        self.lowering_reuses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def record(self, key: str) -> Optional[FeedbackRecord]:
        with self._lock:
            return self._records.get(key)

    # ------------------------------------------------------------------
    # Epochs (freshness tags consumed by the plan cache)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Global store version; changes iff the store's contents change."""
        with self._lock:
            return self._epoch

    def table_epoch(self, table: str) -> int:
        """Epoch of the last write that touched ``table`` (0 = never)."""
        with self._lock:
            return self._table_epochs.get(table, 0)

    def table_epochs(self, tables: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """Sorted ``(table, epoch)`` freshness vector for a table set."""
        with self._lock:
            return tuple(
                (table, self._table_epochs.get(table, 0))
                for table in sorted(set(tables))
            )

    def _bump(self, tables: Iterable[str]) -> None:
        """Advance the global epoch and re-tag ``tables`` (lock held)."""
        self._epoch += 1
        for table in tables:
            if table is not None:
                self._table_epochs[table] = self._epoch

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def record_observations(
        self, observations: Iterable[PageCountObservation]
    ) -> int:
        """Store answered observations; returns how many were stored.

        A call that carries zero answerable observations is a no-op: it
        bumps neither the sequence counter nor the epoch, so derived
        caches stay valid.
        """
        storable = [
            observation
            for observation in observations
            if observation.answered and observation.estimate is not None
        ]
        if not storable:
            return 0
        with self._lock:
            self._sequence += 1
            for observation in storable:
                record = self._records.setdefault(
                    observation.key, FeedbackRecord(key=observation.key)
                )
                record.merge_observation(observation, self._sequence)
            self._bump(_request_table(obs.request) for obs in storable)
        return len(storable)

    def record_partial_observations(
        self, observations: Iterable[PageCountObservation]
    ) -> int:
        """Store lower bounds harvested from a reopt-cancelled run.

        Unlike :meth:`record_observations` this **never bumps the epoch**
        or the per-table freshness tags: the run did not complete, so
        treating its harvest as a store version change would invalidate
        cached plans (and re-trigger re-optimizations) on the strength of
        counts that are only lower bounds.  Partial records still reach
        :meth:`to_injections` — the lowering memo is additionally keyed
        on the partial write counter — and are replaced outright by the
        first complete observation of the same key.  Only the reopt
        episode runner calls this (codelint rule R015).
        """
        storable = [
            observation
            for observation in observations
            if observation.answered and observation.estimate is not None
        ]
        if not storable:
            return 0
        with self._lock:
            self._partial_sequence += 1
            for observation in storable:
                record = self._records.setdefault(
                    observation.key, FeedbackRecord(key=observation.key)
                )
                record.merge_partial_observation(observation)
        return len(storable)

    @property
    def partial_writes(self) -> int:
        """How many partial (reopt-harvest) write batches have landed."""
        with self._lock:
            return self._partial_sequence

    def record_run(self, runstats: RunStats) -> int:
        """Harvest one executed query's feedback."""
        return self.record_observations(runstats.observations)

    def record_cardinality(self, key: str, rows: float) -> None:
        """Store an observed actual cardinality for an expression key."""
        if rows < 0:
            raise FeedbackError(f"cardinality must be >= 0, got {rows}")
        with self._lock:
            self._sequence += 1
            record = self._records.setdefault(key, FeedbackRecord(key=key))
            record.cardinality = rows
            record.sequence = self._sequence
            self._bump([table_of_key(key)] if table_of_key(key) else [])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _lowered_set(self) -> InjectionSet:
        """The memoized page-count lowering for the current epoch."""
        with self._lock:
            if (
                self._lowered is None
                or self._lowered_epoch != self._epoch
                or self._lowered_partial != self._partial_sequence
            ):
                lowered = InjectionSet()
                for record in self._records.values():
                    if record.page_count is not None:
                        lowered.inject_page_count_by_key(
                            record.key, record.page_count
                        )
                self._lowered = lowered
                self._lowered_epoch = self._epoch
                self._lowered_partial = self._partial_sequence
                self.lowering_builds += 1
            else:
                self.lowering_reuses += 1
            return self._lowered

    def to_injections(self, base: Optional[InjectionSet] = None) -> InjectionSet:
        """Lower the store into optimizer injections.

        Page-count records become page-count injections under their
        original keys (the key format is shared with the optimizer's
        lookup, so round-tripping is lossless).  With a ``base`` set, the
        store's entries are merged *into* ``base`` (mutating and
        returning it); on key conflicts the feedback record wins.

        The lowering is memoized per epoch: between writes, repeated
        calls reuse one frozen set instead of re-walking every record.
        """
        lowered = self._lowered_set()
        if base is None:
            return lowered.copy()
        base.merge_from(lowered)
        return base

    def snapshot_injections(
        self,
        base: Optional[InjectionSet] = None,
        tables: Iterable[str] = (),
    ) -> tuple[InjectionSet, tuple[tuple[str, int], ...]]:
        """Atomically lower the store *and* read the freshness vector.

        The plan cache needs the injections a plan was built from and the
        epochs it is keyed under to describe the same store state; taking
        them in two separate calls would race with concurrent writes.
        """
        with self._lock:
            return self.to_injections(base), self.table_epochs(tables)

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    # ------------------------------------------------------------------
    # Persistence (the DBA-tool use case: feedback outlives the session)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the store to a JSON string."""
        with self._lock:
            payload = {
                "version": 1,
                "sequence": self._sequence,
                "records": [
                    {
                        "key": record.key,
                        "page_count": record.page_count,
                        "page_count_exact": record.page_count_exact,
                        "cardinality": record.cardinality,
                        "mechanism": record.mechanism,
                        "sequence": record.sequence,
                        "partial": record.partial,
                    }
                    for record in self._records.values()
                ],
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FeedbackStore":
        """Reconstruct a store serialised by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FeedbackError(f"invalid feedback JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != 1:
            version = (
                payload.get("version") if isinstance(payload, dict) else None
            )
            raise FeedbackError(
                f"unsupported feedback payload version: {version!r}"
            )
        records = payload.get("records", [])
        if not isinstance(records, list):
            raise FeedbackError(
                f"feedback payload 'records' must be a list, "
                f"got {type(records).__name__}"
            )
        store = cls()
        store._sequence = int(payload.get("sequence", 0))
        for entry in records:
            if not isinstance(entry, dict) or "key" not in entry:
                raise FeedbackError(
                    f"malformed feedback record (missing 'key'): {entry!r}"
                )
            record = FeedbackRecord(
                key=entry["key"],
                page_count=entry.get("page_count"),
                page_count_exact=bool(entry.get("page_count_exact", False)),
                cardinality=entry.get("cardinality"),
                mechanism=entry.get("mechanism", ""),
                sequence=int(entry.get("sequence", 0)),
                partial=bool(entry.get("partial", False)),
            )
            store._records[record.key] = record
        # Epochs are process-local freshness tokens, not persisted state:
        # a loaded store starts at one epoch per historical write batch
        # (= the sequence), with each table tagged by its newest record.
        store._epoch = store._sequence
        for record in store._records.values():
            table = table_of_key(record.key)
            if table is not None:
                store._table_epochs[table] = max(
                    store._table_epochs.get(table, 0), record.sequence
                )
        return store

    def snapshot_json(self) -> tuple[int, str]:
        """Atomically read ``(epoch, to_json())`` under one lock hold.

        The worker tier ships feedback replicas to child processes keyed
        by the epoch they describe; reading the epoch and the payload in
        two separate calls would race with concurrent harvests and tag a
        newer payload with an older epoch (or vice versa).
        """
        with self._lock:
            return self._epoch, self.to_json()

    def save(self, path: Union[str, Path]) -> None:
        """Write the store to ``path`` (a str or Path)."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FeedbackStore":
        """Read a store previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"FeedbackStore({len(self._records)} expressions, "
                f"epoch {self._epoch})"
            )
