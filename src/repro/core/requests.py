"""Page-count requests and observations.

A *request* names an expression whose ``DPC`` the user (DBA, tuning tool or
the feedback infrastructure) wants measured during the next execution of a
query — the input interface of the paper's prototype ("we take as input a
set of expressions for which distinct page counts are needed", §V-A).

An *observation* is the output: the measured count, the mechanism that
produced it, whether it is exact, and bookkeeping the harness and the
diagnostics report consume.  Requests the current plan cannot answer (the
plan never sees the relevant pages — e.g. asking for ``DPC(T, State='CA')``
while running an Index Seek on ``Shipdate``, §II-B) come back with
``answered=False`` and a reason, never a silently wrong number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sql.predicates import Conjunction, JoinEquality


@dataclass(frozen=True)
class AccessPathRequest:
    """Request for ``DPC(table, expression)`` — access-method costing (§III)."""

    table: str
    expression: Conjunction

    def key(self) -> str:
        return f"DPC({self.table}, {self.expression.key()})"


@dataclass(frozen=True)
class JoinMethodRequest:
    """Request for ``DPC(inner_table, join_predicate)`` — INL costing (§IV).

    Selection predicates on the inner are deliberately absent: an INL join
    evaluates them after the fetch, so they do not reduce fetched pages.
    """

    inner_table: str
    join_predicate: JoinEquality

    def key(self) -> str:
        return f"DPC({self.inner_table}, {self.join_predicate.key()})"


PageCountRequest = AccessPathRequest | JoinMethodRequest


class Mechanism(enum.Enum):
    """Which monitoring mechanism produced an observation."""

    EXACT_SCAN_COUNT = "exact-scan-count"  # grouped page access, prefix expr
    DPSAMPLE = "dpsample"  # Bernoulli page sampling (Fig. 4)
    LINEAR_COUNTING = "linear-counting"  # fetch-stream bitmap (Fig. 3)
    BITVECTOR_DPSAMPLE = "bitvector+dpsample"  # hash/merge join (Fig. 5)
    NOT_AVAILABLE = "not-available"


@dataclass
class PageCountObservation:
    """One measured (or unanswerable) page count."""

    request: PageCountRequest
    mechanism: Mechanism
    estimate: Optional[float] = None
    exact: bool = False
    answered: bool = True
    reason: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.request.key()

    @classmethod
    def unanswerable(
        cls, request: PageCountRequest, reason: str
    ) -> "PageCountObservation":
        return cls(
            request=request,
            mechanism=Mechanism.NOT_AVAILABLE,
            estimate=None,
            exact=False,
            answered=False,
            reason=reason,
        )

    def __repr__(self) -> str:
        if not self.answered:
            return f"PageCountObservation({self.key}: unanswerable — {self.reason})"
        qualifier = "exact" if self.exact else "estimated"
        return (
            f"PageCountObservation({self.key} = {self.estimate:.1f} "
            f"[{qualifier}, {self.mechanism.value}])"
        )
