"""Bit-vector filters for join-method page counting (paper Fig. 5, §IV).

For a Hash Join ``R1 ⋈ R2`` the predicate is evaluated in the relational
engine where page ids are invisible, while the storage-engine scan of R2
sees page ids but has not joined yet.  The paper bridges the gap with a
bit-vector filter: during the hash join's *build* phase each build-side
join value sets a bit; during the *probe* scan of R2 each row's join value
probes the vector, acting as a **derived semi-join predicate** that the
scan-side DPSample counter can use.

False positives (hash collisions) can only *overestimate* the page count —
never underestimate — and with at least as many bits as the build side has
distinct join values the count is exact.  The paper reports that a vector
under 1% of the table size already gives high accuracy; our ablation bench
sweeps the width to reproduce that curve.

:class:`PartialBitVectorFilter` adds the Merge-Join variant: when neither
input is sorted by a blocking operator, the vector fills *incrementally*
as the outer side advances; probing is still sound because a merge join
only advances the inner when the outer has already produced all smaller
keys (§IV, Merge Join).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.errors import MonitorError
from repro.common.hashing import hash_value


class BitVectorFilter:
    """A fixed-width Bloom-style filter with a single hash function.

    One hash function (not ``k`` functions as in a general Bloom filter)
    matches the paper's construction and the classic bit-vector filtering
    of DeWitt & Gerber: simplicity inside the storage engine matters more
    than the last factor of collision rate.
    """

    __slots__ = ("num_bits", "seed", "_bits", "_bits_set", "inserts", "probes")

    def __init__(self, num_bits: int, seed: int = 0) -> None:
        if num_bits <= 0:
            raise MonitorError(f"bit vector size must be positive, got {num_bits}")
        self.num_bits = num_bits
        self.seed = seed
        self._bits = bytearray((num_bits + 7) // 8)
        self._bits_set = 0
        self.inserts = 0
        self.probes = 0

    def _position(self, value: Any) -> tuple[int, int]:
        # Integer join keys use identity-mod placement.  This is what makes
        # the paper's §IV guarantee true: with at least as many bits as the
        # (dense) key domain there are *no* collisions at all, and with
        # fewer bits the aliasing is structured (v and v+m collide), so the
        # overestimation stays bounded instead of exploding the way random
        # hashing would (any false-positive rate p is amplified to
        # ``1-(1-p)^rows_per_page`` at page granularity).  Non-integer keys
        # fall back to a scrambled hash.
        if isinstance(value, int) and not isinstance(value, bool):
            bucket = value % self.num_bits
        else:
            bucket = hash_value(value, self.seed) % self.num_bits
        return bucket >> 3, 1 << (bucket & 7)

    def insert(self, value: Any) -> None:
        """Set the bit for a build-side join value (build phase)."""
        byte_index, bit_mask = self._position(value)
        if not self._bits[byte_index] & bit_mask:
            self._bits[byte_index] |= bit_mask
            self._bits_set += 1
        self.inserts += 1

    def insert_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.insert(value)

    def may_contain(self, value: Any) -> bool:
        """Probe for a probe-side join value (probe phase).

        ``False`` is definite (the value cannot join); ``True`` may be a
        collision.
        """
        byte_index, bit_mask = self._position(value)
        self.probes += 1
        return bool(self._bits[byte_index] & bit_mask)

    @property
    def bits_set(self) -> int:
        return self._bits_set

    @property
    def fill_ratio(self) -> float:
        return self._bits_set / self.num_bits

    def __repr__(self) -> str:
        return (
            f"BitVectorFilter({self._bits_set}/{self.num_bits} bits, "
            f"{self.inserts} inserts, {self.probes} probes)"
        )


class PartialBitVectorFilter(BitVectorFilter):
    """A bit-vector filter that is still being filled while probed.

    Used for Merge Joins without a blocking Sort on the outer: the join
    inserts outer values as it consumes them and the inner-side scan probes
    the *partial* vector.  Soundness relies on the merge property that the
    inner never advances past the outer's current key; :attr:`high_key`
    records the largest inserted key so tests can assert the discipline.
    """

    __slots__ = ("high_key",)

    def __init__(self, num_bits: int, seed: int = 0) -> None:
        super().__init__(num_bits, seed)
        self.high_key: Any = None

    def insert(self, value: Any) -> None:
        super().insert(value)
        if self.high_key is None or value > self.high_key:
            self.high_key = value


def recommended_bitvector_bits(
    expected_distinct_build_values: int, headroom: float = 1.25
) -> int:
    """Width at which collisions (hence overestimation) become negligible.

    With one hash function, ``bits >= distinct values`` eliminates false
    positives only in expectation; a small headroom keeps the expected
    collision-induced overestimation to a few percent, matching the
    "relatively small number of bits" observation in §IV.
    """
    if expected_distinct_build_values < 0:
        raise MonitorError("expected_distinct_build_values must be non-negative")
    if headroom < 1.0:
        raise MonitorError(f"headroom must be >= 1.0, got {headroom}")
    return max(64, int(expected_distinct_build_values * headroom))
