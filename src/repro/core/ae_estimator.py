"""Sampling-based distinct-value estimation (the paper's stated alternative).

§III-A discusses the road not taken: draw a reservoir sample of the
fetched rows and apply a distinct-value estimator to the sampled PIDs.
The paper cites the AE ("Adaptive Estimator") of Charikar, Chaudhuri,
Motwani & Narasayya (PODS 2000) and defers an empirical comparison to
future work — which our ablation bench
(``benchmarks/bench_ablation_estimators.py``) carries out.

This module provides:

* :func:`reservoir_sample` — Vitter's Algorithm R (the paper's [19]);
* :class:`GEEEstimator` — the Guaranteed-Error Estimator
  ``D̂ = sqrt(N/r) * f1 + sum_{i>=2} f_i`` from the same paper, the
  simpler of the two with a proven error guarantee;
* :class:`AEEstimator` — the Adaptive Estimator, which corrects f1/f2
  based on the inferred low-frequency mix.

Here ``f_i`` is the number of distinct values occurring exactly ``i``
times in the sample, ``r`` the sample size and ``N`` the stream length.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.common.errors import MonitorError
from repro.common.rng import make_random


def reservoir_sample(stream: Iterable, size: int, seed: int = 0) -> list:
    """Uniform sample without replacement of ``size`` items (Algorithm R)."""
    if size <= 0:
        raise MonitorError(f"reservoir size must be positive, got {size}")
    rng = make_random(seed, "reservoir")
    reservoir: list = []
    for index, item in enumerate(stream):
        if index < size:
            reservoir.append(item)
        else:
            slot = rng.randint(0, index)
            if slot < size:
                reservoir[slot] = item
    return reservoir


def frequency_profile(sample: Sequence) -> Counter:
    """``f_i`` profile: f[i] = number of values occurring exactly i times."""
    value_counts = Counter(sample)
    profile: Counter = Counter()
    for count in value_counts.values():
        profile[count] += 1
    return profile


class GEEEstimator:
    """Guaranteed-Error Estimator: ``sqrt(N/r)*f1 + sum_{i>=2} f_i``.

    Matches the sqrt(N/r) ratio-error lower bound of Charikar et al.
    """

    name = "GEE"

    def estimate(self, sample: Sequence, stream_length: int) -> float:
        if not sample:
            return 0.0
        if stream_length < len(sample):
            raise MonitorError(
                f"stream length {stream_length} smaller than sample {len(sample)}"
            )
        profile = frequency_profile(sample)
        f1 = profile.get(1, 0)
        rest = sum(count for i, count in profile.items() if i >= 2)
        scale = math.sqrt(stream_length / len(sample))
        return scale * f1 + rest


class AEEstimator:
    """The Adaptive Estimator of Charikar et al. (PODS 2000).

    Splits the sample's values into "rare" (low sample frequency) and
    "frequent"; frequent values are counted directly, while the number of
    rare distinct values is scaled up by an adaptively estimated factor
    derived from f1 and f2 (a Poisson mixture argument): with
    ``m = f1 + 2*f2`` rare tuples, the estimated per-value multiplicity is
    ``Λ = max(1, m / (f1 + f2))`` giving
    ``D̂ = f1/Λ_scaled + higher-frequency distincts``, where the scaling
    solves ``Λ = m / (d_rare)`` self-consistently.  We implement the
    closed-form variant used in the literature:

        D̂ = f_{>cutoff distincts} + d_rare_estimate

    with ``d_rare_estimate = (sqrt(N/r)) adjusted by the f1/f2 ratio``:
    values seen twice damp the extrapolation that GEE applies uniformly.
    """

    name = "AE"

    def __init__(self, rare_cutoff: int = 2) -> None:
        if rare_cutoff < 1:
            raise MonitorError(f"rare_cutoff must be >= 1, got {rare_cutoff}")
        self.rare_cutoff = rare_cutoff

    def estimate(self, sample: Sequence, stream_length: int) -> float:
        if not sample:
            return 0.0
        if stream_length < len(sample):
            raise MonitorError(
                f"stream length {stream_length} smaller than sample {len(sample)}"
            )
        profile = frequency_profile(sample)
        f1 = profile.get(1, 0)
        f2 = profile.get(2, 0)
        frequent = sum(
            count for i, count in profile.items() if i > self.rare_cutoff
        )
        rare_distinct = sum(
            count for i, count in profile.items() if i <= self.rare_cutoff
        )
        if rare_distinct == 0:
            return float(frequent)
        # Adaptive scale: if many sampled values repeat (f2 large relative
        # to f1), the underlying rare values are dense and extrapolation
        # should shrink toward the sample count; if nearly all are
        # singletons, behave like GEE's sqrt(N/r) blow-up.
        gee_scale = math.sqrt(stream_length / len(sample))
        singleton_fraction = f1 / max(1, f1 + 2 * f2)
        scale = 1.0 + (gee_scale - 1.0) * singleton_fraction
        return frequent + rare_distinct * scale


def estimate_distinct_pages_from_sample(
    page_id_stream: Sequence[int],
    sample_size: int,
    estimator: "GEEEstimator | AEEstimator",
    seed: int = 0,
) -> float:
    """End-to-end §III-A alternative: reservoir-sample a fetch stream's
    page ids, then apply a sampling-based distinct estimator."""
    stream = list(page_id_stream)
    if not stream:
        return 0.0
    if sample_size >= len(stream):
        return float(len(set(stream)))
    sample = reservoir_sample(stream, sample_size, seed=seed)
    return estimator.estimate(sample, len(stream))
