"""Self-tuning distinct-page-count histogram (paper §II-C / §VI extension).

The paper notes that its feedback could maintain *histograms of page
counts* "similar to prior work on self-tuning histograms" [1][16], while
warning that DPC histograms are not additive across buckets (tuples from
two buckets can share a page).  This module implements that extension for
single-column range predicates:

* buckets partition the column domain;
* each bucket holds a *page-density* estimate: distinct pages per unit of
  selectivity, learned from feedback observations whose expression is a
  range on the column;
* :meth:`estimate` answers DPC for a new range by interpolating learned
  densities, explicitly treating the non-additivity: overlapping ranges
  refine (never simply sum) bucket values, and a whole-range estimate is
  capped by the table's page count and by the row-count upper bound.

This turns one-shot feedback into a *reusable* model: a query on
``Shipdate < d1`` improves the estimate for ``Shipdate < d2`` nearby —
the "learning" step of the LEO-style loop specialised to page counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import FeedbackError
from repro.catalog.histogram import _to_number
from repro.sql.predicates import Between, Comparison, Conjunction


def guarded_ratio(actual: float, estimate: float) -> float:
    """Symmetric q-error-style divergence, safe for zero/empty estimates.

    Both operands are floored at one row/page before dividing — an
    optimizer that estimated 0 rows (empty histogram bucket, injected
    zero) must yield a *finite* divergence, not a ZeroDivisionError — and
    the larger of the two directed ratios is returned, so over- and
    under-estimation read on the same >= 1.0 scale.  This is the q-error
    convention the self-tuning feedback loop scores estimates with; the
    reopt watchdog's trip test (``repro.reopt.watchdog``) imports it from
    here so mid-query divergence and post-run scoring can never disagree
    about the zero-estimate edge.
    """
    floored_actual = max(float(actual), 1.0)
    floored_estimate = max(float(estimate), 1.0)
    return max(
        floored_actual / floored_estimate, floored_estimate / floored_actual
    )


@dataclass
class _DensityBucket:
    low: float
    high: float
    #: learned pages-per-selectivity-unit (None until first feedback)
    density: Optional[float] = None
    observations: int = 0

    def width(self) -> float:
        return self.high - self.low

    def learn(self, density: float, learning_rate: float) -> None:
        if self.density is None:
            self.density = density
        else:
            self.density += learning_rate * (density - self.density)
        self.observations += 1


class SelfTuningDPCHistogram:
    """Learns DPC(column range) from execution feedback, per column."""

    def __init__(
        self,
        table: str,
        column: str,
        domain_low: Any,
        domain_high: Any,
        total_pages: int,
        num_buckets: int = 16,
        learning_rate: float = 0.5,
    ) -> None:
        low_n, high_n = _to_number(domain_low), _to_number(domain_high)
        if low_n is None or high_n is None or high_n <= low_n:
            raise FeedbackError(
                f"domain [{domain_low!r}, {domain_high!r}] is not a numeric/"
                "date interval"
            )
        if num_buckets <= 0:
            raise FeedbackError(f"num_buckets must be positive, got {num_buckets}")
        if not 0.0 < learning_rate <= 1.0:
            raise FeedbackError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self.table = table
        self.column = column
        self.total_pages = total_pages
        self.learning_rate = learning_rate
        width = (high_n - low_n) / num_buckets
        self._edges = [low_n + i * width for i in range(num_buckets + 1)]
        self._edges[-1] = high_n
        self.buckets = [
            _DensityBucket(self._edges[i], self._edges[i + 1])
            for i in range(num_buckets)
        ]

    # ------------------------------------------------------------------
    def _range_of(self, predicate: Conjunction) -> Optional[tuple[float, float]]:
        """Numeric [low, high) covered by a single-term range predicate on
        this column; None when the expression doesn't fit the model."""
        if len(predicate.terms) != 1:
            return None
        term = predicate.terms[0]
        if term.column != self.column:
            return None
        lo, hi = self._edges[0], self._edges[-1]
        if isinstance(term, Comparison):
            value = _to_number(term.value)
            if value is None:
                return None
            if term.op in ("<", "<="):
                return lo, min(hi, value)
            if term.op in (">", ">="):
                return max(lo, value), hi
            if term.op == "=":
                return max(lo, value), min(hi, value + 1e-9)
            return None
        if isinstance(term, Between):
            low_n, high_n = _to_number(term.low), _to_number(term.high)
            if low_n is None or high_n is None:
                return None
            return max(lo, low_n), min(hi, high_n)
        return None

    def _overlap(self, bucket: _DensityBucket, low: float, high: float) -> float:
        return max(0.0, min(bucket.high, high) - max(bucket.low, low))

    # ------------------------------------------------------------------
    def learn(self, predicate: Conjunction, observed_pages: float) -> bool:
        """Fold one feedback observation in; returns whether it applied.

        The observed DPC is attributed to buckets proportionally to their
        overlap with the predicate's range — an approximation that respects
        non-additivity by learning *densities* (pages per domain unit)
        rather than absolute per-bucket page counts.
        """
        covered = self._range_of(predicate)
        if covered is None:
            return False
        low, high = covered
        total_width = high - low
        if total_width <= 0:
            return False
        density = observed_pages / total_width
        for bucket in self.buckets:
            if self._overlap(bucket, low, high) > 0:
                bucket.learn(density, self.learning_rate)
        return True

    def estimate(self, predicate: Conjunction) -> Optional[float]:
        """Estimated DPC for a range predicate; None when unlearnable.

        Buckets without feedback fall back to the average learned density;
        if nothing was ever learned, returns None (caller falls back to
        the analytical model).  The result is capped at the table's page
        count — a whole-domain query cannot exceed it, which is exactly
        the non-additivity cap the paper warns about.
        """
        covered = self._range_of(predicate)
        if covered is None:
            return None
        learned = [b.density for b in self.buckets if b.density is not None]
        if not learned:
            return None
        fallback = sum(learned) / len(learned)
        low, high = covered
        total = 0.0
        for bucket in self.buckets:
            overlap = self._overlap(bucket, low, high)
            if overlap <= 0:
                continue
            density = bucket.density if bucket.density is not None else fallback
            total += density * overlap
        return min(total, float(self.total_pages))

    @property
    def coverage(self) -> float:
        """Fraction of buckets with at least one feedback observation."""
        return sum(1 for b in self.buckets if b.density is not None) / len(
            self.buckets
        )

    def __repr__(self) -> str:
        return (
            f"SelfTuningDPCHistogram({self.table}.{self.column}: "
            f"{len(self.buckets)} buckets, coverage {self.coverage:.0%})"
        )
