"""The paper's contribution: execution-feedback distinct page counting."""

from repro.core.ae_estimator import (
    AEEstimator,
    GEEEstimator,
    estimate_distinct_pages_from_sample,
    frequency_profile,
    reservoir_sample,
)
from repro.core.bitvector import (
    BitVectorFilter,
    PartialBitVectorFilter,
    recommended_bitvector_bits,
)
from repro.core.clustering import (
    ClusteringMeasurement,
    clustering_ratio,
    measure_clustering,
)
from repro.core.diagnostics import (
    DiagnosticLine,
    DiagnosticReport,
    diagnose,
    hint_for_plan,
    recommend_hint,
)
from repro.core.dpc import dpc_bounds, exact_dpc, exact_join_dpc, satisfies
from repro.core.dpsample import (
    BernoulliPageSampler,
    dpsample,
    dpsample_error_bound,
)
from repro.core.feedback import FeedbackRecord, FeedbackStore
from repro.core.monitors import FetchMonitorBundle, ScanMonitorBundle
from repro.core.planner import BuildResult, MonitorConfig, build_executable
from repro.core.probabilistic import LinearCounter, recommended_bitmap_bits
from repro.core.requests import (
    AccessPathRequest,
    JoinMethodRequest,
    Mechanism,
    PageCountObservation,
    PageCountRequest,
)
from repro.core.selftuning import SelfTuningDPCHistogram

__all__ = [
    "AEEstimator",
    "AccessPathRequest",
    "BernoulliPageSampler",
    "BitVectorFilter",
    "BuildResult",
    "ClusteringMeasurement",
    "DiagnosticLine",
    "DiagnosticReport",
    "FeedbackRecord",
    "FeedbackStore",
    "FetchMonitorBundle",
    "GEEEstimator",
    "JoinMethodRequest",
    "LinearCounter",
    "Mechanism",
    "MonitorConfig",
    "PageCountObservation",
    "PageCountRequest",
    "PartialBitVectorFilter",
    "ScanMonitorBundle",
    "SelfTuningDPCHistogram",
    "build_executable",
    "clustering_ratio",
    "diagnose",
    "dpc_bounds",
    "dpsample",
    "dpsample_error_bound",
    "estimate_distinct_pages_from_sample",
    "exact_dpc",
    "exact_join_dpc",
    "frequency_profile",
    "hint_for_plan",
    "measure_clustering",
    "recommend_hint",
    "recommended_bitmap_bits",
    "recommended_bitvector_bits",
    "reservoir_sample",
    "satisfies",
]
