"""Linear probabilistic counting for fetch-stream page ids (paper Fig. 3).

Index plans fetch rows in index-key order, so the same page id can recur
arbitrarily across the fetch stream (no grouped page access).  Exact
``COUNT(DISTINCT PID)`` would need a hash table per monitored expression;
the paper instead uses the linear-counting estimator of Whang,
Vander-Zanden and Taylor (TODS 1990):

1. keep a bitmap of ``m`` bits, all zero;
2. for each qualifying fetch, set bit ``h(PID) mod m``;
3. at end-of-stream estimate ``n̂ = -m * ln(V)`` where ``V`` is the
   fraction of bits still zero.

The estimator is the maximum-likelihood estimator given the bitmap and
needs well under one bit per distinct page for small relative error, which
is why the paper calls the approach low-overhead: the only per-row cost is
one hash.
"""

from __future__ import annotations

import math

from repro.common.errors import MonitorError
from repro.common.hashing import hash_to_bucket


class LinearCounter:
    """Linear-counting distinct estimator over a stream of integer ids.

    ``num_bits`` sizes the bitmap; ``seed`` selects the hash function.
    :meth:`observe` is the per-row step (Fig. 3, step 3); :meth:`estimate`
    is the end-of-stream step (Fig. 3, steps 5-6).
    """

    __slots__ = ("num_bits", "seed", "_bits", "_bits_set", "observations")

    def __init__(self, num_bits: int, seed: int = 0) -> None:
        if num_bits <= 0:
            raise MonitorError(f"bitmap size must be positive, got {num_bits}")
        self.num_bits = num_bits
        self.seed = seed
        self._bits = bytearray((num_bits + 7) // 8)
        self._bits_set = 0
        self.observations = 0

    def observe(self, value: int) -> None:
        """Hash ``value`` and set the corresponding bitmap bit."""
        bucket = hash_to_bucket(value, self.num_bits, self.seed)
        byte_index, bit_mask = bucket >> 3, 1 << (bucket & 7)
        if not self._bits[byte_index] & bit_mask:
            self._bits[byte_index] |= bit_mask
            self._bits_set += 1
        self.observations += 1

    @property
    def bits_set(self) -> int:
        return self._bits_set

    @property
    def num_zero_bits(self) -> int:
        return self.num_bits - self._bits_set

    @property
    def saturated(self) -> bool:
        """All bits set: the stream had (far) more distinct values than the
        bitmap can resolve; the estimate is a lower bound in that case."""
        return self._bits_set >= self.num_bits

    def estimate(self) -> float:
        """The linear-counting estimate ``-m * ln(numzero / m)``.

        A saturated bitmap has ``numzero = 0``; following standard practice
        we clamp to one zero bit, which yields the estimator's maximum
        resolvable value ``m * ln(m)`` rather than infinity.
        """
        if self.observations == 0:
            return 0.0
        num_zero = max(1, self.num_zero_bits)
        return -1.0 * self.num_bits * math.log(num_zero / self.num_bits)

    def merge(self, other: "LinearCounter") -> None:
        """OR another bitmap into this one (same size and seed required).

        Linear counting composes under union — useful when a plan fetches
        the same table from two subtrees.
        """
        if other.num_bits != self.num_bits or other.seed != self.seed:
            raise MonitorError(
                "cannot merge linear counters with different sizes or seeds: "
                f"{self.num_bits}/{self.seed} vs {other.num_bits}/{other.seed}"
            )
        bits_set = 0
        for index in range(len(self._bits)):
            merged = self._bits[index] | other._bits[index]
            self._bits[index] = merged
            bits_set += merged.bit_count()
        self._bits_set = bits_set
        self.observations += other.observations

    def __repr__(self) -> str:
        return (
            f"LinearCounter({self._bits_set}/{self.num_bits} bits set, "
            f"{self.observations} observations)"
        )


def recommended_bitmap_bits(expected_distinct: int, load_factor: float = 0.5) -> int:
    """Bitmap size for an expected distinct count.

    Whang et al. show small error when the bitmap keeps a healthy fraction
    of zero bits; sizing at ``expected / load_factor`` keeps the fill ratio
    near ``load_factor``.  The paper notes "typically much less than one
    bit per page" suffices because the monitored streams touch far fewer
    distinct pages than the table holds.
    """
    if expected_distinct < 0:
        raise MonitorError("expected_distinct must be non-negative")
    if not 0.0 < load_factor < 1.0:
        raise MonitorError(f"load_factor must be in (0, 1), got {load_factor}")
    return max(64, int(expected_distinct / load_factor))
