"""DBA diagnostics: estimate-vs-actual page counts and hint suggestions.

The paper's primary exploitation path (§II-C): surface, per monitored
expression, the optimizer's estimated DPC next to the actual DPC from
execution feedback, flag large discrepancies, and let the DBA (or a tuning
tool) re-cost alternatives with the corrected values and recommend a plan
hint.  :func:`diagnose` produces that report; :func:`recommend_hint`
re-optimizes with the feedback injected and, when the plan shape changes,
returns the :class:`~repro.optimizer.hints.PlanHint` that forces the
better plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.findings import Finding, render_findings
from repro.catalog.catalog import Database
from repro.core.requests import PageCountObservation
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Optimizer, Query
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    InListSeekPlan,
    CountPlan,
    CoveringScanPlan,
    HashJoinPlan,
    IndexIntersectionPlan,
    IndexSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    PlanNode,
    SeqScanPlan,
)


@dataclass(frozen=True)
class DiagnosticLine:
    """One expression's estimate-vs-actual comparison."""

    expression: str
    estimated_pages: Optional[float]
    actual_pages: Optional[float]
    mechanism: str
    answered: bool
    reason: str = ""

    @property
    def error_factor(self) -> Optional[float]:
        """max(est/act, act/est); None when either side is missing/zero."""
        if (
            not self.answered
            or self.estimated_pages is None
            or self.actual_pages is None
            or min(self.estimated_pages, self.actual_pages) <= 0
        ):
            return None
        ratio = self.estimated_pages / self.actual_pages
        return max(ratio, 1.0 / ratio)

    def flagged(self, threshold: float = 2.0) -> bool:
        """Whether the estimate is off by more than ``threshold``x."""
        factor = self.error_factor
        return factor is not None and factor >= threshold


@dataclass
class DiagnosticReport:
    """Estimate-vs-actual report for one executed query."""

    query: str
    plan_description: str
    lines: list[DiagnosticLine] = field(default_factory=list)
    #: Plan-linter findings for the executed plan (repro.analysis.planlint);
    #: a structurally suspect plan makes its DPC numbers suspect too, so
    #: the DBA report carries them alongside the estimate-vs-actual lines.
    lint_findings: list[Finding] = field(default_factory=list)

    def flagged(self, threshold: float = 2.0) -> list[DiagnosticLine]:
        return [line for line in self.lines if line.flagged(threshold)]

    def render(self, threshold: float = 2.0) -> str:
        rows = [f"query: {self.query}", f"plan:  {self.plan_description}", ""]
        if self.lint_findings:
            rows.append("plan lint:")
            rows.append(render_findings(self.lint_findings))
            rows.append("")
        header = f"{'expression':<58} {'est':>10} {'actual':>10} {'flag':>5}"
        rows.append(header)
        rows.append("-" * len(header))
        for line in self.lines:
            if not line.answered:
                rows.append(f"{line.expression:<58} {'—':>10} {'—':>10}   n/a")
                rows.append(f"    reason: {line.reason}")
                continue
            estimate = (
                f"{line.estimated_pages:.1f}"
                if line.estimated_pages is not None
                else "—"
            )
            actual = f"{line.actual_pages:.1f}"
            flag = "  <<<" if line.flagged(threshold) else ""
            rows.append(f"{line.expression:<58} {estimate:>10} {actual:>10}{flag}")
        return "\n".join(rows)


def _plan_dpc_estimates(plan: PlanNode) -> dict[str, float]:
    """Harvest (expression key -> estimated DPC) pairs from a plan tree."""
    estimates: dict[str, float] = {}
    from repro.core.requests import AccessPathRequest, JoinMethodRequest
    from repro.sql.predicates import Conjunction

    for _path, node in plan.walk():
        if isinstance(node, IndexSeekPlan):
            key = AccessPathRequest(
                node.table, Conjunction((node.seek_term,))
            ).key()
            estimates[key] = node.estimated_dpc
        elif isinstance(node, InListSeekPlan):
            key = AccessPathRequest(
                node.table, Conjunction((node.in_term,))
            ).key()
            estimates[key] = node.estimated_dpc
        elif isinstance(node, IndexIntersectionPlan):
            key = AccessPathRequest(
                node.table,
                Conjunction(tuple(leg.seek_term for leg in node.legs)),
            ).key()
            estimates[key] = node.estimated_dpc
        elif isinstance(node, INLJoinPlan):
            key = JoinMethodRequest(node.inner_table, node.join_predicate).key()
            estimates[key] = node.estimated_dpc
            estimates[
                JoinMethodRequest(
                    node.inner_table, node.join_predicate.reversed()
                ).key()
            ] = node.estimated_dpc
    return estimates


def diagnose(
    query_description: str,
    executed_plan: PlanNode,
    observations: list[PageCountObservation],
    optimizer: Optional[Optimizer] = None,
    query: Optional[Query] = None,
    lint_findings: Optional[Sequence[Finding]] = None,
) -> DiagnosticReport:
    """Build the estimate-vs-actual report for one executed query.

    Estimated DPCs come from the executed plan's own fetch nodes when the
    expression was part of the plan; for expressions the plan did not cost
    (e.g. an index the optimizer rejected), passing ``optimizer`` and
    ``query`` lets the report pull the estimate from the corresponding
    *candidate* plans, which is what a DBA comparing alternatives wants.
    ``lint_findings`` (e.g. ``Session.lint_findings``) are carried into the
    report so plan-invariant violations render next to the numbers they
    taint.
    """
    estimates = _plan_dpc_estimates(executed_plan)
    if optimizer is not None and query is not None:
        for candidate in optimizer.candidates(query):
            for key, value in _plan_dpc_estimates(candidate).items():
                estimates.setdefault(key, value)
    lines = []
    for observation in observations:
        lines.append(
            DiagnosticLine(
                expression=observation.key,
                estimated_pages=estimates.get(observation.key),
                actual_pages=observation.estimate,
                mechanism=observation.mechanism.value,
                answered=observation.answered,
                reason=observation.reason,
            )
        )
    return DiagnosticReport(
        query=query_description,
        plan_description=executed_plan.describe(),
        lines=lines,
        lint_findings=list(lint_findings or ()),
    )


_HINT_KINDS: list[tuple[type, str]] = [
    (SeqScanPlan, "table_scan"),
    (ClusteredRangeScanPlan, "clustered_range"),
    (IndexSeekPlan, "index_seek"),
    (InListSeekPlan, "in_list_seek"),
    (IndexIntersectionPlan, "index_intersection"),
    (CoveringScanPlan, "covering_scan"),
    (HashJoinPlan, "hash_join"),
    (INLJoinPlan, "inl_join"),
    (MergeJoinPlan, "merge_join"),
]


def hint_for_plan(plan: PlanNode) -> PlanHint:
    """The hint that forces a plan of this shape."""
    target = plan.child if isinstance(plan, CountPlan) else plan
    for plan_type, kind in _HINT_KINDS:
        if isinstance(target, plan_type):
            return PlanHint(
                kind=kind,
                index_name=getattr(target, "index_name", None),
                inner_table=getattr(target, "inner_table", None),
            )
    raise ValueError(f"no hint kind for plan node {type(target).__name__}")


def recommend_hint(
    database: Database,
    query: Query,
    observations: list[PageCountObservation],
    base_injections: Optional[InjectionSet] = None,
) -> Optional[PlanHint]:
    """Re-optimize with feedback injected; return a hint if the plan flips.

    Returns ``None`` when the corrected page counts do not change the
    chosen plan shape — no hint needed.
    """
    without = Optimizer(database, injections=base_injections)
    original = without.optimize(query)

    corrected = InjectionSet() if base_injections is None else base_injections.copy()
    corrected.absorb_observations(observations)
    with_feedback = Optimizer(database, injections=corrected)
    improved = with_feedback.optimize(query)

    if hint_for_plan(improved) == hint_for_plan(original):
        return None
    return hint_for_plan(improved)
