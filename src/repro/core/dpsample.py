"""Page-sampling distinct page counting for scan plans (paper Fig. 4).

Scan plans enjoy the *grouped page access* property (Section III-B): all
rows of a page are processed consecutively, so a page's contribution to
``DPC(T, p)`` can be decided with a per-page flag — no duplicate
elimination.  Distinct page counting therefore reduces to *counting* pages
with a property, and uniform page sampling estimates that count:

1. when the scan enters a new page, select it with probability ``f``
   (Bernoulli sampling — no extra memory, step 3);
2. on selected pages only, turn off predicate short-circuiting if the
   monitored expression needs terms the plan would skip (step 4);
3. count selected pages where some row satisfies ``p`` (step 5);
4. return ``PageCount / f`` (step 7).

The estimator is unbiased, and because each page is an independent
Bernoulli trial the error obeys Chernoff bounds (§III-B property (b));
:func:`dpsample_error_bound` computes that bound for the ablation bench.

:class:`BernoulliPageSampler` is the reusable step-1 component shared by
every request monitored on one scan; :func:`dpsample` is the standalone
algorithm of Fig. 4, used directly in tests and examples.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence

from repro.common.errors import MonitorError
from repro.common.rng import make_random
from repro.common.types import PageId
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction
from repro.storage.accounting import IOContext


class BernoulliPageSampler:
    """Decides page membership in the sample, one independent coin per page.

    ``fraction=1.0`` degenerates to "every page sampled", which the scans
    use when exact counting is required and affordable (Fig. 9's 100%
    configuration).
    """

    __slots__ = ("fraction", "_random", "pages_seen", "pages_sampled")

    def __init__(self, fraction: float, seed: int = 0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise MonitorError(f"sampling fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self._random = make_random(seed, "dpsample")
        self.pages_seen = 0
        self.pages_sampled = 0

    def sample_page(self, page_id: PageId) -> bool:
        """Coin flip for one page (call exactly once per page visited)."""
        self.pages_seen += 1
        if self.fraction >= 1.0:
            self.pages_sampled += 1
            return True
        chosen = self._random.random() < self.fraction
        if chosen:
            self.pages_sampled += 1
        return chosen


def dpsample(
    pages: Iterable[tuple[PageId, Sequence[Sequence]]],
    predicate: Conjunction,
    columns: Sequence[str],
    fraction: float,
    seed: int = 0,
    on_full_evaluation: Callable[[int], None] | None = None,
    io: Optional[IOContext] = None,
) -> float:
    """The DPSample algorithm of Fig. 4, standalone.

    ``pages`` yields ``(page_id, rows)`` in scan order.  ``predicate`` is
    the monitored expression ``p``; it is evaluated *without*
    short-circuiting on sampled pages (the worst case the algorithm is
    designed to bound).  ``on_full_evaluation`` receives the number of term
    evaluations per sampled row, letting callers account overhead.

    ``io``, when given, is charged the sampling run's own CPU work (the
    per-page coin and the full-evaluation predicate terms), so DPSample's
    overhead is measured on a context the caller owns rather than any
    shared state.

    Returns the unbiased estimate ``PageCount / f`` of ``DPC(T, p)``.
    """
    sampler = BernoulliPageSampler(fraction, seed)
    bound = BoundConjunction(predicate, columns)
    page_count = 0
    for page_id, rows in pages:
        if io is not None:
            io.charge_monitor_checks(1)
        if not sampler.sample_page(page_id):
            continue
        satisfied = False
        for row in rows:
            outcome = bound.evaluate(row, short_circuit=False)
            if io is not None:
                io.charge_predicates(outcome.evaluations)
            if on_full_evaluation is not None:
                on_full_evaluation(outcome.evaluations)
            if outcome.passed:
                satisfied = True
        if satisfied:
            page_count += 1
    return page_count / fraction


def dpsample_error_bound(
    true_dpc: int, fraction: float, confidence: float = 0.95
) -> float:
    """Two-sided additive error bound on the DPSample estimate.

    The sampled count ``X`` is Binomial(``true_dpc``, ``f``); a Chernoff/
    Hoeffding bound gives ``P(|X/f - DPC| >= eps) <= 2 exp(-2 (eps f)^2 /
    DPC)``.  Solving for the given confidence yields the ``eps`` reported
    here.  Returns 0 for a zero DPC.
    """
    if not 0.0 < fraction <= 1.0:
        raise MonitorError(f"fraction must be in (0, 1], got {fraction}")
    if not 0.0 < confidence < 1.0:
        raise MonitorError(f"confidence must be in (0, 1), got {confidence}")
    if true_dpc < 0:
        raise MonitorError("true_dpc must be non-negative")
    if true_dpc <= 0 or fraction >= 1.0:
        return 0.0
    delta = 1.0 - confidence
    return math.sqrt(true_dpc * math.log(2.0 / delta) / 2.0) / fraction
