"""Monitor bundles: the objects plan operators drive during execution.

The prototype described in §V-A instruments the *current* plan: each
storage-engine operator that sees page ids gets a small bundle of counters,
selected per requested expression by the monitor planner
(:mod:`repro.core.planner`).  Two bundle shapes cover every case in the
paper:

* :class:`ScanMonitorBundle` — attached to a scan operator (heap scan,
  clustered scan/range seek, covering index scan).  Exploits grouped page
  access: per-request page flags folded into either an exact counter
  (request is a prefix of the evaluated term order — no short-circuit
  changes needed) or a DPSample estimate (non-prefix requests, evaluated
  fully but only on Bernoulli-sampled pages).  Bit-vector semi-join
  requests (Fig. 5) ride the same per-page machinery, probing the filter
  on sampled pages only.

* :class:`FetchMonitorBundle` — attached to a Fetch stream (Index Seek,
  Index Intersection, or the inner of an INL join).  No grouped access, so
  each answerable request gets a :class:`~repro.core.probabilistic.LinearCounter`
  over the fetched page ids (Fig. 3).

Bundles charge the executing query's
:class:`~repro.storage.accounting.IOContext` for every hash and bit-vector
probe they perform (the operator passes its context into the observe
calls); the *extra predicate evaluations* caused by short-circuit
suppression are charged by the scan operator itself (it performs them), so
the measured monitoring overhead decomposes exactly as in Figs. 7 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.common.errors import MonitorError
from repro.common.types import PageId
from repro.core.bitvector import BitVectorFilter
from repro.core.dpsample import BernoulliPageSampler
from repro.core.probabilistic import LinearCounter
from repro.core.requests import (
    Mechanism,
    PageCountObservation,
    PageCountRequest,
)
from repro.sql.evaluator import BatchOutcome, TermOutcome, VectorOutcome
from repro.sql.predicates import AtomicPredicate, Conjunction
from repro.storage.accounting import IOContext

_vector_module = None


def _vec():
    """Lazily bind :mod:`repro.exec.vector` (avoids the core <-> exec cycle)."""
    global _vector_module
    if _vector_module is None:
        from repro.exec import vector

        _vector_module = vector
    return _vector_module


@dataclass(frozen=True)
class MonitorProgress:
    """Mid-run view of one request's streaming counter.

    The reopt watchdog (``repro.reopt.watchdog``) polls these at
    checkpoint boundaries to project the final DPC before the scan
    finishes, and the partial-harvest path turns them into
    partial observations after a :class:`~repro.common.errors.ReoptRequested`
    stop.  ``satisfied_pages`` is already scaled by the sampling fraction
    for sampled mechanisms; ``would_be_exact`` says whether the mechanism
    *at completion* would have produced an exact count — a mid-run value
    itself is never exact, only a lower bound.
    """

    request: PageCountRequest
    mechanism: Mechanism
    satisfied_pages: float
    would_be_exact: bool


@dataclass
class _ScanExpressionEntry:
    """One expression request being counted during a scan."""

    request: PageCountRequest
    #: positions (in the scan's *monitor conjunction* term order) of the
    #: request terms the scan must witness; terms guaranteed true by the
    #: scan's seek range are excluded.
    term_indexes: tuple[int, ...]
    #: exact mode: decidable on every page from normal short-circuited
    #: evaluation (request terms are a prefix of the query's term order).
    exact: bool
    page_satisfied: bool = False
    satisfied_pages: int = 0

    def observe(self, truth: tuple) -> None:
        """Update the per-page flag from one row's term-truth vector."""
        if self.page_satisfied:
            return
        for index in self.term_indexes:
            if truth[index] is not True:
                return
        self.page_satisfied = True

    def observe_batch(
        self,
        truth_columns: Sequence[Optional[Sequence[Optional[bool]]]],
        num_rows: int,
    ) -> None:
        """Batch form of :meth:`observe`: fold a whole page's truth columns.

        Equivalent to calling :meth:`observe` on every row of the page in
        order — the flag ends up set iff some row witnesses every request
        term.  A ``None`` column means the term was evaluated on no row of
        the page, so it can witness nothing.
        """
        if self.page_satisfied or num_rows == 0:
            return
        if not self.term_indexes:
            self.page_satisfied = True
            return
        columns = []
        for index in self.term_indexes:
            column = truth_columns[index]
            if column is None:
                return
            columns.append(column)
        if len(columns) == 1:
            if any(value is True for value in columns[0]):
                self.page_satisfied = True
            return
        for values in zip(*columns):
            if all(value is True for value in values):
                self.page_satisfied = True
                return

    def observe_masks(self, truth_masks: Sequence, num_rows: int) -> None:
        """Columnar form of :meth:`observe_batch`: fold witness masks.

        ``truth_masks[i]`` is term *i*'s witness mask (true on rows where
        the term was evaluated and held; see
        :class:`~repro.sql.evaluator.VectorOutcome`), or ``None`` when the
        term was evaluated on no row — which can witness nothing.  The
        flag ends up set iff some row witnesses every request term,
        identical to the row and batch paths.
        """
        if self.page_satisfied or num_rows == 0:
            return
        if not self.term_indexes:
            self.page_satisfied = True
            return
        vec = _vec()
        witness = None
        for index in self.term_indexes:
            mask = truth_masks[index]
            if mask is None:
                return
            witness = mask if witness is None else vec.mask_and(witness, mask)
            if not vec.mask_any(witness):
                return
        self.page_satisfied = True

    def fold_page(self, counted: bool) -> None:
        """End-of-page: fold the flag into the counter if the page counts
        toward this entry (always for exact mode, sampled pages otherwise).
        """
        if counted and self.page_satisfied:
            self.satisfied_pages += 1
        self.page_satisfied = False


@dataclass
class _BitVectorEntry:
    """A semi-join request probing a bit-vector filter during a scan."""

    request: PageCountRequest
    column_position: int
    filter: BitVectorFilter
    page_satisfied: bool = False
    satisfied_pages: int = 0

    def observe_row(self, row: Sequence[Any], io: IOContext) -> None:
        if self.page_satisfied:
            return
        io.charge_bitvector_probes(1)
        value = row[self.column_position]
        if value is not None and self.filter.may_contain(value):
            self.page_satisfied = True

    def observe_batch(self, rows: Sequence[Sequence[Any]], io: IOContext) -> None:
        """Batch form of :meth:`observe_row` over a page's rows.

        Probe charging is order-dependent in row mode (rows after the
        first satisfying one are free), so the batch counts probes up to
        and including the first hit before charging once.
        """
        if self.page_satisfied:
            return
        position = self.column_position
        may_contain = self.filter.may_contain
        probes = 0
        for row in rows:
            probes += 1
            value = row[position]
            if value is not None and may_contain(value):
                self.page_satisfied = True
                break
        if probes:
            io.charge_bitvector_probes(probes)

    def observe_column(self, column, io: IOContext) -> None:
        """Columnar form of :meth:`observe_batch`: probe one column vector.

        The bit-vector filter hashes one value at a time, so probing stays
        a per-value loop even in columnar mode (this is the sanctioned
        scalar fallback: probes happen on sampled pages only, and charging
        is order-dependent — rows after the first hit are free).  Values
        are materialized as Python scalars so the filter hashes exactly
        what the row path would.
        """
        if self.page_satisfied:
            return
        may_contain = self.filter.may_contain
        probes = 0
        for value in _vec().column_values(column):
            probes += 1
            if value is not None and may_contain(value):
                self.page_satisfied = True
                break
        if probes:
            io.charge_bitvector_probes(probes)

    def fold_page(self, counted: bool) -> None:
        if counted and self.page_satisfied:
            self.satisfied_pages += 1
        self.page_satisfied = False


class ScanMonitorBundle:
    """Counters attached to one scan operator.

    The scan calls, in order: :meth:`start_page` once per page,
    :meth:`observe_row` once per row (passing the term outcome it computed
    and the raw row), and :meth:`end_page` when the page is exhausted.
    :meth:`needs_full_evaluation_on` tells the scan whether the current
    page requires short-circuiting to be off (Fig. 4 step 4).
    :meth:`finish` yields the observations.
    """

    def __init__(
        self,
        table_name: str,
        query_term_count: int,
        sampler: Optional[BernoulliPageSampler] = None,
    ) -> None:
        self.table_name = table_name
        self.query_term_count = query_term_count
        self.sampler = sampler
        self._expression_entries: list[_ScanExpressionEntry] = []
        self._sampled_expression_entries: list[_ScanExpressionEntry] = []
        self._exact_expression_entries: list[_ScanExpressionEntry] = []
        self._bitvector_entries: list[_BitVectorEntry] = []
        self._current_page_sampled = False
        self._in_page = False
        self._any_nonprefix = False

    # ------------------------------------------------------------------
    # Planner-side construction
    # ------------------------------------------------------------------
    def add_expression_request(
        self,
        request: PageCountRequest,
        term_indexes: Sequence[int],
        exact: bool,
    ) -> None:
        entry = _ScanExpressionEntry(
            request=request, term_indexes=tuple(term_indexes), exact=exact
        )
        self._expression_entries.append(entry)
        if exact:
            self._exact_expression_entries.append(entry)
        else:
            self._any_nonprefix = True
            self._sampled_expression_entries.append(entry)

    def add_bitvector_request(
        self,
        request: PageCountRequest,
        column_position: int,
        filter: BitVectorFilter,
    ) -> None:
        self._bitvector_entries.append(
            _BitVectorEntry(
                request=request, column_position=column_position, filter=filter
            )
        )

    @property
    def has_requests(self) -> bool:
        return bool(self._expression_entries or self._bitvector_entries)

    @property
    def needs_sampler(self) -> bool:
        """Whether any request can only be answered on sampled pages."""
        return self._any_nonprefix or bool(self._bitvector_entries)

    # ------------------------------------------------------------------
    # Scan-side protocol
    # ------------------------------------------------------------------
    def start_page(self, page_id: PageId) -> None:
        if self._in_page:
            raise MonitorError("start_page called twice without end_page")
        self._in_page = True
        if self.needs_sampler:
            if self.sampler is None:
                raise MonitorError(
                    f"scan of {self.table_name} has sampled requests but no sampler"
                )
            self._current_page_sampled = self.sampler.sample_page(page_id)
        else:
            self._current_page_sampled = False

    @property
    def page_is_sampled(self) -> bool:
        return self._current_page_sampled

    def needs_full_evaluation(self) -> bool:
        """Whether the *current page*'s rows need short-circuiting off.

        True exactly when the page is in the sample and some request needs
        terms the normal evaluation might skip.
        """
        return self._current_page_sampled and self._any_nonprefix

    def observe_row(
        self, outcome: TermOutcome, row: Sequence[Any], io: IOContext
    ) -> None:
        """Feed one row's evaluation result to all entries.

        ``outcome.truth`` is indexed by the monitor conjunction's term
        order.  Exact entries consume every row; sampled entries only rows
        of sampled pages (where full truth is available); bit-vector
        entries probe on sampled pages only.  Monitoring CPU is charged to
        ``io``, the executing query's own context.
        """
        if not self._in_page:
            raise MonitorError("observe_row called outside a page")
        # The per-row bookkeeping of §III-B ("a single comparison for each
        # row"), charged so scan-monitoring overhead is visible (Fig. 7).
        io.charge_monitor_checks(1)
        truth = outcome.truth
        for entry in self._exact_expression_entries:
            entry.observe(truth)
        if self._current_page_sampled:
            for entry in self._sampled_expression_entries:
                entry.observe(truth)
            for bv_entry in self._bitvector_entries:
                bv_entry.observe_row(row, io)

    def observe_batch(
        self, outcome: BatchOutcome, rows: Sequence[Sequence[Any]], io: IOContext
    ) -> None:
        """Feed one page's worth of evaluation results to all entries.

        Equivalent to :meth:`observe_row` on each row in page order: the
        per-row monitor check is charged once for the whole page
        (``charge_monitor_checks(n)``), expression entries fold the truth
        *columns*, and bit-vector entries preserve the row-ordered probe
        charging (probes stop at the first satisfying row).
        """
        if not self._in_page:
            raise MonitorError("observe_batch called outside a page")
        num_rows = outcome.num_rows
        if num_rows == 0:
            return
        io.charge_monitor_checks(num_rows)
        truth = outcome.truth
        for entry in self._exact_expression_entries:
            entry.observe_batch(truth, num_rows)
        if self._current_page_sampled:
            for entry in self._sampled_expression_entries:
                entry.observe_batch(truth, num_rows)
            for bv_entry in self._bitvector_entries:
                bv_entry.observe_batch(rows, io)

    def observe_columns(
        self, outcome: VectorOutcome, columns: Sequence, io: IOContext
    ) -> None:
        """Columnar form of :meth:`observe_batch`: consume witness masks.

        ``columns`` is the page's column vectors (for bit-vector probing);
        the expression entries fold the outcome's witness masks directly.
        Charges, flags and fold decisions are identical to the row path.
        """
        if not self._in_page:
            raise MonitorError("observe_columns called outside a page")
        num_rows = outcome.num_rows
        if num_rows == 0:
            return
        io.charge_monitor_checks(num_rows)
        truth = outcome.truth
        for entry in self._exact_expression_entries:
            entry.observe_masks(truth, num_rows)
        if self._current_page_sampled:
            for entry in self._sampled_expression_entries:
                entry.observe_masks(truth, num_rows)
            for bv_entry in self._bitvector_entries:
                bv_entry.observe_column(columns[bv_entry.column_position], io)

    def end_page(self) -> None:
        if not self._in_page:
            raise MonitorError("end_page called outside a page")
        self._in_page = False
        for entry in self._exact_expression_entries:
            entry.fold_page(counted=True)
        for entry in self._sampled_expression_entries:
            entry.fold_page(counted=self._current_page_sampled)
        for bv_entry in self._bitvector_entries:
            bv_entry.fold_page(counted=self._current_page_sampled)
        self._current_page_sampled = False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def progress(self) -> list[MonitorProgress]:
        """Streaming counter values so far, safe to read mid-page.

        The current page's un-folded flag is deliberately excluded: the
        returned counts cover only completed pages, so they are honest
        lower bounds whatever program point the caller polls from.
        """
        fraction = self.sampler.fraction if self.sampler is not None else 1.0
        snapshot: list[MonitorProgress] = []
        for entry in self._expression_entries:
            if entry.exact:
                snapshot.append(
                    MonitorProgress(
                        request=entry.request,
                        mechanism=Mechanism.EXACT_SCAN_COUNT,
                        satisfied_pages=float(entry.satisfied_pages),
                        would_be_exact=True,
                    )
                )
            else:
                snapshot.append(
                    MonitorProgress(
                        request=entry.request,
                        mechanism=Mechanism.DPSAMPLE,
                        satisfied_pages=entry.satisfied_pages / fraction,
                        would_be_exact=fraction >= 1.0,
                    )
                )
        for bv_entry in self._bitvector_entries:
            snapshot.append(
                MonitorProgress(
                    request=bv_entry.request,
                    mechanism=Mechanism.BITVECTOR_DPSAMPLE,
                    satisfied_pages=bv_entry.satisfied_pages / fraction,
                    would_be_exact=False,
                )
            )
        return snapshot

    def finish(self) -> list[PageCountObservation]:
        observations: list[PageCountObservation] = []
        fraction = self.sampler.fraction if self.sampler is not None else 1.0
        for entry in self._expression_entries:
            if entry.exact:
                observations.append(
                    PageCountObservation(
                        request=entry.request,
                        mechanism=Mechanism.EXACT_SCAN_COUNT,
                        estimate=float(entry.satisfied_pages),
                        exact=True,
                        details={"satisfied_pages": entry.satisfied_pages},
                    )
                )
            else:
                observations.append(
                    PageCountObservation(
                        request=entry.request,
                        mechanism=Mechanism.DPSAMPLE,
                        estimate=entry.satisfied_pages / fraction,
                        exact=fraction >= 1.0,
                        details={
                            "satisfied_sampled_pages": entry.satisfied_pages,
                            "fraction": fraction,
                            "pages_sampled": (
                                self.sampler.pages_sampled if self.sampler else 0
                            ),
                        },
                    )
                )
        for bv_entry in self._bitvector_entries:
            observations.append(
                PageCountObservation(
                    request=bv_entry.request,
                    mechanism=Mechanism.BITVECTOR_DPSAMPLE,
                    estimate=bv_entry.satisfied_pages / fraction,
                    exact=False,  # collisions can overestimate
                    details={
                        "satisfied_sampled_pages": bv_entry.satisfied_pages,
                        "fraction": fraction,
                        "filter_bits": bv_entry.filter.num_bits,
                        "filter_fill_ratio": bv_entry.filter.fill_ratio,
                    },
                )
            )
        return observations


@dataclass
class _FetchEntry:
    """One expression request counted over a fetch stream."""

    request: PageCountRequest
    #: positions (in the fetch residual's term order) that must be TRUE for
    #: the fetched row to witness the request; guaranteed terms excluded.
    term_indexes: tuple[int, ...]
    counter: LinearCounter = field(default_factory=lambda: LinearCounter(64))

    def observe(self, page_id: PageId, truth: tuple, io: IOContext) -> None:
        for index in self.term_indexes:
            if truth[index] is not True:
                return
        io.charge_hashes(1)
        self.counter.observe(int(page_id))

    def observe_batch(
        self,
        page_ids: Sequence[PageId],
        truth_columns: Sequence[Optional[Sequence[Optional[bool]]]],
        io: IOContext,
    ) -> None:
        """Batch form of :meth:`observe` over one chunk of fetched rows.

        Hashes the same page ids the row loop would (rows whose witness
        terms all came out TRUE), charging the hash count once.
        """
        observe = self.counter.observe
        if not self.term_indexes:
            io.charge_hashes(len(page_ids))
            for page_id in page_ids:
                observe(int(page_id))
            return
        columns = []
        for index in self.term_indexes:
            column = truth_columns[index]
            if column is None:
                return
            columns.append(column)
        hashes = 0
        if len(columns) == 1:
            witness = columns[0]
            for r, page_id in enumerate(page_ids):
                if witness[r] is True:
                    hashes += 1
                    observe(int(page_id))
        else:
            for r, page_id in enumerate(page_ids):
                if all(column[r] is True for column in columns):
                    hashes += 1
                    observe(int(page_id))
        if hashes:
            io.charge_hashes(hashes)

    def observe_masks(
        self, page_ids: Sequence[PageId], truth_masks: Sequence, io: IOContext
    ) -> None:
        """Columnar form of :meth:`observe_batch`: AND witness masks.

        Hashes the page ids of rows whose witness masks are all true —
        the same set, in the same order, as the row loop — charging the
        exact hash count.
        """
        vec = _vec()
        observe = self.counter.observe
        if not self.term_indexes:
            io.charge_hashes(len(page_ids))
            for page_id in page_ids:
                observe(int(page_id))
            return
        witness = None
        for index in self.term_indexes:
            mask = truth_masks[index]
            if mask is None:
                return
            witness = mask if witness is None else vec.mask_and(witness, mask)
        hashes = vec.mask_count(witness)
        if hashes:
            io.charge_hashes(hashes)
            for page_id in vec.compress_values(page_ids, witness):
                observe(int(page_id))


class FetchMonitorBundle:
    """Linear counters attached to a Fetch stream (Fig. 3).

    The Fetch operator calls :meth:`observe_fetch` for every row it fetches,
    passing the page id and the residual-term outcome it computed anyway.
    """

    def __init__(self, table_name: str) -> None:
        self.table_name = table_name
        self._entries: list[_FetchEntry] = []

    def add_request(
        self,
        request: PageCountRequest,
        term_indexes: Sequence[int],
        num_bits: int,
        seed: int = 0,
    ) -> None:
        self._entries.append(
            _FetchEntry(
                request=request,
                term_indexes=tuple(term_indexes),
                counter=LinearCounter(num_bits, seed=seed),
            )
        )

    @property
    def has_requests(self) -> bool:
        return bool(self._entries)

    def observe_fetch(
        self, page_id: PageId, outcome: Optional[TermOutcome], io: IOContext
    ) -> None:
        truth: tuple = outcome.truth if outcome is not None else ()
        for entry in self._entries:
            entry.observe(page_id, truth, io)

    def observe_fetch_batch(
        self,
        page_ids: Sequence[PageId],
        outcome: Optional[BatchOutcome],
        io: IOContext,
    ) -> None:
        """Batch form of :meth:`observe_fetch` for one chunk of fetches.

        ``page_ids`` is parallel to the rows the batch outcome covers; the
        counters end up bit-identical to per-row observation (the linear
        counter is order-insensitive, and hash charges are exact totals).
        """
        if not self._entries or not page_ids:
            return
        truth_columns: Sequence[Optional[Sequence[Optional[bool]]]] = (
            outcome.truth if outcome is not None else ()
        )
        for entry in self._entries:
            entry.observe_batch(page_ids, truth_columns, io)

    def observe_fetch_columns(
        self,
        page_ids: Sequence[PageId],
        outcome: Optional[VectorOutcome],
        io: IOContext,
    ) -> None:
        """Columnar form of :meth:`observe_fetch_batch` (witness masks)."""
        if not self._entries or not page_ids:
            return
        truth_masks: Sequence = outcome.truth if outcome is not None else ()
        for entry in self._entries:
            entry.observe_masks(page_ids, truth_masks, io)

    def progress(self) -> list[MonitorProgress]:
        """Streaming counter estimates so far (honest lower bounds)."""
        return [
            MonitorProgress(
                request=entry.request,
                mechanism=Mechanism.LINEAR_COUNTING,
                satisfied_pages=entry.counter.estimate(),
                would_be_exact=False,
            )
            for entry in self._entries
        ]

    def finish(self) -> list[PageCountObservation]:
        observations = []
        for entry in self._entries:
            observations.append(
                PageCountObservation(
                    request=entry.request,
                    mechanism=Mechanism.LINEAR_COUNTING,
                    estimate=entry.counter.estimate(),
                    exact=False,
                    details={
                        "bitmap_bits": entry.counter.num_bits,
                        "bits_set": entry.counter.bits_set,
                        "observations": entry.counter.observations,
                        "saturated": entry.counter.saturated,
                    },
                )
            )
        return observations
