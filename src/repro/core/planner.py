"""The monitor planner: instrument the *current* plan for page counting.

Given a physical plan (whatever the optimizer chose) and a set of
page-count requests, decide — per request — which operator can observe it
and with which mechanism, following the answerability rules of §II-B/§IV:

========================  =====================================================
current operator          answerable requests
========================  =====================================================
full scan                 any expression over the table's columns; *prefix*
                          expressions exactly (free), others via DPSample
clustered range seek      expressions that include the range predicate
                          (pages outside the range are provably excluded)
covering index scan       expressions over carried columns, via linear
                          counting on locator page ids
index seek / intersection expressions containing the seek term(s) whose
                          remaining terms are a prefix of the fetch residual,
                          via linear counting (Fig. 3)
INL join (inner side)     the join predicate itself (and nothing else: the
                          fetch stream only covers join-matched rows)
hash join (probe scan)    the join predicate, via bit-vector filter built on
                          the build side + DPSample on the probe scan (Fig. 5)
merge join (inner scan)   the join predicate, via full ("blocking") or
                          partial bit-vector filter (§IV)
========================  =====================================================

Requests nothing can observe come back as explicit *unanswerable*
observations — a diagnostic, never a fabricated number.

The same walk also builds the executable operators, so instrumentation can
never disagree with the plan that actually runs ("none of our mechanisms
requires changes to the plan itself", §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.catalog import Database
from repro.common.errors import MonitorError
from repro.common.rng import derive_seed
from repro.core.bitvector import (
    BitVectorFilter,
    PartialBitVectorFilter,
    recommended_bitvector_bits,
)
from repro.core.dpsample import BernoulliPageSampler
from repro.core.monitors import FetchMonitorBundle, ScanMonitorBundle
from repro.core.requests import (
    AccessPathRequest,
    JoinMethodRequest,
    PageCountObservation,
    PageCountRequest,
)
from repro.exec.aggregates import CountAggregate
from repro.exec.base import Operator
from repro.exec.joins import HashJoin, INLJoin, MergeJoin
from repro.exec.scans import ClusteredRangeScan, CoveringIndexScan, SeqScan
from repro.exec.seeks import (
    IndexInListSeekFetch,
    IndexIntersectionFetch,
    IndexSeekFetch,
    SeekSpec,
)
from repro.exec.sorts import Sort
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    InListSeekPlan,
    CountPlan,
    CoveringScanPlan,
    HashJoinPlan,
    IndexIntersectionPlan,
    IndexSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    PlanNode,
    SeqScanPlan,
)
from repro.sql.predicates import AtomicPredicate, Conjunction, JoinEquality


@dataclass
class MonitorConfig:
    """Knobs of the monitoring mechanisms (paper defaults in comments)."""

    #: Bernoulli page-sampling fraction for DPSample (paper: 1% at 1.45M
    #: pages; we default higher because repro-scale tables are small and
    #: the absolute sampled-page counts would otherwise be tiny).
    dpsample_fraction: float = 0.2
    #: Linear-counting bitmap size; ``None`` -> one bit per table page
    #: (min 256).  The paper needs "much less than one bit per page"; the
    #: ablation bench sweeps this.
    linear_counter_bits: Optional[int] = None
    #: Bit-vector filter width; ``None`` -> the build table's row count
    #: (identity-mod placement over a dense key domain is then exact).
    bitvector_bits: Optional[int] = None
    #: Allow turning short-circuiting off on a whole fetch stream so
    #: non-prefix expressions become answerable on index plans.  Off by
    #: default: the paper does not do this (§II-B reports such requests as
    #: not obtainable).
    allow_fetch_full_evaluation: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.dpsample_fraction <= 1.0:
            raise MonitorError(
                f"dpsample_fraction must be in (0, 1], got {self.dpsample_fraction}"
            )


@dataclass
class BuildResult:
    """An executable operator tree plus pre-resolved observations."""

    root: Operator
    unanswerable: list[PageCountObservation] = field(default_factory=list)
    #: How many page-count requests the build received (answerable or not).
    num_requests: int = 0

    def summary(self) -> str:
        """One-line account of the monitor-planning outcome, used as the
        lifecycle's ``monitor-plan`` stage detail."""
        answerable = self.num_requests - len(self.unanswerable)
        return (
            f"{self.num_requests} request(s): {answerable} answerable, "
            f"{len(self.unanswerable)} unanswerable"
        )


class _Instrumentation:
    """One plan-walk's worth of state."""

    def __init__(
        self, database: Database, requests: list[PageCountRequest], config: MonitorConfig
    ) -> None:
        self.database = database
        self.config = config
        self.pending: dict[int, PageCountRequest] = dict(enumerate(requests))
        self.claimed: set[int] = set()
        self.failures: dict[int, str] = {}

    # ------------------------------------------------------------------
    def access_requests_for(self, table: str) -> list[tuple[int, AccessPathRequest]]:
        return [
            (rid, request)
            for rid, request in self.pending.items()
            if rid not in self.claimed
            and isinstance(request, AccessPathRequest)
            and request.table == table
        ]

    def join_requests_for(
        self, inner_table: str, join_predicate: JoinEquality
    ) -> list[tuple[int, JoinMethodRequest]]:
        matches = []
        for rid, request in self.pending.items():
            if rid in self.claimed or not isinstance(request, JoinMethodRequest):
                continue
            if request.inner_table != inner_table:
                continue
            if request.join_predicate.key() not in (
                join_predicate.key(),
                join_predicate.reversed().key(),
            ):
                continue
            matches.append((rid, request))
        return matches

    def claim(self, request_id: int) -> None:
        self.claimed.add(request_id)

    def fail(self, request_id: int, reason: str) -> None:
        """Record why an operator could not answer a request.

        Only the *last* recorded reason per request is kept; a later
        operator may still claim it.
        """
        self.failures[request_id] = reason

    def sampler_seed(self, *context: object) -> int:
        """Per-scan sampler seed.

        Derived from the config seed *and* the scan's identity (table +
        predicate), so different queries draw independent page samples —
        a fixed global seed would reuse one unlucky sample across a whole
        workload and bias every estimate the same way — while re-running
        the same query stays exactly reproducible.
        """
        return derive_seed(self.config.seed, "dpsample", *context)

    def linear_bits(self, table_name: str) -> int:
        if self.config.linear_counter_bits is not None:
            return self.config.linear_counter_bits
        pages = self.database.table(table_name).num_pages
        return max(256, pages)

    def bitvector_bits(self, build_table: str, probe_table: str) -> int:
        """Width of a join bit-vector filter.

        Defaults to the larger of the two tables' row counts: integer
        join keys use identity-mod placement, so covering the join-key
        domain (which either side may define — a small driver table can
        still carry keys from the big table's id space) makes the vector
        collision-free at ~1 bit per row — the "modest size (less than 1%
        of the table size)" of §IV.
        """
        if self.config.bitvector_bits is not None:
            return self.config.bitvector_bits
        rows = max(
            self.database.table(build_table).num_rows,
            self.database.table(probe_table).num_rows,
        )
        return max(1024, rows)

    def leftovers(self) -> list[PageCountObservation]:
        observations = []
        for rid, request in self.pending.items():
            if rid in self.claimed:
                continue
            reason = self.failures.get(
                rid, "no operator in the current plan can observe this expression"
            )
            observations.append(PageCountObservation.unanswerable(request, reason))
        return observations


def build_executable(
    plan: PlanNode,
    database: Database,
    requests: list[PageCountRequest] | tuple = (),
    config: Optional[MonitorConfig] = None,
) -> BuildResult:
    """Build operators for ``plan``, attaching monitors for ``requests``."""
    config = config if config is not None else MonitorConfig()
    state = _Instrumentation(database, list(requests), config)
    root = _build(plan, state)
    return BuildResult(
        root=root,
        unanswerable=state.leftovers(),
        num_requests=len(requests),
    )


# ----------------------------------------------------------------------
# Scan instrumentation helpers
# ----------------------------------------------------------------------
def _plan_scan_monitoring(
    state: _Instrumentation,
    table_name: str,
    query_conjunction: Conjunction,
    guaranteed_terms: tuple[AtomicPredicate, ...],
) -> tuple[Optional[ScanMonitorBundle], Conjunction]:
    """Decide scan-side monitoring for a (range-)scan of ``table_name``.

    Returns the bundle (or None) and the monitor conjunction the scan must
    evaluate (query terms first, appended monitoring-only terms after).
    """
    table = state.database.table(table_name)
    candidates = state.access_requests_for(table_name)
    guaranteed = set(guaranteed_terms)

    monitor_terms = list(query_conjunction.terms)
    existing = set(monitor_terms)
    accepted: list[tuple[int, AccessPathRequest, tuple[int, ...], bool]] = []

    for rid, request in candidates:
        bad_columns = [
            c for c in request.expression.columns() if not table.schema.has_column(c)
        ]
        if bad_columns:
            state.fail(rid, f"unknown columns {bad_columns} on table {table_name}")
            continue
        if guaranteed and not guaranteed <= set(request.expression.terms):
            state.fail(
                rid,
                "the scan only visits pages in its seek range; the requested "
                "expression does not include the range predicate "
                f"{[t.key() for t in guaranteed_terms]}",
            )
            continue
        effective = [t for t in request.expression.terms if t not in guaranteed]
        for term in effective:
            if term not in existing:
                monitor_terms.append(term)
                existing.add(term)
        term_indexes = tuple(monitor_terms.index(t) for t in effective)
        exact = Conjunction(tuple(effective)).is_prefix_of(query_conjunction)
        accepted.append((rid, request, term_indexes, exact))

    if not accepted:
        return None, query_conjunction

    needs_sampler = any(not exact for _, _, _, exact in accepted)
    sampler = (
        BernoulliPageSampler(
            state.config.dpsample_fraction,
            seed=state.sampler_seed(table_name, query_conjunction.key()),
        )
        if needs_sampler
        else None
    )
    bundle = ScanMonitorBundle(
        table_name=table_name,
        query_term_count=len(query_conjunction),
        sampler=sampler,
    )
    for rid, request, term_indexes, exact in accepted:
        bundle.add_expression_request(request, term_indexes, exact)
        state.claim(rid)
    return bundle, Conjunction(tuple(monitor_terms))


def _ensure_scan_bundle(
    state: _Instrumentation,
    scan_operator: Operator,
    table_name: str,
    query_term_count: int,
) -> ScanMonitorBundle:
    """Get (or create) the scan's bundle so a join can add a bit-vector
    request; creates a sampler if the existing bundle lacks one."""
    bundle: Optional[ScanMonitorBundle] = getattr(scan_operator, "bundle", None)
    seed = state.sampler_seed(table_name, query_term_count, scan_operator.stats.detail)
    if bundle is None:
        bundle = ScanMonitorBundle(
            table_name=table_name,
            query_term_count=query_term_count,
            sampler=BernoulliPageSampler(state.config.dpsample_fraction, seed=seed),
        )
        scan_operator.bundle = bundle
    elif bundle.sampler is None:
        bundle.sampler = BernoulliPageSampler(
            state.config.dpsample_fraction, seed=seed
        )
    return bundle


# ----------------------------------------------------------------------
# Fetch instrumentation helpers
# ----------------------------------------------------------------------
def _plan_fetch_monitoring(
    state: _Instrumentation,
    table_name: str,
    guaranteed_terms: tuple[AtomicPredicate, ...],
    residual: Conjunction,
    plan_label: str,
) -> tuple[Optional[FetchMonitorBundle], bool]:
    """Decide fetch-side monitoring (index seek / intersection plans).

    Returns the bundle (or None) and whether the fetch must evaluate its
    residual without short-circuiting.
    """
    candidates = state.access_requests_for(table_name)
    guaranteed = set(guaranteed_terms)
    accepted: list[tuple[int, AccessPathRequest, tuple[int, ...], bool]] = []

    for rid, request in candidates:
        if not guaranteed <= set(request.expression.terms):
            state.fail(
                rid,
                f"the {plan_label} only fetches rows matching its seek "
                f"predicate(s) {[t.key() for t in guaranteed_terms]}; the "
                "requested expression does not include them (§II-B)",
            )
            continue
        effective = tuple(
            t for t in request.expression.terms if t not in guaranteed
        )
        missing = [t.key() for t in effective if t not in set(residual.terms)]
        if missing:
            state.fail(
                rid,
                f"the {plan_label}'s fetch does not evaluate terms {missing}",
            )
            continue
        is_prefix = Conjunction(effective).is_prefix_of(residual)
        if not is_prefix and not state.config.allow_fetch_full_evaluation:
            state.fail(
                rid,
                "requested terms are not a prefix of the fetch residual; "
                "enable allow_fetch_full_evaluation to monitor it anyway",
            )
            continue
        term_indexes = tuple(residual.terms.index(t) for t in effective)
        accepted.append((rid, request, term_indexes, is_prefix))

    if not accepted:
        return None, False

    bundle = FetchMonitorBundle(table_name)
    needs_full = False
    bits = state.linear_bits(table_name)
    for rid, request, term_indexes, is_prefix in accepted:
        bundle.add_request(request, term_indexes, num_bits=bits, seed=state.config.seed)
        state.claim(rid)
        if not is_prefix:
            needs_full = True
    return bundle, needs_full


# ----------------------------------------------------------------------
# The plan walk
# ----------------------------------------------------------------------
def _build(plan: PlanNode, state: _Instrumentation) -> Operator:
    if isinstance(plan, CountPlan):
        child = _build(plan.child, state)
        operator: Operator = CountAggregate(child, plan.column)
    elif isinstance(plan, SeqScanPlan):
        bundle, monitor_conjunction = _plan_scan_monitoring(
            state, plan.table, plan.predicate, guaranteed_terms=()
        )
        operator = SeqScan(
            state.database.table(plan.table),
            plan.predicate,
            bundle=bundle,
            monitor_conjunction=monitor_conjunction,
        )
    elif isinstance(plan, ClusteredRangeScanPlan):
        bundle, monitor_conjunction = _plan_scan_monitoring(
            state, plan.table, plan.residual, guaranteed_terms=(plan.range_term,)
        )
        operator = ClusteredRangeScan(
            state.database.table(plan.table),
            low=plan.low,
            high=plan.high,
            query_conjunction=plan.residual,
            low_inclusive=plan.low_inclusive,
            high_inclusive=plan.high_inclusive,
            bundle=bundle,
            monitor_conjunction=monitor_conjunction,
        )
    elif isinstance(plan, CoveringScanPlan):
        operator = _build_covering(plan, state)
    elif isinstance(plan, IndexSeekPlan):
        bundle, needs_full = _plan_fetch_monitoring(
            state,
            plan.table,
            guaranteed_terms=(plan.seek_term,),
            residual=plan.residual,
            plan_label="Index Seek plan",
        )
        operator = IndexSeekFetch(
            state.database.table(plan.table),
            plan.index_name,
            low=plan.low,
            high=plan.high,
            residual=plan.residual,
            low_inclusive=plan.low_inclusive,
            high_inclusive=plan.high_inclusive,
            bundle=bundle,
            monitor_full_eval=needs_full,
        )
    elif isinstance(plan, InListSeekPlan):
        bundle, needs_full = _plan_fetch_monitoring(
            state,
            plan.table,
            guaranteed_terms=(plan.in_term,),
            residual=plan.residual,
            plan_label="IN-list Seek plan",
        )
        operator = IndexInListSeekFetch(
            state.database.table(plan.table),
            plan.index_name,
            values=plan.in_term.values,
            residual=plan.residual,
            bundle=bundle,
            monitor_full_eval=needs_full,
        )
    elif isinstance(plan, IndexIntersectionPlan):
        guaranteed = tuple(leg.seek_term for leg in plan.legs)
        bundle, needs_full = _plan_fetch_monitoring(
            state,
            plan.table,
            guaranteed_terms=guaranteed,
            residual=plan.residual,
            plan_label="Index Intersection plan",
        )
        operator = IndexIntersectionFetch(
            state.database.table(plan.table),
            seeks=[
                SeekSpec(
                    leg.index_name,
                    leg.low,
                    leg.high,
                    leg.low_inclusive,
                    leg.high_inclusive,
                )
                for leg in plan.legs
            ],
            residual=plan.residual,
            bundle=bundle,
            monitor_full_eval=needs_full,
        )
    elif isinstance(plan, INLJoinPlan):
        operator = _build_inl(plan, state)
    elif isinstance(plan, HashJoinPlan):
        operator = _build_hash(plan, state)
    elif isinstance(plan, MergeJoinPlan):
        operator = _build_merge(plan, state)
    else:
        raise MonitorError(f"unknown plan node type {type(plan).__name__}")

    operator.estimated_rows = plan.estimated_rows
    return operator


def _build_covering(plan: CoveringScanPlan, state: _Instrumentation) -> Operator:
    table = state.database.table(plan.table)
    index = table.index(plan.index_name)
    carried = set(index.definition.carried_columns())
    candidates = state.access_requests_for(plan.table)

    monitor_terms = list(plan.predicate.terms)
    existing = set(monitor_terms)
    accepted: list[tuple[int, AccessPathRequest, tuple[int, ...], bool]] = []
    for rid, request in candidates:
        outside = [c for c in request.expression.columns() if c not in carried]
        if outside:
            state.fail(
                rid,
                f"covering index {plan.index_name} does not carry columns {outside}",
            )
            continue
        for term in request.expression.terms:
            if term not in existing:
                monitor_terms.append(term)
                existing.add(term)
        term_indexes = tuple(
            monitor_terms.index(t) for t in request.expression.terms
        )
        is_prefix = request.expression.is_prefix_of(plan.predicate)
        accepted.append((rid, request, term_indexes, is_prefix))

    bundle = None
    needs_full = False
    if accepted:
        bundle = FetchMonitorBundle(plan.table)
        bits = state.linear_bits(plan.table)
        for rid, request, term_indexes, is_prefix in accepted:
            bundle.add_request(
                request, term_indexes, num_bits=bits, seed=state.config.seed
            )
            state.claim(rid)
            if not is_prefix:
                needs_full = True
    return CoveringIndexScan(
        table,
        plan.index_name,
        plan.predicate,
        bundle=bundle,
        monitor_conjunction=Conjunction(tuple(monitor_terms)),
        monitor_full_eval=needs_full,
    )


def _build_inl(plan: INLJoinPlan, state: _Instrumentation) -> Operator:
    # Claim join-method requests *before* walking the outer subtree, so
    # access requests inside the outer still resolve independently.
    matches = state.join_requests_for(plan.inner_table, plan.join_predicate)
    bundle = None
    if matches:
        bundle = FetchMonitorBundle(plan.inner_table)
        bits = state.linear_bits(plan.inner_table)
        for rid, request in matches:
            # Every fetched inner row satisfies the join predicate by
            # construction: no residual terms needed (term_indexes empty).
            bundle.add_request(request, (), num_bits=bits, seed=state.config.seed)
            state.claim(rid)
    outer_operator = _build(plan.outer, state)
    outer_column = plan.join_predicate.column_for(plan.outer_table)
    inner_column = plan.join_predicate.column_for(plan.inner_table)
    return INLJoin(
        outer=outer_operator,
        outer_join_column=outer_column,
        inner_table=state.database.table(plan.inner_table),
        inner_join_column=inner_column,
        inner_residual=plan.inner_residual,
        inner_index_name=plan.inner_index_name,
        outer_label=plan.outer_table,
        bundle=bundle,
    )


def _scan_query_conjunction(plan: PlanNode) -> Optional[Conjunction]:
    """The scan-side conjunction of a scan-shaped plan node, else None."""
    if isinstance(plan, SeqScanPlan):
        return plan.predicate
    if isinstance(plan, ClusteredRangeScanPlan):
        return plan.residual
    return None


def _build_hash(plan: HashJoinPlan, state: _Instrumentation) -> Operator:
    matches = state.join_requests_for(plan.probe_table, plan.join_predicate)
    build_side_requests = state.join_requests_for(
        plan.build_table, plan.join_predicate
    )
    for rid, _request in build_side_requests:
        state.fail(
            rid,
            f"the current Hash Join builds on {plan.build_table}; a bit "
            "vector for that side cannot exist before its scan, so its "
            "join DPC is not obtainable from this plan",
        )

    probe_conjunction = _scan_query_conjunction(plan.probe)
    bitvector: Optional[BitVectorFilter] = None
    if matches and probe_conjunction is None:
        for rid, _request in matches:
            state.fail(
                rid,
                "the probe side of the current Hash Join is not a scan; "
                "bit-vector DPSample monitoring needs a probe-side scan",
            )
    build_operator = _build(plan.build, state)
    probe_operator = _build(plan.probe, state)
    if matches and probe_conjunction is not None:
        bitvector = BitVectorFilter(
            state.bitvector_bits(plan.build_table, plan.probe_table),
            seed=state.config.seed,
        )
        probe_table = state.database.table(plan.probe_table)
        probe_column = plan.join_predicate.column_for(plan.probe_table)
        column_position = probe_table.schema.position(probe_column)
        bundle = _ensure_scan_bundle(
            state, probe_operator, plan.probe_table, len(probe_conjunction)
        )
        for rid, request in matches:
            bundle.add_bitvector_request(request, column_position, bitvector)
            state.claim(rid)
    return HashJoin(
        build=build_operator,
        probe=probe_operator,
        build_join_column=plan.join_predicate.column_for(plan.build_table),
        probe_join_column=plan.join_predicate.column_for(plan.probe_table),
        build_label=plan.build_table,
        probe_label=plan.probe_table,
        bitvector=bitvector,
    )


def _build_merge(plan: MergeJoinPlan, state: _Instrumentation) -> Operator:
    matches = state.join_requests_for(plan.inner_table, plan.join_predicate)
    outer_side_requests = state.join_requests_for(
        plan.outer_table, plan.join_predicate
    )
    for rid, _request in outer_side_requests:
        state.fail(
            rid,
            f"the current Merge Join consumes {plan.outer_table} as its "
            "outer; its join DPC is not obtainable from this plan",
        )
    inner_conjunction = _scan_query_conjunction(plan.inner)
    if matches and (inner_conjunction is None or plan.sort_inner):
        for rid, _request in matches:
            state.fail(
                rid,
                "bit-vector monitoring of a Merge Join needs the inner side "
                "to be an unsorted scan (a Sort on the inner breaks the "
                "page-id visibility of the scan)",
            )
        matches = []

    outer_operator = _build(plan.outer, state)
    inner_operator = _build(plan.inner, state)

    bitvector: Optional[BitVectorFilter] = None
    mode: Optional[str] = None
    if matches:
        bits = state.bitvector_bits(plan.outer_table, plan.inner_table)
        if plan.sort_outer:
            # Sort blocks: the full vector exists before the inner is read.
            bitvector = BitVectorFilter(bits, seed=state.config.seed)
            mode = "blocking"
        else:
            bitvector = PartialBitVectorFilter(bits, seed=state.config.seed)
            mode = "partial"
        inner_table = state.database.table(plan.inner_table)
        inner_column = plan.join_predicate.column_for(plan.inner_table)
        column_position = inner_table.schema.position(inner_column)
        bundle = _ensure_scan_bundle(
            state, inner_operator, plan.inner_table, len(inner_conjunction)
        )
        for rid, request in matches:
            bundle.add_bitvector_request(request, column_position, bitvector)
            state.claim(rid)

    outer_column = plan.join_predicate.column_for(plan.outer_table)
    inner_column = plan.join_predicate.column_for(plan.inner_table)
    if plan.sort_outer:
        outer_operator = Sort(outer_operator, outer_column)
    if plan.sort_inner:
        inner_operator = Sort(inner_operator, inner_column)
    return MergeJoin(
        outer=outer_operator,
        inner=inner_operator,
        outer_join_column=outer_column,
        inner_join_column=inner_column,
        outer_label=plan.outer_table,
        inner_label=plan.inner_table,
        bitvector=bitvector,
        bitvector_mode=mode,
    )
