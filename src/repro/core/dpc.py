"""Distinct page count: definitions and the exact oracle.

Section II-A of the paper defines, for a table ``T``, a page ``PID`` and a
predicate expression ``p``:

* ``Satisfies(T, PID, p)`` — true iff some tuple of ``T`` on page ``PID``
  satisfies ``p`` (``p`` may include selection and join predicates), and
* ``DPC(T, p)`` — the number of PIDs for which ``Satisfies`` holds.

This module provides those definitions *as ground truth*: the oracle scans
the table's pages directly, without I/O accounting, and computes the exact
DPC.  The execution-feedback monitors elsewhere in :mod:`repro.core` are
judged against this oracle in tests and in the accuracy ablations; the
oracle is also what the harness uses to quantify the analytical model's
estimation error.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.common.types import PageId
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction, JoinEquality
from repro.storage.table import Table


def satisfies(table: Table, page_id: PageId, predicate: Conjunction) -> bool:
    """Exact ``Satisfies(T, PID, p)`` for a selection predicate."""
    bound = BoundConjunction(predicate, table.schema.column_names)
    return any(bound.passes(row) for row in table.rows_on_page(page_id))


def exact_dpc(table: Table, predicate: Conjunction) -> int:
    """Exact ``DPC(T, p)`` for a selection predicate, by full inspection."""
    bound = BoundConjunction(predicate, table.schema.column_names)
    count = 0
    for page_id in table.all_page_ids():
        if any(bound.passes(row) for row in table.rows_on_page(page_id)):
            count += 1
    return count


def exact_join_dpc(
    inner: Table,
    outer: Table,
    join_predicate: JoinEquality,
    outer_predicate: Optional[Conjunction] = None,
) -> int:
    """Exact ``DPC(inner, join-pred)`` for an equality join.

    ``Satisfies(inner, PID, join-pred)`` holds iff some row on the page has
    a join-column value matched by a *qualifying* outer row (the outer's
    own selection predicates restrict which rows drive the INL join, per
    Example 2); selection predicates on the inner are excluded because an
    INL join evaluates them after the fetch (Section IV).
    """
    outer_column = join_predicate.column_for(outer.name)
    inner_column = join_predicate.column_for(inner.name)
    outer_position = outer.schema.position(outer_column)
    inner_position = inner.schema.position(inner_column)

    if outer_predicate is None or not len(outer_predicate):
        outer_rows: Iterable[tuple] = (
            row
            for page_id in outer.all_page_ids()
            for row in outer.rows_on_page(page_id)
        )
    else:
        bound = BoundConjunction(outer_predicate, outer.schema.column_names)
        outer_rows = (
            row
            for page_id in outer.all_page_ids()
            for row in outer.rows_on_page(page_id)
            if bound.passes(row)
        )
    outer_values = {row[outer_position] for row in outer_rows}
    outer_values.discard(None)

    count = 0
    for page_id in inner.all_page_ids():
        for row in inner.rows_on_page(page_id):
            if row[inner_position] in outer_values:
                count += 1
                break
    return count


def dpc_bounds(row_count: int, rows_per_page: float, total_pages: int) -> tuple[float, int]:
    """The LB/UB bracket of Section V-B.

    For ``n`` qualifying rows, ``k`` rows per page and ``P`` total pages:
    ``LB = n / k`` (rows maximally co-located) and ``UB = min(n, P)``
    (each row on its own page).  Any actual DPC satisfies LB <= DPC <= UB.
    """
    if rows_per_page <= 0:
        raise ValueError(f"rows_per_page must be positive, got {rows_per_page}")
    if row_count < 0 or total_pages < 0:
        raise ValueError("row_count and total_pages must be non-negative")
    lower = row_count / rows_per_page
    upper = min(row_count, total_pages)
    return lower, upper
