"""Clustering Ratio — the paper's measure of on-disk correlation (§V-B).

For a predicate satisfied by ``n`` rows of a table with ``k`` rows per
page and ``P`` pages:

* ``LB = n / k`` — fewest pages that could hold the rows,
* ``UB = min(n, P)`` — most pages they could occupy,
* ``CR = (N - LB) / (UB - LB)`` where ``N`` is the *actual* distinct page
  count, so ``CR = 0`` means fully correlated with the clustering and
  ``CR = 1`` means maximally scattered.

Fig. 10 plots CR for queries across five real databases and finds mean
0.56 with standard deviation 0.40 — the evidence that "simple analytical
formulas may be insufficient to capture the clustering effects in real
world databases".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dpc import dpc_bounds, exact_dpc
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction
from repro.storage.table import Table


@dataclass(frozen=True)
class ClusteringMeasurement:
    """CR plus all its ingredients, for one (table, predicate) pair."""

    table: str
    expression: str
    matching_rows: int
    actual_pages: int
    lower_bound: float
    upper_bound: float
    clustering_ratio: float
    selectivity: float


def clustering_ratio(
    actual_pages: float, lower_bound: float, upper_bound: float
) -> float:
    """``(N - LB) / (UB - LB)``, clamped to [0, 1].

    Degenerate brackets (``UB == LB``: the predicate pins the page count)
    return 0 — there is no clustering freedom to measure.
    """
    if upper_bound <= lower_bound:
        return 0.0
    ratio = (actual_pages - lower_bound) / (upper_bound - lower_bound)
    return min(1.0, max(0.0, ratio))


def measure_clustering(table: Table, predicate: Conjunction) -> ClusteringMeasurement:
    """Exact CR for one predicate, by direct inspection (no I/O charges)."""
    bound = BoundConjunction(predicate, table.schema.column_names)
    matching = 0
    for page_id in table.all_page_ids():
        for row in table.rows_on_page(page_id):
            if bound.passes(row):
                matching += 1
    actual = exact_dpc(table, predicate)
    rows_per_page = table.num_rows / table.num_pages if table.num_pages else 1.0
    lower, upper = dpc_bounds(matching, rows_per_page, table.num_pages)
    return ClusteringMeasurement(
        table=table.name,
        expression=predicate.key(),
        matching_rows=matching,
        actual_pages=actual,
        lower_bound=lower,
        upper_bound=upper,
        clustering_ratio=clustering_ratio(actual, lower, upper),
        selectivity=matching / table.num_rows if table.num_rows else 0.0,
    )
