"""repro — reproduction of *Diagnosing Estimation Errors in Page Counts
Using Execution Feedback* (Chaudhuri, Narasayya, Ramamurthy; ICDE 2008).

A from-scratch simulated disk-page database engine (storage, executor,
cost-based optimizer) plus the paper's contribution: low-overhead
execution-feedback mechanisms for measuring *distinct page counts* — the
cost-model parameter whose misestimation flips access-method and
join-method decisions.

Quickstart::

    from repro import Session, SingleTableQuery, AccessPathRequest
    from repro.workloads import build_synthetic_database

    db = build_synthetic_database(num_rows=50_000, seed=7)
    session = Session(db)
    # ... see examples/quickstart.py
"""

from repro.catalog import ColumnDef, Database, IndexDef, TableSchema
from repro.engine import Engine, WorkloadItem
from repro.core import (
    AccessPathRequest,
    FeedbackStore,
    JoinMethodRequest,
    MonitorConfig,
    diagnose,
    exact_dpc,
    exact_join_dpc,
    measure_clustering,
    recommend_hint,
)
from repro.lifecycle import LifecycleTrace, PlanCache, QueryLifecycle
from repro.optimizer import (
    InjectionSet,
    JoinQuery,
    Optimizer,
    PlanHint,
    SingleTableQuery,
)
from repro.session import ExecutedQuery, Session
from repro.shard import ShardCoordinator, ShardedFeedbackStore
from repro.sql import (
    Between,
    Comparison,
    Conjunction,
    JoinEquality,
    conjunction_of,
    parse_predicate,
    parse_query,
)
from repro.sql.types import SqlType

__version__ = "1.0.0"

__all__ = [
    "AccessPathRequest",
    "Between",
    "ColumnDef",
    "Comparison",
    "Conjunction",
    "Database",
    "Engine",
    "ExecutedQuery",
    "FeedbackStore",
    "IndexDef",
    "InjectionSet",
    "JoinEquality",
    "JoinMethodRequest",
    "JoinQuery",
    "LifecycleTrace",
    "MonitorConfig",
    "Optimizer",
    "PlanCache",
    "PlanHint",
    "QueryLifecycle",
    "Session",
    "ShardCoordinator",
    "ShardedFeedbackStore",
    "SingleTableQuery",
    "SqlType",
    "TableSchema",
    "WorkloadItem",
    "conjunction_of",
    "diagnose",
    "exact_dpc",
    "exact_join_dpc",
    "measure_clustering",
    "parse_predicate",
    "parse_query",
    "recommend_hint",
]
