"""Storage engine: pages, files, indexes, buffer pool and the disk model."""

from repro.storage.accounting import IOContext
from repro.storage.btree import BTreeIndex
from repro.storage.buffer import BufferPool, BufferPoolStats
from repro.storage.clustered import ClusteredFile
from repro.storage.disk import DiskParameters
from repro.storage.heap import DataFile, HeapFile
from repro.storage.page import (
    PAGE_SIZE_BYTES,
    USABLE_PAGE_BYTES,
    Page,
    rows_per_page,
)
from repro.storage.table import Table

__all__ = [
    "BTreeIndex",
    "BufferPool",
    "BufferPoolStats",
    "ClusteredFile",
    "DataFile",
    "DiskParameters",
    "HeapFile",
    "IOContext",
    "PAGE_SIZE_BYTES",
    "Page",
    "Table",
    "USABLE_PAGE_BYTES",
    "rows_per_page",
]
