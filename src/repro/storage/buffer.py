"""LRU buffer pool: shared page-residency state, per-execution accounting.

Every page access in the engine goes through :meth:`BufferPool.access`.
A *logical* read that misses the pool becomes a *physical* read and
charges the caller's :class:`~repro.storage.accounting.IOContext` — a
full random read for point accesses (Fetch, B-tree traversal) or an
amortised sequential read for scan readahead.  The paper's experiments
run with a **cold cache** ("All execution times were measured with a
cold cache which ensures that effects due to buffering are eliminated"),
which :meth:`reset` provides; within one query the pool still absorbs
repeated fetches of the same hot page, exactly the effect that makes
*distinct* page count (not fetch count) the right cost parameter.

The pool splits *state* from *accounting*: which pages are resident is
genuinely shared (and guarded by a lock, so concurrent executions can
share warmth safely), but every counter and time charge lands on the
context the caller passed in, never on a global.  An ``isolated``
context bypasses the shared frames entirely and uses its own private
frame set with the same capacity — a dedicated cold cache, which is what
lets concurrent cold-cache runs reproduce serial numbers exactly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import BufferPoolError
from repro.common.types import FileId, PageId
from repro.storage.accounting import IOContext


@dataclass
class BufferPoolStats:
    """Cumulative shared-pool counters since the last
    :meth:`BufferPool.reset_stats`.

    These describe traffic through the *shared* frame set only; isolated
    contexts keep their own counters (see
    :class:`~repro.storage.accounting.IOContext`), which is what
    per-query ``RunStats`` report.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    physical_random: int = 0
    physical_sequential: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served without a physical read.

        Defined as 0.0 when ``logical_reads`` is zero: a pool that has
        served no reads has demonstrated no warmth, so the "everything
        was cold" value is reported rather than raising or returning NaN.
        """
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads


class BufferPool:
    """Fixed-capacity LRU cache of ``(file_id, page_id)`` frames.

    The pool stores only identities, not page payloads — the pages live in
    their files; what matters for the simulation is *whether a read is
    physical* and what it costs, and the cost always lands on the caller's
    :class:`~repro.storage.accounting.IOContext`.
    """

    def __init__(self, capacity_pages: int = 8192) -> None:
        if capacity_pages <= 0:
            raise BufferPoolError(
                f"buffer pool capacity must be positive, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[tuple[FileId, PageId], None] = OrderedDict()
        self.stats = BufferPoolStats()
        self._lock = threading.Lock()

    def __contains__(self, key: tuple[FileId, PageId]) -> bool:
        return key in self._frames

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def access(
        self,
        file_id: FileId,
        page_id: PageId,
        io: IOContext,
        sequential: bool = False,
    ) -> bool:
        """Record one logical page read; returns True if it hit a frame.

        On a miss the page is faulted in: ``io`` is charged one physical
        read (sequential or random) and an LRU victim is evicted if the
        frame set is full.  Shared-frame bookkeeping happens under the
        pool lock; an ``isolated`` context uses its private frame set
        (same capacity, initially cold) and touches no shared state.
        """
        key = (file_id, page_id)
        if io.isolated:
            return self._touch(io.private_frames(), key, io, sequential)
        with self._lock:
            hit = self._touch(self._frames, key, io, sequential)
            self.stats.logical_reads += 1
            if not hit:
                self.stats.physical_reads += 1
                if sequential:
                    self.stats.physical_sequential += 1
                else:
                    self.stats.physical_random += 1
            return hit

    def _touch(
        self,
        frames: "OrderedDict[tuple[FileId, PageId], None]",
        key: tuple[FileId, PageId],
        io: IOContext,
        sequential: bool,
    ) -> bool:
        if key in frames:
            frames.move_to_end(key)
            io.record_pool_hit()
            return True
        if sequential:
            io.charge_sequential_read()
        else:
            io.charge_random_read()
        if len(frames) >= self.capacity_pages:
            frames.popitem(last=False)
            io.record_eviction()
            if frames is self._frames:
                self.stats.evictions += 1
        frames[key] = None
        return False

    def reset(self) -> None:
        """Cold-cache reset: drop all shared frames (keeps cumulative stats)."""
        with self._lock:
            self._frames.clear()

    def reset_stats(self) -> None:
        self.stats = BufferPoolStats()

    def __repr__(self) -> str:
        return (
            f"BufferPool({len(self._frames)}/{self.capacity_pages} pages, "
            f"{self.stats.logical_reads} logical / {self.stats.physical_reads} physical)"
        )
