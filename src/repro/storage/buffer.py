"""LRU buffer pool with logical/physical I/O accounting.

Every page access in the engine goes through :meth:`BufferPool.access`.
A *logical* read that misses the pool becomes a *physical* read and charges
the simulated clock — a full random read for point accesses (Fetch, B-tree
traversal) or an amortised sequential read for scan readahead.  The paper's
experiments run with a **cold cache** ("All execution times were measured
with a cold cache which ensures that effects due to buffering are
eliminated"), which :meth:`reset` provides; within one query the pool still
absorbs repeated fetches of the same hot page, exactly the effect that
makes *distinct* page count (not fetch count) the right cost parameter.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import BufferPoolError
from repro.common.types import FileId, PageId
from repro.storage.disk import SimulatedClock


@dataclass
class BufferPoolStats:
    """Cumulative counters since the last :meth:`BufferPool.reset_stats`."""

    logical_reads: int = 0
    physical_reads: int = 0
    physical_random: int = 0
    physical_sequential: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads


class BufferPool:
    """Fixed-capacity LRU cache of ``(file_id, page_id)`` frames.

    The pool stores only identities, not page payloads — the pages live in
    their files; what matters for the simulation is *whether a read is
    physical* and what it costs.
    """

    def __init__(self, clock: SimulatedClock, capacity_pages: int = 8192) -> None:
        if capacity_pages <= 0:
            raise BufferPoolError(
                f"buffer pool capacity must be positive, got {capacity_pages}"
            )
        self.clock = clock
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[tuple[FileId, PageId], None] = OrderedDict()
        self.stats = BufferPoolStats()

    def __contains__(self, key: tuple[FileId, PageId]) -> bool:
        return key in self._frames

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def access(self, file_id: FileId, page_id: PageId, sequential: bool = False) -> bool:
        """Record one logical page read; returns True if it hit the pool.

        On a miss the page is faulted in: the clock is charged one physical
        read (sequential or random) and an LRU victim is evicted if the
        pool is full.
        """
        key = (file_id, page_id)
        self.stats.logical_reads += 1
        if key in self._frames:
            self._frames.move_to_end(key)
            return True
        self.stats.physical_reads += 1
        if sequential:
            self.stats.physical_sequential += 1
            self.clock.charge_sequential_read()
        else:
            self.stats.physical_random += 1
            self.clock.charge_random_read()
        if len(self._frames) >= self.capacity_pages:
            self._frames.popitem(last=False)
            self.stats.evictions += 1
        self._frames[key] = None
        return False

    def reset(self) -> None:
        """Cold-cache reset: drop all frames (keeps cumulative stats)."""
        self._frames.clear()

    def reset_stats(self) -> None:
        self.stats = BufferPoolStats()

    def __repr__(self) -> str:
        return (
            f"BufferPool({len(self._frames)}/{self.capacity_pages} pages, "
            f"{self.stats.logical_reads} logical / {self.stats.physical_reads} physical)"
        )
