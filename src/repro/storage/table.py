"""The table facade: schema + physical layout + secondary indexes + stats.

:class:`Table` is what the executor and optimizer hold.  It wires together
a :class:`~repro.storage.heap.HeapFile` or
:class:`~repro.storage.clustered.ClusteredFile`, any number of
:class:`~repro.storage.btree.BTreeIndex` secondary indexes, and the
catalog statistics built at load time.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import CatalogError, StorageError
from repro.common.types import RID, FileId, PageId
from repro.catalog.schema import IndexDef, TablePartition, TableSchema
from repro.catalog.statistics import TableStatistics, build_statistics
from repro.storage.accounting import IOContext
from repro.storage.btree import BTreeIndex
from repro.storage.buffer import BufferPool
from repro.storage.clustered import ClusteredFile
from repro.storage.heap import DataFile, HeapFile


class Table:
    """One stored table."""

    def __init__(
        self,
        schema: TableSchema,
        data_file: DataFile,
        clustered_index: Optional[IndexDef] = None,
    ) -> None:
        self.schema = schema
        self.data_file = data_file
        self.clustered_index = clustered_index
        self.indexes: dict[str, BTreeIndex] = {}
        self.statistics: Optional[TableStatistics] = None
        #: Set by :func:`repro.shard.partition.partition_database` on the
        #: shard-local copies; ``None`` on an unsharded table.
        self.partition: Optional[TablePartition] = None
        self._rids: list[RID] = []
        self._loaded = False
        self._stats_version = 0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.schema.table_name

    @property
    def num_pages(self) -> int:
        return self.data_file.num_pages

    @property
    def num_rows(self) -> int:
        return self.data_file.num_rows

    @property
    def is_clustered(self) -> bool:
        return isinstance(self.data_file, ClusteredFile)

    @property
    def buffer_pool(self) -> BufferPool:
        return self.data_file.buffer_pool

    def require_statistics(self) -> TableStatistics:
        if self.statistics is None:
            raise CatalogError(f"table {self.name}: statistics were never built")
        return self.statistics

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def bulk_load(self, rows: Sequence[Sequence[Any]]) -> None:
        """Load all rows (validating against the schema) exactly once."""
        if self._loaded:
            raise StorageError(f"table {self.name} was already loaded")
        validated = [self.schema.validate_row(row) for row in rows]
        if isinstance(self.data_file, ClusteredFile):
            self.data_file.bulk_load(validated)
            self._rids = [
                RID(page_id, slot)
                for page_id, slot, _ in _silent_scan(self.data_file)
            ]
        else:
            self._rids = self.data_file.bulk_append(iter(validated))
        self._loaded = True

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> list[RID]:
        """Append rows after the initial load (heap tables only).

        Secondary indexes are maintained incrementally; **statistics are
        not** — they go stale exactly as in a real engine, and
        :attr:`statistics_stale` flags it so callers (and the staleness
        bench) can decide when to rebuild.  Clustered tables reject
        appends: keeping rows physically key-ordered would require page
        splits, which this simulation's contiguous-run clustered layout
        deliberately does not model (see DESIGN.md).
        """
        if not self._loaded:
            raise StorageError(f"table {self.name}: bulk_load before append_rows")
        if isinstance(self.data_file, ClusteredFile):
            raise StorageError(
                f"table {self.name} is clustered; appends would violate the "
                "contiguous key-order layout (heap tables support appends)"
            )
        appended: list[RID] = []
        for row in rows:
            validated = self.schema.validate_row(row)
            rid = self.data_file.append_row(validated)
            appended.append(rid)
            self._rids.append(rid)
            for index in self.indexes.values():
                index.insert(rid, validated)
        if appended:
            self._stats_dirty = True
        return appended

    @property
    def statistics_stale(self) -> bool:
        """Whether rows were appended since statistics were last built."""
        return getattr(self, "_stats_dirty", False)

    @property
    def statistics_version(self) -> int:
        """Monotone counter bumped by every statistics (re)build.

        Plan-cache entries record the versions of the tables they touch,
        so a rebuild — typically after appends — invalidates every plan
        costed against the old row/page counts and histograms.
        """
        return self._stats_version

    def create_index(self, definition: IndexDef, file_id: FileId) -> BTreeIndex:
        """Build a secondary index over the loaded rows."""
        if not self._loaded:
            raise StorageError(
                f"table {self.name}: load rows before building index "
                f"{definition.name}"
            )
        if definition.name in self.indexes:
            raise CatalogError(
                f"table {self.name}: index {definition.name} already exists"
            )
        if definition.table_name != self.name:
            raise CatalogError(
                f"index {definition.name} is declared on {definition.table_name}, "
                f"not {self.name}"
            )
        index = BTreeIndex(definition, self.schema, file_id, self.buffer_pool)
        index.build(self._iter_rows_with_rids())
        self.indexes[definition.name] = index
        return index

    def build_table_statistics(self, num_buckets: int = 64) -> TableStatistics:
        """Full-scan statistics: row/page counts and per-column histograms."""
        if not self._loaded:
            raise StorageError(f"table {self.name}: load rows before statistics")
        rows = [row for _, _, row in _silent_scan(self.data_file)]
        self.statistics = build_statistics(
            table_name=self.name,
            rows=rows,
            column_names=list(self.schema.column_names),
            page_count=self.num_pages,
            num_buckets=num_buckets,
        )
        self._stats_dirty = False
        self._stats_version += 1
        return self.statistics

    def _iter_rows_with_rids(self) -> Iterator[tuple[RID, tuple]]:
        for page_id, slot, row in _silent_scan(self.data_file):
            yield RID(page_id, slot), row

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def index(self, name: str) -> BTreeIndex:
        try:
            return self.indexes[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name} has no index {name!r}; "
                f"available: {sorted(self.indexes)}"
            ) from None

    def indexes_on_column(self, column: str) -> list[BTreeIndex]:
        """Indexes whose *leading* key column is ``column``."""
        return [
            idx
            for idx in self.indexes.values()
            if idx.definition.leading_column == column
        ]

    def fetch(self, io: IOContext, rid: RID) -> tuple[PageId, tuple]:
        """Random-access row fetch (the Fetch operator's storage call)."""
        return self.data_file.fetch(io, rid)

    def scan_rows(self, io: IOContext) -> Iterator[tuple[PageId, int, tuple]]:
        """Full sequential scan in grouped page order (charges ``io``)."""
        return self.data_file.scan_rows(io)

    def clustered_file(self) -> ClusteredFile:
        if not isinstance(self.data_file, ClusteredFile):
            raise StorageError(f"table {self.name} is a heap, not clustered")
        return self.data_file

    def all_page_ids(self) -> list[PageId]:
        """Every page id of the table (no I/O charge; used by oracles)."""
        return [PageId(i) for i in range(self.data_file.num_pages)]

    def rows_on_page(self, page_id: PageId) -> list[tuple]:
        """Rows of one page without I/O accounting (oracle/test helper)."""
        return list(self.data_file.page(page_id).rows())

    def __repr__(self) -> str:
        layout = self.data_file.layout_name
        return (
            f"Table({self.name}: {self.num_rows} rows, {self.num_pages} pages, "
            f"{layout}, indexes={sorted(self.indexes)})"
        )


def _silent_scan(data_file: DataFile) -> Iterator[tuple[PageId, int, tuple]]:
    """Scan without buffer-pool/IOContext accounting (load-time operations)."""
    for page_index in range(data_file.num_pages):
        page = data_file.page(PageId(page_index))
        for slot, row in enumerate(page.rows()):
            yield page.page_id, slot, row
