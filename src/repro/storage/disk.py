"""Simulated disk and CPU cost model parameters.

The paper measures wall-clock execution times on SQL Server with a cold
cache.  Our substitute is a deterministic simulated time model: every
physical page read costs a seek-dominated *random* read time or an
amortised *sequential* read time, and CPU work (row processing, predicate
term evaluation, hashing for monitors and joins) costs small
per-operation charges.  SpeedUp and monitoring overhead in the paper are
time *ratios*, which this model reproduces; the default parameters follow
mid-2000s commodity disks (~5 ms random read, ~100 MB/s sequential, i.e.
~0.08 ms per 8 KB page) and a CPU that evaluates a few million simple
predicates per second.

The monitoring-specific charges (``cpu_hash_ms``, ``cpu_bitvector_probe_ms``)
are what make Figs. 7 and 9 measurable: monitoring adds hashes and extra
predicate evaluations, never extra I/O, so its cost shows up purely as CPU
time against the query's I/O+CPU total.

This module defines only the immutable *rates*.  The mutable *counters*
live in per-execution :class:`~repro.storage.accounting.IOContext`
objects — there is deliberately no global clock and no snapshot/delta
protocol; see ``accounting.py`` for the ownership story.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskParameters:
    """Tunable constants of the simulated time model (milliseconds)."""

    random_read_ms: float = 1.0
    sequential_read_ms: float = 0.08
    cpu_row_ms: float = 0.0005
    cpu_predicate_ms: float = 0.0002
    cpu_hash_ms: float = 0.0004
    cpu_bitvector_probe_ms: float = 0.0001
    cpu_index_entry_ms: float = 0.0002
    #: Root-to-leaf B-tree traversal (non-leaf levels cached -> pure CPU);
    #: charged once per seek.  Dominates INL join CPU, which is what pushes
    #: the hash-vs-INL crossover below the scan-vs-seek crossover (Fig. 8).
    cpu_index_descent_ms: float = 0.02
    #: Per-row bookkeeping of an attached scan monitor (the "single
    #: comparison for each row" of §III-B); keeps scan-plan monitoring
    #: overhead small but visible, as in Fig. 7.
    cpu_monitor_check_ms: float = 0.00001

    def __post_init__(self) -> None:
        for name in (
            "random_read_ms",
            "sequential_read_ms",
            "cpu_row_ms",
            "cpu_predicate_ms",
            "cpu_hash_ms",
            "cpu_bitvector_probe_ms",
            "cpu_index_entry_ms",
            "cpu_index_descent_ms",
            "cpu_monitor_check_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
