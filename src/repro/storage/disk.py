"""Simulated disk and CPU cost model.

The paper measures wall-clock execution times on SQL Server with a cold
cache.  Our substitute is a deterministic simulated clock: every physical
page read advances the clock by a seek-dominated *random* read time or an
amortised *sequential* read time, and CPU work (row processing, predicate
term evaluation, hashing for monitors and joins) advances it by small
per-operation charges.  SpeedUp and monitoring overhead in the paper are
time *ratios*, which this model reproduces; the default parameters follow
mid-2000s commodity disks (~5 ms random read, ~100 MB/s sequential, i.e.
~0.08 ms per 8 KB page) and a CPU that evaluates a few million simple
predicates per second.

The monitoring-specific charges (``cpu_hash_ms``, ``cpu_bitvector_probe_ms``)
are what make Figs. 7 and 9 measurable: monitoring adds hashes and extra
predicate evaluations, never extra I/O, so its cost shows up purely as CPU
time against the query's I/O+CPU total.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DiskParameters:
    """Tunable constants of the simulated time model (milliseconds)."""

    random_read_ms: float = 1.0
    sequential_read_ms: float = 0.08
    cpu_row_ms: float = 0.0005
    cpu_predicate_ms: float = 0.0002
    cpu_hash_ms: float = 0.0004
    cpu_bitvector_probe_ms: float = 0.0001
    cpu_index_entry_ms: float = 0.0002
    #: Root-to-leaf B-tree traversal (non-leaf levels cached -> pure CPU);
    #: charged once per seek.  Dominates INL join CPU, which is what pushes
    #: the hash-vs-INL crossover below the scan-vs-seek crossover (Fig. 8).
    cpu_index_descent_ms: float = 0.02
    #: Per-row bookkeeping of an attached scan monitor (the "single
    #: comparison for each row" of §III-B); keeps scan-plan monitoring
    #: overhead small but visible, as in Fig. 7.
    cpu_monitor_check_ms: float = 0.00001

    def __post_init__(self) -> None:
        for name in (
            "random_read_ms",
            "sequential_read_ms",
            "cpu_row_ms",
            "cpu_predicate_ms",
            "cpu_hash_ms",
            "cpu_bitvector_probe_ms",
            "cpu_index_entry_ms",
            "cpu_index_descent_ms",
            "cpu_monitor_check_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class SimulatedClock:
    """Accumulates simulated elapsed time, split into I/O and CPU parts."""

    params: DiskParameters = field(default_factory=DiskParameters)
    io_ms: float = 0.0
    cpu_ms: float = 0.0
    random_reads: int = 0
    sequential_reads: int = 0

    @property
    def now_ms(self) -> float:
        """Total simulated elapsed time."""
        return self.io_ms + self.cpu_ms

    # -- I/O charges ----------------------------------------------------
    def charge_random_read(self, pages: int = 1) -> None:
        self.io_ms += self.params.random_read_ms * pages
        self.random_reads += pages

    def charge_sequential_read(self, pages: int = 1) -> None:
        self.io_ms += self.params.sequential_read_ms * pages
        self.sequential_reads += pages

    # -- CPU charges ------------------------------------------------------
    def charge_rows(self, rows: int = 1) -> None:
        self.cpu_ms += self.params.cpu_row_ms * rows

    def charge_predicates(self, evaluations: int = 1) -> None:
        self.cpu_ms += self.params.cpu_predicate_ms * evaluations

    def charge_hashes(self, hashes: int = 1) -> None:
        self.cpu_ms += self.params.cpu_hash_ms * hashes

    def charge_bitvector_probes(self, probes: int = 1) -> None:
        self.cpu_ms += self.params.cpu_bitvector_probe_ms * probes

    def charge_index_entries(self, entries: int = 1) -> None:
        self.cpu_ms += self.params.cpu_index_entry_ms * entries

    def charge_index_descent(self, descents: int = 1) -> None:
        self.cpu_ms += self.params.cpu_index_descent_ms * descents

    def charge_monitor_checks(self, checks: int = 1) -> None:
        self.cpu_ms += self.params.cpu_monitor_check_ms * checks

    def snapshot(self) -> "ClockSnapshot":
        return ClockSnapshot(
            io_ms=self.io_ms,
            cpu_ms=self.cpu_ms,
            random_reads=self.random_reads,
            sequential_reads=self.sequential_reads,
        )

    def reset(self) -> None:
        self.io_ms = 0.0
        self.cpu_ms = 0.0
        self.random_reads = 0
        self.sequential_reads = 0


@dataclass(frozen=True)
class ClockSnapshot:
    """Immutable copy of the clock counters, for before/after deltas."""

    io_ms: float
    cpu_ms: float
    random_reads: int
    sequential_reads: int

    @property
    def total_ms(self) -> float:
        return self.io_ms + self.cpu_ms

    def delta(self, later: "ClockSnapshot") -> "ClockSnapshot":
        """Counters accumulated between this snapshot and ``later``."""
        return ClockSnapshot(
            io_ms=later.io_ms - self.io_ms,
            cpu_ms=later.cpu_ms - self.cpu_ms,
            random_reads=later.random_reads - self.random_reads,
            sequential_reads=later.sequential_reads - self.sequential_reads,
        )
