"""Per-execution I/O and CPU accounting contexts.

The paper measures each query's execution time and page counts in
isolation (cold cache, one query at a time).  Early versions of this
engine mirrored that literally: a single global ``SimulatedClock`` hung
off the database, and ``executor.execute`` diffed before/after snapshots
of it.  That protocol made per-query numbers *deltas of shared mutable
state*, so two in-flight queries corrupted each other's ``RunStats`` and
concurrent sessions were structurally impossible.

:class:`IOContext` replaces the global clock.  It is a private
accumulator owned by one execution: every layer that performs simulated
work — the buffer pool faulting a page, an operator hashing a join key, a
monitor checking a row — charges the context it was handed instead of a
global singleton.  ``RunStats`` are then read *directly* off the
context, making per-query attribution exact by construction rather than
by snapshot arithmetic.

Charge rates come from the same :class:`~repro.storage.disk.DiskParameters`
as before; the time model itself is unchanged (see ``disk.py`` for its
calibration).  What changed is ownership: parameters are shared and
immutable, counters are per-execution and private.

Buffer-pool interaction
-----------------------
The shared :class:`~repro.storage.buffer.BufferPool` keeps the *state*
(which pages are resident) but no longer keeps a clock; ``access()``
takes the caller's context and charges it.  A context created with
``isolated=True`` additionally carries its own private frame set, so the
execution sees a dedicated cold cache regardless of what other threads
are doing — this is what makes N interleaved queries produce physical
read counts identical to N serial cold-cache runs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.storage.disk import DiskParameters

if TYPE_CHECKING:
    from repro.common.types import FileId, PageId


@dataclass
class IOContext:
    """Accounting for one execution: time charges and read attribution.

    One context belongs to exactly one execution (one ``execute()`` call,
    one benchmark probe, one DPSample overhead measurement); create a
    fresh one per run rather than reusing, so counters start at zero.
    Contexts are not thread-safe and never need to be — that is the whole
    point: nothing outside the owning execution ever touches one.
    """

    params: DiskParameters = field(default_factory=DiskParameters)
    #: With ``isolated=True`` the context carries a private buffer-frame
    #: set (starting cold) instead of sharing the pool's frames — required
    #: for concurrent executions whose accounting must be interference-free.
    isolated: bool = False

    io_ms: float = 0.0
    cpu_ms: float = 0.0
    random_reads: int = 0
    sequential_reads: int = 0
    pool_hits: int = 0
    evictions: int = 0

    _frames: Optional["OrderedDict[tuple[FileId, PageId], None]"] = field(
        default=None, repr=False, compare=False
    )

    # -- derived views --------------------------------------------------
    @property
    def elapsed_ms(self) -> float:
        """Total simulated time this execution accumulated."""
        return self.io_ms + self.cpu_ms

    @property
    def physical_reads(self) -> int:
        return self.random_reads + self.sequential_reads

    @property
    def logical_reads(self) -> int:
        """Every buffer-pool access this execution made (hit or miss)."""
        return self.pool_hits + self.physical_reads

    @property
    def warm_ratio(self) -> float:
        """Fraction of this execution's logical reads served from the
        buffer pool.  Defined as 0.0 when no logical reads happened (a
        context that never touched a page was trivially all-cold)."""
        if self.logical_reads == 0:
            return 0.0
        return self.pool_hits / self.logical_reads

    # -- buffer-pool hooks (called by repro.storage.buffer) -------------
    def private_frames(self) -> "OrderedDict[tuple[FileId, PageId], None]":
        """The isolated context's own frame set, created lazily."""
        if self._frames is None:
            self._frames = OrderedDict()
        return self._frames

    def record_pool_hit(self) -> None:
        self.pool_hits += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    # -- I/O charges ----------------------------------------------------
    def charge_random_read(self, pages: int = 1) -> None:
        self.io_ms += self.params.random_read_ms * pages
        self.random_reads += pages

    def charge_sequential_read(self, pages: int = 1) -> None:
        self.io_ms += self.params.sequential_read_ms * pages
        self.sequential_reads += pages

    # -- CPU charges ----------------------------------------------------
    def charge_rows(self, rows: int = 1) -> None:
        self.cpu_ms += self.params.cpu_row_ms * rows

    def charge_predicates(self, evaluations: int = 1) -> None:
        self.cpu_ms += self.params.cpu_predicate_ms * evaluations

    def charge_hashes(self, hashes: int = 1) -> None:
        self.cpu_ms += self.params.cpu_hash_ms * hashes

    def charge_bitvector_probes(self, probes: int = 1) -> None:
        self.cpu_ms += self.params.cpu_bitvector_probe_ms * probes

    def charge_index_entries(self, entries: int = 1) -> None:
        self.cpu_ms += self.params.cpu_index_entry_ms * entries

    def charge_index_descent(self, descents: int = 1) -> None:
        self.cpu_ms += self.params.cpu_index_descent_ms * descents

    def charge_monitor_checks(self, checks: int = 1) -> None:
        self.cpu_ms += self.params.cpu_monitor_check_ms * checks

    def __repr__(self) -> str:
        mode = "isolated" if self.isolated else "shared"
        return (
            f"IOContext({mode}, {self.elapsed_ms:.3f} ms, "
            f"{self.physical_reads} physical / {self.logical_reads} logical)"
        )
