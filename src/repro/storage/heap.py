"""Heap files: unordered pages of rows.

:class:`DataFile` is the shared base for the two physical table layouts
(heap and clustered); it owns the page array, bulk append and RID fetch.
All *reads* are routed through the buffer pool, which charges the
caller's :class:`~repro.storage.accounting.IOContext`.  Scans read pages
in allocation order with sequential I/O charges (readahead); RID fetches
are random reads — this asymmetry is the entire economics of the paper's
Index Seek vs. Table Scan decision.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import StorageError
from repro.common.types import RID, FileId, PageId
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.page import Page, rows_per_page


class DataFile:
    """A sequence of pages holding full rows of one table."""

    def __init__(
        self,
        file_id: FileId,
        row_width_bytes: int,
        buffer_pool: BufferPool,
        fill_factor: float = 1.0,
    ) -> None:
        if not 0.0 < fill_factor <= 1.0:
            raise StorageError(f"fill_factor must be in (0, 1], got {fill_factor}")
        self.file_id = file_id
        self.buffer_pool = buffer_pool
        full_capacity = rows_per_page(row_width_bytes)
        self.page_capacity = max(1, int(full_capacity * fill_factor))
        self._pages: list[Page] = []

    # ------------------------------------------------------------------
    # Load path (no I/O charges: loading happens "offline")
    # ------------------------------------------------------------------
    def append_row(self, row: Sequence[Any]) -> RID:
        """Append one row, opening a new page when the last one is full."""
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(PageId(len(self._pages)), self.page_capacity))
        page = self._pages[-1]
        slot = page.append(row)
        return RID(page.page_id, slot)

    def bulk_append(self, rows: Iterator[Sequence[Any]]) -> list[RID]:
        """Append many rows; returns their RIDs in insertion order."""
        return [self.append_row(row) for row in rows]

    # ------------------------------------------------------------------
    # Read path (charges the caller's IOContext via the buffer pool)
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self._pages)

    def page(self, page_id: PageId) -> Page:
        """Direct page access *without* I/O accounting (internal/tests)."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(
                f"file {int(self.file_id)}: page {int(page_id)} out of range "
                f"(file has {len(self._pages)} pages)"
            )
        return self._pages[page_id]

    def fetch(self, io: IOContext, rid: RID) -> tuple[PageId, tuple]:
        """Random-access read of one row by RID.

        Returns ``(page_id, row)`` — the page id is what the paper's
        Fetch-side monitors consume.  Charges ``io`` a random physical
        read if the page is not buffered.
        """
        page = self.page(rid.page_id)
        self.buffer_pool.access(self.file_id, rid.page_id, io, sequential=False)
        return rid.page_id, page.get(rid.slot)

    def scan_pages(
        self, io: IOContext, start_page: int = 0, end_page: Optional[int] = None
    ) -> Iterator[tuple[PageId, Page]]:
        """Iterate pages in allocation order, charging ``io`` sequential reads.

        ``start_page``/``end_page`` bound the scan (used by clustered range
        seeks); ``end_page`` is exclusive and defaults to the file end.
        """
        stop = len(self._pages) if end_page is None else min(end_page, len(self._pages))
        for page_id in range(start_page, stop):
            page = self._pages[page_id]
            self.buffer_pool.access(self.file_id, page.page_id, io, sequential=True)
            yield page.page_id, page

    def scan_rows(self, io: IOContext) -> Iterator[tuple[PageId, int, tuple]]:
        """Full scan yielding ``(page_id, slot, row)`` in grouped page order.

        This ordering is the *grouped page access* property of Section III:
        once the iterator moves past a page, that page never reappears.
        """
        for page_id, page in self.scan_pages(io):
            for slot, row in enumerate(page.rows()):
                yield page_id, slot, row


class HeapFile(DataFile):
    """An unordered table: rows live wherever insertion placed them."""

    layout_name = "heap"
