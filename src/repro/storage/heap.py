"""Heap files: unordered pages of rows.

:class:`DataFile` is the shared base for the two physical table layouts
(heap and clustered); it owns the page array, bulk append and RID fetch.
All *reads* are routed through the buffer pool, which charges the
caller's :class:`~repro.storage.accounting.IOContext`.  Scans read pages
in allocation order with sequential I/O charges (readahead); RID fetches
are random reads — this asymmetry is the entire economics of the paper's
Index Seek vs. Table Scan decision.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import StorageError
from repro.common.types import RID, FileId, PageId
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.page import Page, rows_per_page


class FileColumns:
    """Lazily materialized file-level column vectors over a page list.

    Columnar scans used to transpose (and cache) each 73-row page
    separately, which meant one NumPy kernel dispatch per page — too
    little work to amortize the call overhead.  This cache instead holds
    one file-wide vector per *touched* column (predicates on two columns
    materialize two vectors, never the whole table) plus the running
    page-row offsets, and hands out zero-copy
    :class:`~repro.exec.vector.SlicedColumns` views for any contiguous
    page run.  Validity is checked by :meth:`DataFile.file_columns`
    against the append-only row count and the active vector backend.
    """

    __slots__ = ("backend", "num_rows", "_pages", "_offsets", "_columns")

    def __init__(self, pages: list[Page], backend: str) -> None:
        self.backend = backend
        offsets = [0]
        for page in pages:
            offsets.append(offsets[-1] + page.num_rows)
        self._pages = pages
        self._offsets = offsets
        self.num_rows = offsets[-1]
        width = len(pages[0].rows_list()[0]) if self.num_rows else 0
        self._columns: list = [None] * width

    def __len__(self) -> int:
        return len(self._columns)

    def __getitem__(self, position: int):
        column = self._columns[position]
        if column is None:
            # Imported lazily: storage must stay importable without
            # touching the exec package (which imports storage back).
            from repro.exec import vector

            values = [
                row[position] for page in self._pages for row in page.rows_list()
            ]
            column = vector.make_scan_column(values)
            self._columns[position] = column
        return column

    def page_offset(self, page_id: int) -> int:
        """Row offset of ``page_id``'s first row within the file."""
        return self._offsets[page_id]

    def page_slice(self, page_id: int) -> "Any":
        """One page's rows as a zero-copy columns view."""
        return self.slice_rows(self._offsets[page_id], self._offsets[page_id + 1])

    def slice_rows(self, start: int, stop: int) -> "Any":
        """An arbitrary contiguous row range as a zero-copy columns view."""
        from repro.exec import vector

        return vector.SlicedColumns(self, start, stop)


class DataFile:
    """A sequence of pages holding full rows of one table."""

    def __init__(
        self,
        file_id: FileId,
        row_width_bytes: int,
        buffer_pool: BufferPool,
        fill_factor: float = 1.0,
    ) -> None:
        if not 0.0 < fill_factor <= 1.0:
            raise StorageError(f"fill_factor must be in (0, 1], got {fill_factor}")
        self.file_id = file_id
        self.buffer_pool = buffer_pool
        # Kept verbatim (not re-derived from page_capacity) so shard files
        # rebuilt from a partitioned table reproduce the identical layout.
        self.fill_factor = fill_factor
        full_capacity = rows_per_page(row_width_bytes)
        self.page_capacity = max(1, int(full_capacity * fill_factor))
        self._pages: list[Page] = []
        self._file_columns: Optional[FileColumns] = None

    # ------------------------------------------------------------------
    # Load path (no I/O charges: loading happens "offline")
    # ------------------------------------------------------------------
    def append_row(self, row: Sequence[Any]) -> RID:
        """Append one row, opening a new page when the last one is full."""
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(PageId(len(self._pages)), self.page_capacity))
        page = self._pages[-1]
        slot = page.append(row)
        return RID(page.page_id, slot)

    def bulk_append(self, rows: Iterator[Sequence[Any]]) -> list[RID]:
        """Append many rows; returns their RIDs in insertion order."""
        return [self.append_row(row) for row in rows]

    # ------------------------------------------------------------------
    # Read path (charges the caller's IOContext via the buffer pool)
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self._pages)

    def page(self, page_id: PageId) -> Page:
        """Direct page access *without* I/O accounting (internal/tests)."""
        if not 0 <= page_id < len(self._pages):
            raise StorageError(
                f"file {int(self.file_id)}: page {int(page_id)} out of range "
                f"(file has {len(self._pages)} pages)"
            )
        return self._pages[page_id]

    def fetch(self, io: IOContext, rid: RID) -> tuple[PageId, tuple]:
        """Random-access read of one row by RID.

        Returns ``(page_id, row)`` — the page id is what the paper's
        Fetch-side monitors consume.  Charges ``io`` a random physical
        read if the page is not buffered.
        """
        page = self.page(rid.page_id)
        self.buffer_pool.access(self.file_id, rid.page_id, io, sequential=False)
        return rid.page_id, page.get(rid.slot)

    def scan_pages(
        self, io: IOContext, start_page: int = 0, end_page: Optional[int] = None
    ) -> Iterator[tuple[PageId, Page]]:
        """Iterate pages in allocation order, charging ``io`` sequential reads.

        ``start_page``/``end_page`` bound the scan (used by clustered range
        seeks); ``end_page`` is exclusive and defaults to the file end.
        """
        stop = len(self._pages) if end_page is None else min(end_page, len(self._pages))
        for page_id in range(start_page, stop):
            page = self._pages[page_id]
            self.buffer_pool.access(self.file_id, page.page_id, io, sequential=True)
            yield page.page_id, page

    def file_columns(self) -> FileColumns:
        """The file-level column cache, rebuilt when stale.

        Staleness is cheap to detect because files are append-only: the
        row count strictly grows under :meth:`append_row`, so ``(backend,
        num_rows)`` identifies the loaded snapshot.  The vectors
        themselves materialize lazily, per touched column.
        """
        # Imported lazily: storage must stay importable without touching
        # the exec package (which imports storage back).
        from repro.exec import vector

        cached = self._file_columns
        backend = vector.backend_name()
        if (
            cached is not None
            and cached.backend == backend
            and cached.num_rows == self.num_rows
        ):
            return cached
        cached = FileColumns(self._pages, backend)
        self._file_columns = cached
        return cached

    def scan_page_columns(
        self, io: IOContext, start_page: int = 0, end_page: Optional[int] = None
    ) -> Iterator[tuple[PageId, Any, int]]:
        """Columnar scan: ``(page_id, columns_view, num_rows)`` per page.

        Same page order and sequential I/O charging as :meth:`scan_pages`;
        the columns are zero-copy per-page views of the file-level cache
        (:meth:`file_columns`), so repeated scans of an immutable table
        pay the row->column conversion once per touched column.
        """
        columns = self.file_columns()
        for page_id, page in self.scan_pages(io, start_page, end_page):
            yield page_id, columns.page_slice(page_id), page.num_rows

    def scan_column_chunks(
        self,
        io: IOContext,
        rows_per_chunk: int,
        start_page: int = 0,
        end_page: Optional[int] = None,
    ) -> Iterator[tuple[PageId, int, Any, int]]:
        """Columnar scan in multi-page chunks:
        ``(first_page_id, page_count, columns_view, num_rows)``.

        Groups contiguous pages until a chunk reaches ``rows_per_chunk``
        rows, so one whole-vector kernel evaluation covers many simulated
        pages — the granularity at which NumPy dispatch overhead
        amortizes.  Page order and per-page sequential I/O charging are
        exactly those of :meth:`scan_pages`; only callers whose other
        accounting is additive across pages (unmonitored scans) may use
        chunks, since monitors are page-granular.
        """
        columns = self.file_columns()
        chunk_start: Optional[PageId] = None
        chunk_rows = 0
        chunk_pages = 0
        for page_id, page in self.scan_pages(io, start_page, end_page):
            if chunk_start is None:
                chunk_start = page_id
            chunk_rows += page.num_rows
            chunk_pages += 1
            if chunk_rows >= rows_per_chunk:
                offset = columns.page_offset(chunk_start)
                yield (
                    chunk_start,
                    chunk_pages,
                    columns.slice_rows(offset, offset + chunk_rows),
                    chunk_rows,
                )
                chunk_start, chunk_rows, chunk_pages = None, 0, 0
        if chunk_start is not None:
            offset = columns.page_offset(chunk_start)
            yield (
                chunk_start,
                chunk_pages,
                columns.slice_rows(offset, offset + chunk_rows),
                chunk_rows,
            )

    def scan_rows(self, io: IOContext) -> Iterator[tuple[PageId, int, tuple]]:
        """Full scan yielding ``(page_id, slot, row)`` in grouped page order.

        This ordering is the *grouped page access* property of Section III:
        once the iterator moves past a page, that page never reappears.
        """
        for page_id, page in self.scan_pages(io):
            for slot, row in enumerate(page.rows()):
                yield page_id, slot, row


class HeapFile(DataFile):
    """An unordered table: rows live wherever insertion placed them."""

    layout_name = "heap"
