"""In-memory representation of a disk page.

A :class:`Page` holds full row tuples in slot order, bounded by a capacity
derived from the simulated page geometry (8 KB pages, ~8060 usable bytes,
like SQL Server).  The engine never serialises rows to bytes — the byte
widths exist only to make rows-per-page realistic, because rows-per-page is
the quantity that links cardinality to page counts throughout the paper
(``k`` in the LB = n/k bound of Section V-B).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.common.errors import PageError
from repro.common.types import PageId

#: Simulated page size; 8192 bytes minus header, following SQL Server.
PAGE_SIZE_BYTES = 8192
USABLE_PAGE_BYTES = 8060
#: Per-row slot/record overhead (slot pointer + record header).
ROW_OVERHEAD_BYTES = 9


def rows_per_page(row_width_bytes: int) -> int:
    """How many rows of the given width fit on one page (at least 1)."""
    if row_width_bytes <= 0:
        raise PageError(f"row width must be positive, got {row_width_bytes}")
    return max(1, USABLE_PAGE_BYTES // (row_width_bytes + ROW_OVERHEAD_BYTES))


class Page:
    """A fixed-capacity container of row tuples.

    Slots are dense: slot ``i`` holds the ``i``-th row inserted.  Pages are
    append-only because the simulated tables are bulk-loaded and immutable
    (deletes/updates are out of scope for the paper's experiments, which
    load data once and measure read plans).
    """

    __slots__ = ("page_id", "capacity", "_rows")

    def __init__(self, page_id: PageId, capacity: int) -> None:
        if capacity <= 0:
            raise PageError(f"page capacity must be positive, got {capacity}")
        self.page_id = page_id
        self.capacity = capacity
        self._rows: list[tuple] = []

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def is_full(self) -> bool:
        return len(self._rows) >= self.capacity

    def append(self, row: Sequence[Any]) -> int:
        """Append a row; returns the slot number.  Raises when full."""
        if self.is_full:
            raise PageError(
                f"page {int(self.page_id)} is full ({self.capacity} rows)"
            )
        self._rows.append(tuple(row))
        return len(self._rows) - 1

    def get(self, slot: int) -> tuple:
        """Return the row in ``slot``; raises on invalid slots."""
        if not 0 <= slot < len(self._rows):
            raise PageError(
                f"page {int(self.page_id)}: slot {slot} out of range "
                f"(page has {len(self._rows)} rows)"
            )
        return self._rows[slot]

    def rows(self) -> Iterator[tuple]:
        """Iterate rows in slot order."""
        return iter(self._rows)

    def rows_list(self) -> list[tuple]:
        """The page's rows in slot order, as a list — read-only.

        Batch scans use this to hand a whole page to the compiled kernels
        without a per-row iterator hop; callers must not mutate it.
        """
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Page({int(self.page_id)}: {len(self._rows)}/{self.capacity} rows)"
