"""Non-clustered B-tree indexes.

A :class:`BTreeIndex` maps (composite) key tuples to row locators (RIDs —
see :mod:`repro.storage.clustered` for why RIDs suffice on immutable
tables).  Leaf entries are packed into index pages sized by the key width,
so index fan-out and leaf page counts are realistic; non-leaf levels are
modelled implicitly (assumed cached, as in the Mackert–Lohman model), so a
range seek charges one random read for the first leaf and sequential reads
for subsequent leaves, plus a per-entry CPU charge.

Entries for equal keys are stored in *insertion* order, which for our bulk
loads is physical row order — this matches how SQL Server's uniquifier
tie-breaks and keeps INL fetch patterns realistic.

``included_columns`` payloads make an index covering: a covering scan can
produce those column values without touching the table (Section III-B's
"Scan of a Covering Index").
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import IndexError_
from repro.common.types import RID, FileId, PageId
from repro.catalog.schema import IndexDef, TableSchema
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.page import USABLE_PAGE_BYTES

#: Simulated per-entry overhead (slot pointer + row locator).
_ENTRY_OVERHEAD_BYTES = 9
_LOCATOR_BYTES = 8


class BTreeIndex:
    """A secondary index over one table."""

    def __init__(
        self,
        definition: IndexDef,
        schema: TableSchema,
        file_id: FileId,
        buffer_pool: BufferPool,
    ) -> None:
        self.definition = definition
        self.schema = schema
        self.file_id = file_id
        self.buffer_pool = buffer_pool
        self._key_positions = tuple(
            schema.position(col) for col in definition.key_columns
        )
        self._payload_positions = tuple(
            schema.position(col) for col in definition.included_columns
        )
        entry_width = (
            sum(schema.column(c).width_bytes for c in definition.carried_columns())
            + _LOCATOR_BYTES
            + _ENTRY_OVERHEAD_BYTES
        )
        self.entries_per_page = max(1, USABLE_PAGE_BYTES // entry_width)
        # Sorted leaf entries: (key_tuple, rid, payload_tuple).
        self._entries: list[tuple[tuple, RID, tuple]] = []
        self._keys: list[tuple] = []
        self._built = False

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def num_leaf_pages(self) -> int:
        if not self._entries:
            return 0
        return -(-len(self._entries) // self.entries_per_page)  # ceil div

    def key_of(self, row: Sequence[Any]) -> tuple:
        return tuple(row[pos] for pos in self._key_positions)

    # ------------------------------------------------------------------
    # Build path
    # ------------------------------------------------------------------
    def build(self, rows_with_rids: Iterator[tuple[RID, Sequence[Any]]]) -> None:
        """Build the index from ``(rid, row)`` pairs; callable once."""
        if self._built:
            raise IndexError_(f"index {self.name} was already built")
        entries = []
        for rid, row in rows_with_rids:
            key = self.key_of(row)
            payload = tuple(row[pos] for pos in self._payload_positions)
            entries.append((key, rid, payload))
        entries.sort(key=lambda entry: (entry[0], entry[1].page_id, entry[1].slot))
        if self.definition.unique:
            for previous, current in zip(entries, entries[1:]):
                if previous[0] == current[0]:
                    raise IndexError_(
                        f"unique index {self.name}: duplicate key {current[0]!r}"
                    )
        self._entries = entries
        self._keys = [entry[0] for entry in entries]
        self._built = True

    def insert(self, rid: RID, row: Sequence[Any]) -> None:
        """Insert one row's entry, keeping leaf order (incremental load).

        Supports append workloads on heap tables: the entry is placed at
        its sorted position (``bisect``), so seeks stay correct; leaf page
        numbers shift accordingly, matching how a real B-tree's logical
        leaf order absorbs inserts.
        """
        self._require_built()
        key = self.key_of(row)
        payload = tuple(row[pos] for pos in self._payload_positions)
        index = bisect.bisect_left(self._keys, key)
        # Advance past equal keys to keep RID tie-break order.
        while (
            index < len(self._entries)
            and self._entries[index][0] == key
            and (self._entries[index][1].page_id, self._entries[index][1].slot)
            < (rid.page_id, rid.slot)
        ):
            index += 1
        if self.definition.unique and (
            (index < len(self._keys) and self._keys[index] == key)
            or (index > 0 and self._keys[index - 1] == key)
        ):
            raise IndexError_(f"unique index {self.name}: duplicate key {key!r}")
        self._entries.insert(index, (key, rid, payload))
        self._keys.insert(index, key)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _require_built(self) -> None:
        if not self._built:
            raise IndexError_(f"index {self.name} has not been built")

    def _leaf_page_of(self, entry_index: int) -> PageId:
        return PageId(entry_index // self.entries_per_page)

    def _normalize(self, key: Any) -> tuple:
        """Accept a scalar for single-column keys; always store tuples."""
        if isinstance(key, tuple):
            return key
        return (key,)

    def seek_range(
        self,
        io: IOContext,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[tuple, RID, tuple]]:
        """Yield ``(key, rid, payload)`` for keys within the range, in key
        order, charging ``io`` index-page I/O and per-entry CPU as it goes.

        A partial (prefix) key bound on a composite index is supported by
        passing a shorter tuple; comparison semantics follow Python tuple
        ordering, which matches B-tree prefix-range behaviour for
        inclusive-low / exclusive-high prefix bounds.
        """
        self._require_built()
        # Root-to-leaf descent: non-leaf levels are assumed cached, so the
        # traversal costs CPU, charged once per seek.
        io.charge_index_descent(1)
        if low is None:
            start = 0
        else:
            low_key = self._normalize(low)
            start = (
                bisect.bisect_left(self._keys, low_key)
                if low_inclusive
                else bisect.bisect_right(self._keys, low_key)
            )
        previous_leaf: Optional[PageId] = None
        high_key = None if high is None else self._normalize(high)
        for index in range(start, len(self._entries)):
            key, rid, payload = self._entries[index]
            if high_key is not None:
                # For prefix bounds compare only the provided prefix length.
                head = key[: len(high_key)]
                if high_inclusive and head > high_key:
                    return
                if not high_inclusive and head >= high_key:
                    return
            leaf = self._leaf_page_of(index)
            if leaf != previous_leaf:
                self.buffer_pool.access(
                    self.file_id, leaf, io, sequential=previous_leaf is not None
                )
                previous_leaf = leaf
            io.charge_index_entries(1)
            yield key, rid, payload

    def seek_equal(self, io: IOContext, key: Any) -> Iterator[tuple[tuple, RID, tuple]]:
        """All entries with exactly this (possibly prefix) key."""
        normalized = self._normalize(key)
        return self.seek_range(
            io, low=normalized, high=normalized, low_inclusive=True, high_inclusive=True
        )

    def scan_all(self, io: IOContext) -> Iterator[tuple[tuple, RID, tuple]]:
        """Full leaf-order scan (the access path of a covering-index scan)."""
        return self.seek_range(io)

    def __repr__(self) -> str:
        return (
            f"BTreeIndex({self.name} on {self.definition.table_name}"
            f"({', '.join(self.definition.key_columns)}), "
            f"{len(self._entries)} entries, {self.num_leaf_pages} leaf pages)"
        )
