"""Clustered files: rows physically ordered by a clustering key.

A clustered table *is* its clustered index: rows are packed into pages in
key order, so a key-range predicate touches one contiguous run of pages.
We model the B-tree above the leaf level implicitly — range seeks locate
the first qualifying page by binary search over per-page key fences (the
engine assumption, shared with Mackert–Lohman, that non-leaf index levels
stay cached), then read leaf pages sequentially.

Bulk load sorts the rows once.  Non-unique clustering keys are allowed;
ties keep their input order (a stable sort), mirroring SQL Server's
uniquifier mechanism without materialising it — the tables are immutable
after load, so secondary indexes can carry physical RIDs directly (the
page-access pattern, which is what the paper's monitors observe, is
identical to chasing clustering keys).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.common.errors import StorageError
from repro.common.types import RID, FileId, PageId
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.heap import DataFile


class ClusteredFile(DataFile):
    """A table stored in clustering-key order."""

    layout_name = "clustered"

    def __init__(
        self,
        file_id: FileId,
        row_width_bytes: int,
        buffer_pool: BufferPool,
        key_positions: Sequence[int],
        fill_factor: float = 1.0,
    ) -> None:
        super().__init__(file_id, row_width_bytes, buffer_pool, fill_factor)
        if not key_positions:
            raise StorageError("clustered file needs at least one key column")
        self.key_positions = tuple(key_positions)
        self._loaded = False
        # Per-page fences: highest key on each page, for leaf binary search.
        self._page_high_keys: list[tuple] = []
        self._page_low_keys: list[tuple] = []

    def key_of(self, row: Sequence[Any]) -> tuple:
        """The clustering-key tuple of a row."""
        return tuple(row[pos] for pos in self.key_positions)

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def bulk_load(self, rows: Sequence[Sequence[Any]]) -> None:
        """Sort ``rows`` by the clustering key and pack them into pages.

        May be called exactly once; the file is immutable afterwards.
        """
        if self._loaded:
            raise StorageError(
                f"clustered file {int(self.file_id)} was already bulk-loaded"
            )
        ordered = sorted(rows, key=self.key_of)  # stable: ties keep input order
        for row in ordered:
            self.append_row(row)
        self._page_low_keys = [
            self.key_of(page.get(0)) for page in self._pages if page.num_rows
        ]
        self._page_high_keys = [
            self.key_of(page.get(page.num_rows - 1))
            for page in self._pages
            if page.num_rows
        ]
        self._loaded = True

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _require_loaded(self) -> None:
        if not self._loaded:
            raise StorageError(
                f"clustered file {int(self.file_id)} has not been bulk-loaded yet"
            )

    def first_page_with_key_ge(self, key: tuple) -> int:
        """Index of the first page whose highest key is >= ``key``."""
        self._require_loaded()
        return bisect.bisect_left(self._page_high_keys, key)

    def first_page_with_key_gt(self, key: tuple) -> int:
        """Index of the first page whose highest key is > ``key``."""
        self._require_loaded()
        return bisect.bisect_right(self._page_high_keys, key)

    def seek_range(
        self,
        io: IOContext,
        low: Optional[tuple],
        high: Optional[tuple],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[PageId, int, tuple]]:
        """Yield ``(page_id, slot, row)`` for rows with key in the range.

        ``None`` bounds are open.  Pages are read sequentially starting at
        the first qualifying page; the scan stops at the first row past the
        upper bound (grouped page access holds within the range).
        """
        self._require_loaded()
        start = 0
        if low is not None:
            start = (
                self.first_page_with_key_ge(low)
                if low_inclusive
                else self.first_page_with_key_gt(low)
            )
        for page_id, page in self.scan_pages(io, start_page=start):
            for slot, row in enumerate(page.rows()):
                key = self.key_of(row)
                if low is not None:
                    if low_inclusive and key < low:
                        continue
                    if not low_inclusive and key <= low:
                        continue
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                yield page_id, slot, row

    def seek_range_pages(
        self,
        io: IOContext,
        low: Optional[tuple],
        high: Optional[tuple],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[PageId, list[tuple]]]:
        """Page-at-a-time form of :meth:`seek_range`: ``(page_id, rows)``.

        Yields exactly the pages (and rows, in order) that grouping
        :meth:`seek_range`'s output by page would produce: pages the scan
        reads but that hold no in-range row are charged yet not yielded,
        and the scan stops at the first row past the upper bound (the
        partial page's in-range rows are still yielded first).  Keeping
        the page sequence identical keeps the monitor's Bernoulli sampler
        and ``pages_touched`` identical between the two execution modes.
        """
        self._require_loaded()
        start = 0
        if low is not None:
            start = (
                self.first_page_with_key_ge(low)
                if low_inclusive
                else self.first_page_with_key_gt(low)
            )
        key_of = self.key_of
        for page_id, page in self.scan_pages(io, start_page=start):
            matched: list[tuple] = []
            for row in page.rows_list():
                key = key_of(row)
                if low is not None:
                    if low_inclusive:
                        if key < low:
                            continue
                    elif key <= low:
                        continue
                if high is not None:
                    if high_inclusive:
                        if key > high:
                            if matched:
                                yield page_id, matched
                            return
                    elif key >= high:
                        if matched:
                            yield page_id, matched
                        return
                matched.append(row)
            if matched:
                yield page_id, matched

    def seek_range_columns(
        self,
        io: IOContext,
        low: Optional[tuple],
        high: Optional[tuple],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[PageId, Any, int]]:
        """Columnar form of :meth:`seek_range_pages`: ``(page_id, columns, n)``.

        Page charging, page order, and the stop-at-first-row-past-high
        behaviour are identical to :meth:`seek_range_pages`.  Interior
        pages (fence keys entirely inside the range — the common case)
        hand out zero-copy views of the file-level column cache; only the
        at-most-two boundary pages inspect row keys to find the in-range
        slice, which is contiguous because rows are packed in key order.
        """
        self._require_loaded()

        def below_low(key: tuple) -> bool:
            if low is None:
                return False
            return key < low if low_inclusive else key <= low

        def past_high(key: tuple) -> bool:
            if high is None:
                return False
            return key > high if high_inclusive else key >= high

        start = 0
        if low is not None:
            start = (
                self.first_page_with_key_ge(low)
                if low_inclusive
                else self.first_page_with_key_gt(low)
            )
        columns = self.file_columns()
        key_of = self.key_of
        for page_id, page in self.scan_pages(io, start_page=start):
            num_rows = page.num_rows
            if not past_high(self._page_high_keys[page_id]):
                if not below_low(self._page_low_keys[page_id]):
                    # Whole page in range: zero-copy hand-off.
                    yield page_id, columns.page_slice(page_id), num_rows
                    continue
                stop_slot = num_rows
                hit_high = False
            else:
                stop_slot = None  # type: ignore[assignment]
                hit_high = True
            rows = page.rows_list()
            start_slot = 0
            while start_slot < num_rows and below_low(key_of(rows[start_slot])):
                start_slot += 1
            if stop_slot is None:
                stop_slot = start_slot
                while stop_slot < num_rows and not past_high(key_of(rows[stop_slot])):
                    stop_slot += 1
            if stop_slot > start_slot:
                offset = columns.page_offset(page_id)
                yield (
                    page_id,
                    columns.slice_rows(offset + start_slot, offset + stop_slot),
                    stop_slot - start_slot,
                )
            if hit_high:
                return

    def fetch_by_key(self, io: IOContext, key: tuple) -> Iterator[tuple[PageId, tuple]]:
        """Random-access fetch of all rows with the exact clustering key.

        Charges a random read for the first page of the run and sequential
        reads for continuation pages (key runs spanning pages are read in
        order).  Used by INL joins whose inner index *is* the clustered key.
        """
        self._require_loaded()
        io.charge_index_descent(1)
        start = self.first_page_with_key_ge(key)
        first_read = True
        for page_index in range(start, len(self._pages)):
            if self._page_low_keys[page_index] > key:
                return
            page = self._pages[page_index]
            # The page's key range straddles ``key``: it must be read.
            self.buffer_pool.access(
                self.file_id, page.page_id, io, sequential=not first_read
            )
            first_read = False
            for row in page.rows():
                row_key = self.key_of(row)
                if row_key < key:
                    continue
                if row_key > key:
                    return
                yield page.page_id, row
