"""Permutation families with controlled disk-clustering correlation.

The paper's synthetic table T has columns C2..C5 that are "different
permutations of the values in column C1", spanning fully correlated (C2 =
C1) to uncorrelated (C5 = random shuffle) "with the intermediate columns
representing other data points in between" (§V-B.1).

We realise the intermediate points with **noisy permutations**: start from
the identity and relocate a fraction ``noise`` of the values to uniformly
random positions.  For a prefix predicate ``C < n`` over a table clustered
by C1 with ``k`` rows per page, the distinct page count is then
approximately::

    DPC ≈ (1 - noise) * n/k  +  P * (1 - exp(-noise * n / P))

i.e. the correlated mass stays in ``n/k`` contiguous pages while each
noisy row lands on its own page until saturation — giving a DPC-vs-
selectivity slope of roughly ``1 + (k-1)*noise`` in page units.  Noise 0
reproduces C2, noise 1 reproduces C5.

:func:`block_permutation` provides a second family (contiguous value
blocks in shuffled order — "data loaded one vendor at a time"), used by
the real-world dataset analogues to diversify clustering ratios.
"""

from __future__ import annotations

try:  # Synthetic data generation needs NumPy; the engine itself
    import numpy as np  # does not (see repro.exec.vector).
except ImportError:  # pragma: no cover - no-NumPy installs
    np = None  # type: ignore[assignment]

from repro.common.errors import WorkloadError
from repro.common.rng import make_numpy_rng


def identity_permutation(size: int) -> np.ndarray:
    """``perm[i] = i`` — the fully correlated column (C2)."""
    if size <= 0:
        raise WorkloadError(f"permutation size must be positive, got {size}")
    return np.arange(size, dtype=np.int64)


def noisy_permutation(size: int, noise: float, seed: int = 0) -> np.ndarray:
    """Identity with a ``noise`` fraction of values scattered randomly.

    ``noise=0`` is the identity; ``noise=1`` is a uniform random shuffle.
    The scattered values are chosen uniformly and permuted among their own
    positions, so the result is always a true permutation of ``0..size-1``.
    """
    if not 0.0 <= noise <= 1.0:
        raise WorkloadError(f"noise must be in [0, 1], got {noise}")
    values = identity_permutation(size)
    if noise <= 0.0 or size < 2:
        return values
    rng = make_numpy_rng(seed, "noisy-permutation", noise)
    if noise >= 1.0:
        rng.shuffle(values)
        return values
    num_scattered = max(2, int(round(size * noise)))
    positions = rng.choice(size, size=num_scattered, replace=False)
    shuffled = values[positions].copy()
    rng.shuffle(shuffled)
    values[positions] = shuffled
    return values


def block_permutation(size: int, num_blocks: int, seed: int = 0) -> np.ndarray:
    """Contiguous value blocks placed in shuffled order.

    Models per-batch loading (e.g. "per vendor", Example 1): values within
    a block stay consecutive — and hence page-clustered — but the blocks
    themselves are scattered.  A value-range predicate touches whole
    blocks, giving a clustering ratio between the two extremes, decreasing
    with block size.
    """
    if num_blocks <= 0:
        raise WorkloadError(f"num_blocks must be positive, got {num_blocks}")
    if num_blocks > size:
        raise WorkloadError(
            f"num_blocks {num_blocks} exceeds permutation size {size}"
        )
    rng = make_numpy_rng(seed, "block-permutation", num_blocks)
    block_order = rng.permutation(num_blocks)
    boundaries = np.linspace(0, size, num_blocks + 1).astype(np.int64)
    result = np.empty(size, dtype=np.int64)
    cursor = 0
    for block in block_order:
        start, end = boundaries[block], boundaries[block + 1]
        length = end - start
        result[cursor : cursor + length] = np.arange(start, end, dtype=np.int64)
        cursor += length
    return result


def permutation_correlation(perm: np.ndarray) -> float:
    """Spearman-style rank correlation between position and value.

    1.0 for the identity, ~0 for a uniform shuffle — a quick diagnostic
    used by tests to verify the family is ordered as intended.
    """
    size = len(perm)
    if size < 2:
        return 1.0
    positions = np.arange(size, dtype=np.float64)
    values = perm.astype(np.float64)
    pos_center = positions - positions.mean()
    val_center = values - values.mean()
    denominator = np.sqrt((pos_center**2).sum() * (val_center**2).sum())
    if denominator == 0:
        return 0.0
    return float((pos_center * val_center).sum() / denominator)
