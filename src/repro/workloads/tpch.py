"""TPC-H-like database with skew (the paper's "TPC-H (10GB), Z=1").

The paper uses a 10 GB TPC-H database generated with skew factor Z=1 and
queries the three date columns of ``lineitem`` (Fig. 11).  We reproduce
the structural properties that matter for page-count estimation:

* ``orders`` clustered on ``o_orderkey`` (an identity assigned in order-
  date order, the standard dbgen behaviour that makes dates correlate
  with the physical layout);
* ``lineitem`` clustered on ``l_orderkey``, 1-7 lines per order with a
  Zipf(Z=1-like) line-count distribution (the skewed variant);
* ``l_shipdate`` / ``l_commitdate`` / ``l_receiptdate`` derived from the
  order date plus bounded offsets — so each is correlated with the
  clustering key at a slightly different strength, exactly the situation
  Example 1 motivates ("orders and lineitem ... may both be clustered by
  a date attribute");
* 54 rows per lineitem page (Table I), via the padding width.

An index exists on each of the three date columns, plus ``l_quantity``
(skewed, uncorrelated) as a control.
"""

from __future__ import annotations

import datetime

from repro.catalog.catalog import Database
from repro.catalog.schema import ColumnDef, IndexDef, TableSchema
from repro.common.errors import WorkloadError
from repro.common.rng import make_numpy_rng, make_random
from repro.sql.types import SqlType
from repro.storage.page import ROW_OVERHEAD_BYTES, USABLE_PAGE_BYTES

_START_DATE = datetime.date(1992, 1, 1)
_DATE_SPAN_DAYS = 2557  # ~7 years, as in TPC-H


def _lineitem_padding_width() -> int:
    # fixed part: 6 INT (8B) + 3 DATE (4B) = 60 bytes; target 54 rows/page.
    target_row = USABLE_PAGE_BYTES // 54 - ROW_OVERHEAD_BYTES
    return max(1, target_row - 60)


def orders_schema() -> TableSchema:
    return TableSchema(
        "orders",
        [
            ColumnDef("o_orderkey", SqlType.INT),
            ColumnDef("o_custkey", SqlType.INT),
            ColumnDef("o_orderdate", SqlType.DATE),
            ColumnDef("o_totalprice", SqlType.INT),
            ColumnDef("o_padding", SqlType.STR, width_bytes=60),
        ],
    )


def lineitem_schema() -> TableSchema:
    return TableSchema(
        "lineitem",
        [
            ColumnDef("l_orderkey", SqlType.INT),
            ColumnDef("l_linenumber", SqlType.INT),
            ColumnDef("l_quantity", SqlType.INT),
            ColumnDef("l_extendedprice", SqlType.INT),
            ColumnDef("l_suppkey", SqlType.INT),
            ColumnDef("l_partkey", SqlType.INT),
            ColumnDef("l_shipdate", SqlType.DATE),
            ColumnDef("l_commitdate", SqlType.DATE),
            ColumnDef("l_receiptdate", SqlType.DATE),
            ColumnDef("l_padding", SqlType.STR, width_bytes=_lineitem_padding_width()),
        ],
    )


def build_tpch_database(
    num_lineitems: int = 30_000,
    seed: int = 0,
    db_name: str = "tpch",
    date_noise_days: tuple[int, int, int] = (30, 60, 90),
    date_scatter: tuple[float, float, float] = (0.02, 0.15, 0.40),
) -> Database:
    """Build the skewed TPC-H-like database.

    ``date_noise_days`` sets the bounded offset of (ship, commit, receipt)
    dates relative to the order date.  ``date_scatter`` is the fraction of
    lineitems whose corresponding date is *unrelated* to the order date
    (late reshipments, corrections, backdated entries) — drawn uniformly
    over the whole span.  Scatter is what decorrelates a date column from
    the physical ``l_orderkey`` clustering, so the three date columns land
    at three different points of the clustering-ratio spectrum.
    """
    if num_lineitems <= 0:
        raise WorkloadError(f"num_lineitems must be positive, got {num_lineitems}")
    rng = make_random(seed, "tpch")
    np_rng = make_numpy_rng(seed, "tpch-np")

    database = Database(db_name)

    # Orders: orderkeys assigned in orderdate order (dbgen-style).
    orders: list[tuple] = []
    order_dates: list[datetime.date] = []
    lineitem_rows: list[tuple] = []
    orderkey = 0
    # Zipf-like line counts in 1..7 (skew Z=1: P(c) ~ 1/c).
    weights = [1.0 / c for c in range(1, 8)]
    total_weight = sum(weights)
    probabilities = [w / total_weight for w in weights]

    while len(lineitem_rows) < num_lineitems:
        orderkey += 1
        fraction = orderkey / max(1, num_lineitems // 4)  # ~4 lines/order avg
        day = min(_DATE_SPAN_DAYS - 1, int(fraction * _DATE_SPAN_DAYS))
        # Small jitter so dates are not a pure step function of the key.
        day = max(0, min(_DATE_SPAN_DAYS - 1, day + rng.randint(-5, 5)))
        order_date = _START_DATE + datetime.timedelta(days=day)
        order_dates.append(order_date)
        orders.append(
            (
                orderkey,
                rng.randint(0, 9_999),
                order_date,
                rng.randint(1_000, 500_000),
                "o",
            )
        )
        num_lines = int(np_rng.choice(7, p=probabilities)) + 1
        ship_spread, commit_spread, receipt_spread = date_noise_days
        ship_scatter, commit_scatter, receipt_scatter = date_scatter

        def line_date(spread: int, scatter: float) -> datetime.date:
            if rng.random() < scatter:
                return _START_DATE + datetime.timedelta(
                    days=rng.randint(0, _DATE_SPAN_DAYS - 1)
                )
            return order_date + datetime.timedelta(days=rng.randint(1, spread))

        for line_number in range(1, num_lines + 1):
            if len(lineitem_rows) >= num_lineitems:
                break
            ship = line_date(ship_spread, ship_scatter)
            commit = line_date(commit_spread, commit_scatter)
            receipt = line_date(receipt_spread, receipt_scatter)
            quantity = int(min(50, np_rng.zipf(1.5)))  # skewed quantities
            lineitem_rows.append(
                (
                    orderkey,
                    line_number,
                    quantity,
                    rng.randint(100, 100_000),
                    rng.randint(0, 999),
                    rng.randint(0, 19_999),
                    ship,
                    commit,
                    receipt,
                    "l",
                )
            )

    database.load_table(
        orders_schema(),
        orders,
        clustered_on=["o_orderkey"],
        indexes=[IndexDef("ix_orders_orderdate", "orders", ("o_orderdate",))],
    )
    database.load_table(
        lineitem_schema(),
        lineitem_rows,
        clustered_on=["l_orderkey"],
        indexes=[
            IndexDef("ix_lineitem_shipdate", "lineitem", ("l_shipdate",)),
            IndexDef("ix_lineitem_commitdate", "lineitem", ("l_commitdate",)),
            IndexDef("ix_lineitem_receiptdate", "lineitem", ("l_receiptdate",)),
            IndexDef("ix_lineitem_quantity", "lineitem", ("l_quantity",)),
        ],
    )
    return database


#: The Fig. 11 query columns on the TPC-H analogue.
TPCH_QUERY_COLUMNS: tuple[str, ...] = (
    "l_shipdate",
    "l_commitdate",
    "l_receiptdate",
)
