"""Synthetic analogues of the paper's real-world databases (Table I).

The paper evaluates on four proprietary databases (Book Retailer, Yellow
Pages, Voter data, Products) plus TPC-H.  Those datasets are not
available; what Figures 10 and 11 actually depend on is their *page
geometry* (rows per page, Table I) and the *clustering-ratio spectrum* of
their queryable columns (Fig. 10: CR widely spread, mean 0.56, stddev
0.40).  Each analogue therefore reproduces:

* the Table I rows-per-page via column widths (row counts are scaled down
  ~1000x and recorded in EXPERIMENTS.md — every studied effect is a
  ratio, not an absolute);
* a mix of column types whose on-disk correlation with the clustering key
  spans the CR range: noisy-correlated dates/sequences (low CR),
  block-loaded columns ("per-vendor" loads, Example 1 — mid CR), and
  categorical/uniform columns (high CR).

:func:`build_real_world_databases` returns all five; each table is
clustered on its id with non-clustered indexes on the queryable columns.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Any, Callable

try:  # Synthetic data generation needs NumPy; the engine itself
    import numpy as np  # does not (see repro.exec.vector).
except ImportError:  # pragma: no cover - no-NumPy installs
    np = None  # type: ignore[assignment]

from repro.catalog.catalog import Database
from repro.catalog.schema import ColumnDef, IndexDef, TableSchema
from repro.common.errors import WorkloadError
from repro.common.rng import derive_seed, make_numpy_rng
from repro.sql.types import SqlType
from repro.workloads.permutations import block_permutation, noisy_permutation

_EPOCH = datetime.date(2000, 1, 1)


def _dates_from_permutation(perm: np.ndarray, num_days: int) -> list[datetime.date]:
    """Map permutation ranks onto a date range, preserving clustering."""
    size = len(perm)
    return [
        _EPOCH + datetime.timedelta(days=int(perm[i]) * num_days // size)
        for i in range(size)
    ]


@dataclass(frozen=True)
class ColumnSpec:
    """How to generate one column of an analogue dataset.

    ``kind`` selects the generator:

    * ``"id"`` — 0..N-1 in load order (the clustering key);
    * ``"noisy"`` — noisy permutation of 0..N-1 (``param`` = noise);
    * ``"noisy_date"`` — same, mapped onto a ~4-year date range;
    * ``"block"`` — block permutation (``param`` = number of blocks);
    * ``"categorical"`` — uniform ints in [0, param);
    * ``"uniform"`` — uniform ints in [0, N);
    * ``"zipf"`` — Zipf(param)-distributed ints (skewed, TPC-H Z=1);
    * ``"padding"`` — constant filler (width drives page geometry).
    """

    name: str
    kind: str
    param: float = 0.0
    width_bytes: int = 0
    indexed: bool = False

    _KINDS = (
        "id",
        "noisy",
        "noisy_date",
        "block",
        "categorical",
        "uniform",
        "zipf",
        "padding",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise WorkloadError(
                f"unknown column kind {self.kind!r}; valid: {self._KINDS}"
            )

    @property
    def sql_type(self) -> SqlType:
        if self.kind == "noisy_date":
            return SqlType.DATE
        if self.kind == "padding":
            return SqlType.STR
        return SqlType.INT

    def generate(self, num_rows: int, seed: int) -> list[Any]:
        if self.kind == "id":
            return list(range(num_rows))
        if self.kind == "noisy":
            return [int(v) for v in noisy_permutation(num_rows, self.param, seed)]
        if self.kind == "noisy_date":
            perm = noisy_permutation(num_rows, self.param, seed)
            return _dates_from_permutation(perm, num_days=1460)
        if self.kind == "block":
            perm = block_permutation(num_rows, int(self.param), seed)
            return [int(v) for v in perm]
        if self.kind == "categorical":
            rng = make_numpy_rng(seed, "categorical", self.name)
            return [int(v) for v in rng.integers(0, int(self.param), size=num_rows)]
        if self.kind == "uniform":
            rng = make_numpy_rng(seed, "uniform", self.name)
            return [int(v) for v in rng.integers(0, num_rows, size=num_rows)]
        if self.kind == "zipf":
            rng = make_numpy_rng(seed, "zipf", self.name)
            raw = rng.zipf(self.param, size=num_rows)
            return [int(min(v, 10_000)) for v in raw]
        return ["x"] * num_rows  # padding


@dataclass(frozen=True)
class DatasetSpec:
    """One analogue dataset: name, scaled size, and its column mix.

    ``paper_rows_millions`` / ``paper_rows_per_page`` record the Table I
    values the analogue mimics (rows per page is reproduced through the
    padding width; the row count is scaled).
    """

    name: str
    num_rows: int
    columns: tuple[ColumnSpec, ...]
    paper_rows_millions: float
    paper_rows_per_page: int

    def schema(self) -> TableSchema:
        return TableSchema(
            self.name,
            [
                ColumnDef(c.name, c.sql_type, width_bytes=c.width_bytes)
                for c in self.columns
            ],
        )

    def indexed_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.indexed]


def _pad_width(rows_per_page: int, fixed_bytes: int) -> int:
    """Padding width so the row hits the Table I rows-per-page target."""
    from repro.storage.page import ROW_OVERHEAD_BYTES, USABLE_PAGE_BYTES

    target_row = USABLE_PAGE_BYTES // rows_per_page - ROW_OVERHEAD_BYTES
    return max(1, target_row - fixed_bytes)


def default_dataset_specs(scale: float = 1.0) -> list[DatasetSpec]:
    """The four non-TPC-H analogues of Table I (TPC-H lives in tpch.py).

    ``scale`` multiplies the default (already ~1000x-reduced) row counts.
    """

    def rows(base: int) -> int:
        return max(500, int(base * scale))

    return [
        DatasetSpec(
            name="book_retailer",
            num_rows=rows(25_000),
            paper_rows_millions=10.8,
            paper_rows_per_page=27,
            columns=(
                ColumnSpec("id", "id"),
                ColumnSpec("order_date", "noisy_date", 0.05, indexed=True),
                ColumnSpec("ship_date", "noisy_date", 0.25, indexed=True),
                ColumnSpec("customer_id", "uniform", indexed=True),
                ColumnSpec("store_id", "block", 50, indexed=True),
                ColumnSpec("list_price", "uniform"),
                # 5 ints (8B) + 1 date (4B) + padding -> 27 rows/page
                ColumnSpec(
                    "padding", "padding", width_bytes=_pad_width(27, 5 * 8 + 4)
                ),
            ),
        ),
        DatasetSpec(
            name="yellow_pages",
            num_rows=rows(10_000),
            paper_rows_millions=1.0,
            paper_rows_per_page=39,
            columns=(
                ColumnSpec("id", "id"),
                ColumnSpec("zipcode", "block", 400, indexed=True),
                ColumnSpec("category", "categorical", 500, indexed=True),
                ColumnSpec("listing_rank", "noisy", 1.0, indexed=True),
                ColumnSpec("phone", "uniform"),
                ColumnSpec(
                    "padding", "padding", width_bytes=_pad_width(39, 5 * 8)
                ),
            ),
        ),
        DatasetSpec(
            name="voter_data",
            num_rows=rows(20_000),
            paper_rows_millions=4.0,
            paper_rows_per_page=46,
            columns=(
                ColumnSpec("id", "id"),
                ColumnSpec("registration_date", "noisy_date", 0.15, indexed=True),
                ColumnSpec("birth_year", "categorical", 76, indexed=True),
                ColumnSpec("precinct", "block", 800, indexed=True),
                ColumnSpec("party", "categorical", 5),
                ColumnSpec(
                    "padding", "padding", width_bytes=_pad_width(46, 4 * 8 + 4)
                ),
            ),
        ),
        DatasetSpec(
            name="products",
            num_rows=rows(5_600),
            paper_rows_millions=0.56,
            paper_rows_per_page=9,
            columns=(
                ColumnSpec("id", "id"),
                ColumnSpec("listing_date", "noisy_date", 0.35, indexed=True),
                ColumnSpec("category", "categorical", 200, indexed=True),
                ColumnSpec("supplier_id", "block", 120, indexed=True),
                ColumnSpec("unit_price", "uniform"),
                ColumnSpec(
                    "padding", "padding", width_bytes=_pad_width(9, 4 * 8 + 4)
                ),
            ),
        ),
    ]


def load_dataset(
    database: Database, spec: DatasetSpec, seed: int = 0
) -> None:
    """Generate and load one analogue dataset into ``database``."""
    columns = {
        # derive_seed (not builtin hash) so data is process-independent
        c.name: c.generate(spec.num_rows, derive_seed(seed, spec.name, c.name))
        for c in spec.columns
    }
    names = [c.name for c in spec.columns]
    rows = [
        tuple(columns[name][i] for name in names) for i in range(spec.num_rows)
    ]
    indexes = [
        IndexDef(f"ix_{spec.name}_{col}", spec.name, (col,))
        for col in spec.indexed_columns()
    ]
    database.load_table(spec.schema(), rows, clustered_on=["id"], indexes=indexes)


def build_real_world_databases(
    scale: float = 1.0, seed: int = 0, include_tpch: bool = True
) -> dict[str, Database]:
    """All real-world analogue databases, keyed by name.

    Each dataset gets its own :class:`Database` (own buffer pool and
    clock), matching the paper's per-database measurements.  TPC-H comes
    from :mod:`repro.workloads.tpch` when ``include_tpch`` is set.
    """
    databases: dict[str, Database] = {}
    for spec in default_dataset_specs(scale):
        database = Database(spec.name)
        load_dataset(database, spec, seed=seed)
        databases[spec.name] = database
    if include_tpch:
        from repro.workloads.tpch import build_tpch_database

        databases["tpch"] = build_tpch_database(
            num_lineitems=max(500, int(30_000 * scale)), seed=seed
        )
    return databases
