"""The paper's synthetic database (§V-B.1), at configurable scale.

Schema ``T(C1, C2, C3, C4, C5, padding)`` with 100-byte rows; ``C1`` is an
identity column and the clustered index key; ``C2..C5`` are permutations
of ``C1`` spanning the correlation spectrum (see
:mod:`repro.workloads.permutations`); non-clustered indexes exist on each
of ``C2..C5``.  The paper loads 100M rows / 1.45M pages; all the effects
it studies are ratios (selectivity, DPC/P, crossovers), so we default to
100k rows and record the scaling in EXPERIMENTS.md.

``add_synthetic_copy`` creates the join partner ``T1`` ("a copy of table T
... with a clustered index on T1.C1", §V-B.1, Fig. 8).
"""

from __future__ import annotations

from repro.catalog.catalog import Database
from repro.catalog.schema import ColumnDef, IndexDef, TableSchema
from repro.common.errors import WorkloadError
from repro.sql.types import SqlType
from repro.storage.disk import DiskParameters
from repro.storage.table import Table
from repro.workloads.permutations import noisy_permutation

#: Noise levels realising the paper's correlation spectrum.
DEFAULT_COLUMN_NOISE: dict[str, float] = {
    "c2": 0.0,  # fully correlated with C1 (C2 = C1)
    "c3": 0.01,  # mildly scattered   (DPC slope ~1.7x the correlated case)
    "c4": 0.03,  # strongly scattered (DPC slope ~3.2x)
    "c5": 1.0,  # uncorrelated (random permutation)
}

#: Column widths chosen so a row is ~100 bytes, as in the paper.
_PADDING_WIDTH = 60


def synthetic_schema(table_name: str = "t") -> TableSchema:
    """``T(c1..c5 INT, padding STR)`` with ~100-byte rows."""
    return TableSchema(
        table_name,
        [
            ColumnDef("c1", SqlType.INT),
            ColumnDef("c2", SqlType.INT),
            ColumnDef("c3", SqlType.INT),
            ColumnDef("c4", SqlType.INT),
            ColumnDef("c5", SqlType.INT),
            ColumnDef("padding", SqlType.STR, width_bytes=_PADDING_WIDTH),
        ],
    )


def generate_synthetic_rows(
    num_rows: int,
    seed: int = 0,
    column_noise: dict[str, float] | None = None,
) -> list[tuple]:
    """Rows of T in C1 order (the clustered bulk-load order)."""
    if num_rows <= 0:
        raise WorkloadError(f"num_rows must be positive, got {num_rows}")
    noise = dict(DEFAULT_COLUMN_NOISE)
    if column_noise:
        noise.update(column_noise)
    columns = {
        name: noisy_permutation(num_rows, level, seed=seed + index)
        for index, (name, level) in enumerate(sorted(noise.items()))
    }
    pad = "x" * 8  # declared width drives page geometry, not len()
    return [
        (
            i,
            int(columns["c2"][i]),
            int(columns["c3"][i]),
            int(columns["c4"][i]),
            int(columns["c5"][i]),
            pad,
        )
        for i in range(num_rows)
    ]


def build_synthetic_database(
    num_rows: int = 100_000,
    seed: int = 0,
    db_name: str = "synthetic",
    column_noise: dict[str, float] | None = None,
    buffer_pool_pages: int = 262_144,
    disk_params: DiskParameters | None = None,
    with_copy: bool = False,
) -> Database:
    """Build the synthetic database: table ``t`` (+ optional join copy ``t1``).

    ``t`` is clustered on ``c1`` with non-clustered indexes ``ix_c2`` ..
    ``ix_c5``; ``t1`` (when requested) is clustered on ``c1`` with no
    secondary indexes, exactly the Fig. 8 setup.
    """
    database = Database(
        db_name, buffer_pool_pages=buffer_pool_pages, disk_params=disk_params
    )
    rows = generate_synthetic_rows(num_rows, seed=seed, column_noise=column_noise)
    schema = synthetic_schema("t")
    indexes = [
        IndexDef(f"ix_{column}", "t", (column,))
        for column in ("c2", "c3", "c4", "c5")
    ]
    database.load_table(schema, rows, clustered_on=["c1"], indexes=indexes)
    if with_copy:
        add_synthetic_copy(
            database, num_rows, seed=seed, column_noise=column_noise
        )
    return database


def add_synthetic_copy(
    database: Database,
    num_rows: int,
    seed: int = 0,
    table_name: str = "t1",
    column_noise: dict[str, float] | None = None,
) -> Table:
    """Load the Fig. 8 join partner: a copy of T clustered on C1.

    The copy's C2..C5 use the *same noise levels* but independent random
    draws (a fresh seed).  This is what makes "varying the Ci column vary
    the number of pages fetched" (§V-B.1): joining on C2 matches rows at
    correlated positions in both tables (few contiguous inner pages),
    while joining on C5 matches scattered positions (many pages).  An
    exact bit-for-bit copy would make every Ci join degenerate to the C1
    join, because row *i* could only ever match row *i*.
    """
    schema = synthetic_schema(table_name)
    rows = generate_synthetic_rows(
        num_rows, seed=seed + 7919, column_noise=column_noise
    )
    return database.load_table(schema, rows, clustered_on=["c1"])
