"""Workloads: synthetic + real-world-analogue datasets and query generators."""

from repro.workloads.permutations import (
    block_permutation,
    identity_permutation,
    noisy_permutation,
    permutation_correlation,
)
from repro.workloads.queries import (
    GeneratedQuery,
    clustering_probe_predicates,
    join_workload,
    multi_predicate_query,
    single_table_workload,
)
from repro.workloads.realworld import (
    ColumnSpec,
    DatasetSpec,
    build_real_world_databases,
    default_dataset_specs,
    load_dataset,
)
from repro.workloads.tpch import TPCH_QUERY_COLUMNS, build_tpch_database
from repro.workloads.synthetic import (
    DEFAULT_COLUMN_NOISE,
    add_synthetic_copy,
    build_synthetic_database,
    generate_synthetic_rows,
    synthetic_schema,
)

__all__ = [
    "ColumnSpec",
    "DEFAULT_COLUMN_NOISE",
    "DatasetSpec",
    "TPCH_QUERY_COLUMNS",
    "build_real_world_databases",
    "build_tpch_database",
    "clustering_probe_predicates",
    "default_dataset_specs",
    "load_dataset",
    "GeneratedQuery",
    "add_synthetic_copy",
    "block_permutation",
    "build_synthetic_database",
    "generate_synthetic_rows",
    "identity_permutation",
    "join_workload",
    "multi_predicate_query",
    "noisy_permutation",
    "permutation_correlation",
    "single_table_workload",
    "synthetic_schema",
]
