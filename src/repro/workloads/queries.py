"""Query workload generators for the paper's experiments.

Each generated query carries the metadata the evaluation methodology
needs: the predicate column, the target and *exact* selectivity, and the
exact cardinalities to inject (the paper isolates page-count error by
giving the optimizer accurate cardinalities, §V-B).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Database
from repro.common.errors import WorkloadError
from repro.common.rng import make_random
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import JoinQuery, SingleTableQuery
from repro.sql.predicates import Comparison, Conjunction, JoinEquality


@dataclass
class GeneratedQuery:
    """A query plus the ground truth the harness needs."""

    query: SingleTableQuery | JoinQuery
    column: str
    selectivity: float
    #: exact cardinalities per (table, expression) to inject
    exact_cardinalities: list[tuple[str, Conjunction, float]] = field(
        default_factory=list
    )
    label: str = ""

    def injections(self, base: Optional[InjectionSet] = None) -> InjectionSet:
        """An InjectionSet carrying this query's exact cardinalities."""
        injections = base.copy() if base is not None else InjectionSet()
        for table, expression, rows in self.exact_cardinalities:
            injections.inject_cardinality(table, expression, rows)
        return injections


class _ColumnQuantiles:
    """Exact quantile lookup over one column's values (for selectivity
    targeting) plus exact range cardinalities."""

    def __init__(self, database: Database, table: str, column: str) -> None:
        tbl = database.table(table)
        position = tbl.schema.position(column)
        values = []
        for page_id in tbl.all_page_ids():
            for row in tbl.rows_on_page(page_id):
                if row[position] is not None:
                    values.append(row[position])
        if not values:
            raise WorkloadError(f"column {table}.{column} has no non-null values")
        self.sorted_values = sorted(values)
        self.total = len(values)

    def value_at_selectivity(self, selectivity: float):
        """A value ``v`` such that ``column < v`` matches ~selectivity."""
        index = min(
            self.total - 1, max(0, int(round(selectivity * self.total)))
        )
        return self.sorted_values[index]

    def cardinality_below(self, value) -> int:
        """Exact count of rows with ``column < value``."""
        return bisect.bisect_left(self.sorted_values, value)


def single_table_workload(
    database: Database,
    table: str,
    columns: Sequence[str],
    queries_per_column: int,
    selectivity_range: tuple[float, float] = (0.01, 0.10),
    count_column: str = "padding",
    seed: int = 0,
) -> list[GeneratedQuery]:
    """The Fig. 6/7 workload: ``SELECT count(padding) FROM T WHERE Ci < val``
    with selectivities drawn uniformly from ``selectivity_range``,
    ``queries_per_column`` queries for each column (paper: 25 x 4 = 100).
    """
    low, high = selectivity_range
    if not 0.0 < low <= high <= 1.0:
        raise WorkloadError(f"bad selectivity range {selectivity_range}")
    rng = make_random(seed, "single-table-workload", table)
    workload = []
    for column in columns:
        quantiles = _ColumnQuantiles(database, table, column)
        for query_index in range(queries_per_column):
            target = rng.uniform(low, high)
            value = quantiles.value_at_selectivity(target)
            exact_rows = quantiles.cardinality_below(value)
            predicate = Conjunction((Comparison(column, "<", value),))
            query = SingleTableQuery(
                table=table, predicate=predicate, count_column=count_column
            )
            workload.append(
                GeneratedQuery(
                    query=query,
                    column=column,
                    selectivity=exact_rows / quantiles.total,
                    exact_cardinalities=[(table, predicate, float(exact_rows))],
                    label=f"{column}#{query_index}",
                )
            )
    return workload


def join_workload(
    database: Database,
    outer_table: str,
    inner_table: str,
    join_columns: Sequence[str],
    queries_per_column: int,
    outer_range_column: str = "c1",
    selectivity_range: tuple[float, float] = (0.005, 0.10),
    count_column: Optional[str] = None,
    seed: int = 0,
) -> list[GeneratedQuery]:
    """The Fig. 8 workload::

        SELECT count(T.padding) FROM T, T1
        WHERE T1.C1 < val AND T1.Ci = T.Ci

    One query per (join column, selectivity draw); the paper uses 40
    queries with outer selectivities chosen around the plan-choice
    crossover.
    """
    count_column = count_column or f"{inner_table}.padding"
    rng = make_random(seed, "join-workload", outer_table, inner_table)
    quantiles = _ColumnQuantiles(database, outer_table, outer_range_column)
    low, high = selectivity_range
    workload = []
    for column in join_columns:
        for query_index in range(queries_per_column):
            target = rng.uniform(low, high)
            value = quantiles.value_at_selectivity(target)
            exact_rows = quantiles.cardinality_below(value)
            outer_predicate = Conjunction(
                (Comparison(outer_range_column, "<", value),)
            )
            join_predicate = JoinEquality(
                outer_table, column, inner_table, column
            )
            query = JoinQuery(
                join_predicate=join_predicate,
                predicates={outer_table: outer_predicate},
                count_column=count_column,
            )
            workload.append(
                GeneratedQuery(
                    query=query,
                    column=column,
                    selectivity=exact_rows / quantiles.total,
                    exact_cardinalities=[
                        (outer_table, outer_predicate, float(exact_rows))
                    ],
                    label=f"join-{column}#{query_index}",
                )
            )
    return workload


def clustering_probe_predicates(
    database: Database,
    table: str,
    column: str,
    num_probes: int,
    max_selectivity: float = 0.10,
    seed: int = 0,
) -> list[Conjunction]:
    """Predicates for Clustering Ratio measurement (Fig. 10).

    Fig. 10 uses queries "whose selectivity is less than 10%".  Columns
    with few distinct values (categoricals) get equality probes; dense
    columns get range probes at random selectivities in (0.5%, max].
    """
    rng = make_random(seed, "clustering-probes", table, column)
    quantiles = _ColumnQuantiles(database, table, column)
    distinct = len(set(quantiles.sorted_values))
    predicates: list[Conjunction] = []
    if distinct <= 200:
        values = sorted(set(quantiles.sorted_values), key=repr)
        rng.shuffle(values)
        for value in values:
            count = (
                bisect.bisect_right(quantiles.sorted_values, value)
                - bisect.bisect_left(quantiles.sorted_values, value)
            )
            if 0 < count <= max_selectivity * quantiles.total:
                predicates.append(Conjunction((Comparison(column, "=", value),)))
            if len(predicates) >= num_probes:
                break
    else:
        for _ in range(num_probes):
            target = rng.uniform(0.005, max_selectivity)
            value = quantiles.value_at_selectivity(target)
            predicates.append(Conjunction((Comparison(column, "<", value),)))
    return predicates


def multi_predicate_query(
    database: Database,
    table: str,
    columns: Sequence[str],
    per_term_selectivity: float = 0.5,
    count_column: str = "padding",
    seed: int = 0,
) -> GeneratedQuery:
    """One conjunctive query with ``len(columns)`` predicates (Fig. 9).

    Each term is a range predicate with the given selectivity; terms are
    ordered as supplied, which is also the evaluation (short-circuit)
    order.
    """
    if not columns:
        raise WorkloadError("multi_predicate_query needs at least one column")
    rng = make_random(seed, "multi-predicate", table)
    terms = []
    exact = []
    for column in columns:
        quantiles = _ColumnQuantiles(database, table, column)
        jitter = rng.uniform(0.9, 1.1)
        value = quantiles.value_at_selectivity(
            min(0.99, per_term_selectivity * jitter)
        )
        term = Comparison(column, "<", value)
        terms.append(term)
        exact_rows = quantiles.cardinality_below(value)
        exact.append((table, Conjunction((term,)), float(exact_rows)))
    predicate = Conjunction(tuple(terms))
    query = SingleTableQuery(
        table=table, predicate=predicate, count_column=count_column
    )
    return GeneratedQuery(
        query=query,
        column="+".join(columns),
        selectivity=per_term_selectivity ** len(columns),
        exact_cardinalities=exact,
        label=f"{len(columns)}-predicates",
    )
