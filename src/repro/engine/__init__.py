"""Thread-safe multi-session front end over the simulated engine."""

from repro.engine.engine import (
    Engine,
    EquivalenceReport,
    QueryComparison,
    WorkloadItem,
)

__all__ = ["Engine", "EquivalenceReport", "QueryComparison", "WorkloadItem"]
