"""A thread-safe front end: one :class:`Engine`, many concurrent sessions.

The paper's feedback loop (monitor -> remember -> re-optimize) is a
multi-query, multi-session workflow: execution feedback is collected
continuously across a live workload, not one cold-cache run at a time.
The per-execution accounting refactor makes that possible — every run
charges its own :class:`~repro.storage.accounting.IOContext` — and this
module packages it:

* :class:`Engine` owns the shared, immutable-after-load
  :class:`~repro.catalog.Database` and one shared
  :class:`~repro.core.FeedbackStore`, and hands out
  :class:`~repro.session.Session` objects whose feedback writes are
  serialized under the engine's lock.

* :meth:`Engine.run_concurrent` is the concurrent-workload harness: it
  executes a workload on N threads, each query under an *isolated*
  context (private cold buffer frames), so per-query ``RunStats`` are
  bit-identical to serial cold-cache runs no matter how executions
  interleave.  :meth:`Engine.equivalence_report` runs a workload both
  ways and diffs the per-query rows, physical-read counts and page-count
  observations — the proof obligation of the refactor.

Executions never write to tables (the stored data is immutable after
load), so the only cross-session mutable state is the shared buffer
pool's frame set — guarded by its own lock and bypassed entirely by
isolated contexts — and the feedback store, serialized here.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.catalog.catalog import Database
from repro.common.cancellation import CancellationToken
from repro.common.errors import EngineError
from repro.core.feedback import FeedbackStore
from repro.core.planner import MonitorConfig
from repro.core.requests import PageCountObservation, PageCountRequest
from repro.lifecycle.plancache import PlanCache
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Query
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.optimizer.plans import PlanNode
from repro.reopt.policy import ReoptPolicy
from repro.session import ExecutedQuery, Session


@dataclass(frozen=True)
class WorkloadItem:
    """One query of a (possibly concurrent) workload."""

    query: Query
    requests: tuple[PageCountRequest, ...] = ()
    use_feedback: bool = False
    hint: Optional[PlanHint] = None
    #: Harvest the run's observations into the engine's shared feedback
    #: store (serialized).  Off by default: remembering changes what later
    #: optimizations see, which a pure measurement workload rarely wants.
    remember: bool = False
    #: Drive style for the execution: ``"row"``, ``"batch"`` or
    #: ``"columnar"`` (results
    #: are mode-invariant; see :func:`repro.exec.executor.execute`).
    exec_mode: str = "row"
    #: Run under the mid-query re-optimization watchdog (the engine's
    #: :attr:`Engine.reopt_policy`, or the default policy).  Off by
    #: default: the plain path is bit-identical to pre-reopt behaviour.
    reopt: bool = False


@dataclass(frozen=True)
class QueryComparison:
    """Serial-vs-concurrent diff for one workload item."""

    index: int
    rows_match: bool
    physical_reads_match: bool
    observations_match: bool
    serial_physical_reads: int
    concurrent_physical_reads: int
    #: Cached-vs-uncached plan identity at the same feedback epoch: the
    #: plan the shared cache resolves for this item must render
    #: bit-identically to a fresh, cache-bypassing optimization.
    plans_match: bool = True
    cache_event: str = ""

    @property
    def matches(self) -> bool:
        return (
            self.rows_match
            and self.physical_reads_match
            and self.observations_match
            and self.plans_match
        )


@dataclass
class EquivalenceReport:
    """Outcome of running one workload serially and concurrently."""

    comparisons: list[QueryComparison] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return all(c.matches for c in self.comparisons)

    def mismatches(self) -> list[QueryComparison]:
        return [c for c in self.comparisons if not c.matches]


def _observation_signature(executed: ExecutedQuery) -> list[tuple[Any, ...]]:
    return [
        (obs.key, obs.mechanism, obs.answered, obs.estimate, obs.exact)
        for obs in executed.observations
    ]


class Engine:
    """Owns one database and hands out concurrent sessions."""

    def __init__(
        self,
        database: Database,
        monitor_config: Optional[MonitorConfig] = None,
        page_count_model: Optional[AnalyticalPageCountModel] = None,
        plan_cache: Optional[PlanCache] = None,
        use_plan_cache: bool = True,
        reopt_policy: Optional[ReoptPolicy] = None,
    ) -> None:
        self.database = database
        self.feedback = FeedbackStore()
        self.monitor_config = (
            monitor_config if monitor_config is not None else MonitorConfig()
        )
        self.page_count_model = page_count_model
        #: Shared by every session this engine hands out: repeated
        #: queries skip the optimize+lint stages while feedback epochs
        #: and statistics versions keep entries provably fresh.  Pass
        #: ``use_plan_cache=False`` (or an explicit cache) to override.
        self.plan_cache: Optional[PlanCache] = (
            plan_cache
            if plan_cache is not None
            else (PlanCache() if use_plan_cache else None)
        )
        #: Policy applied to workload items that opt into mid-query
        #: re-optimization (``WorkloadItem.reopt=True``).  ``None`` means
        #: such items run under the default :class:`ReoptPolicy`; items
        #: with ``reopt=False`` never see a watchdog either way.
        self.reopt_policy = reopt_policy
        self._feedback_lock = threading.Lock()
        #: Lifecycle state: ``shutdown()`` flips ``_closed`` and then (with
        #: ``drain=True``) waits on ``_state`` until ``_active`` executions
        #: reach zero.  ``_state`` guards both fields.
        self._state = threading.Condition()
        self._closed = False
        self._active = 0

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has been called."""
        with self._state:
            return self._closed

    @property
    def active_executions(self) -> int:
        """Executions currently inside :meth:`execute` (drain watches this)."""
        with self._state:
            return self._active

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """End the engine's lifecycle: no new sessions or executions.

        With ``drain=True`` (the default) the call blocks until every
        in-flight :meth:`execute` finishes — the service layer's graceful
        stop.  ``drain=False`` only flips the flag; in-flight executions
        still complete (cooperative cancellation is the caller's job) but
        the engine stops admitting work immediately.  Idempotent.

        Returns ``True`` when the engine is fully drained on return,
        ``False`` when a ``timeout`` expired (or ``drain=False``) while
        executions were still in flight.
        """
        with self._state:
            self._closed = True
            if not drain:
                return self._active == 0
            return self._state.wait_for(
                lambda: self._active == 0, timeout=timeout
            )

    def _begin_execution(self) -> None:
        with self._state:
            if self._closed:
                raise EngineError(
                    "engine is shut down; execute() rejected "
                    f"({self._active} execution(s) still draining)"
                )
            self._active += 1

    def _end_execution(self) -> None:
        with self._state:
            self._active -= 1
            self._state.notify_all()

    # ------------------------------------------------------------------
    def session(self, injections: Optional[InjectionSet] = None) -> Session:
        """A new session sharing this engine's database and feedback store.

        Sessions are cheap; give each thread its own (a ``Session`` itself
        is not thread-safe — only the engine-level sharing is).  Raises
        :class:`~repro.common.errors.EngineError` once the engine is shut
        down — an engine that stopped serving must not hand out new
        connections.
        """
        with self._state:
            if self._closed:
                raise EngineError(
                    "engine is shut down; session() rejected"
                )
        return Session(
            database=self.database,
            feedback=self.feedback,
            injections=(
                injections.copy() if injections is not None else InjectionSet()
            ),
            monitor_config=self.monitor_config,
            page_count_model=self.page_count_model,
            feedback_lock=self._feedback_lock,
            plan_cache=self.plan_cache,
        )

    def execute(
        self,
        item: WorkloadItem,
        session: Optional[Session] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> ExecutedQuery:
        """Run one workload item under an isolated accounting context.

        The isolated context starts with cold private buffer frames, so
        the result is independent of any other execution in flight — the
        engine's unit of concurrency-safe work.  The execution is
        registered with the engine's lifecycle: :meth:`shutdown` with
        ``drain=True`` waits for it, and new calls after shutdown raise
        :class:`~repro.common.errors.EngineError`.
        """
        session = session if session is not None else self.session()
        self._begin_execution()
        # Per-item routing: run_serial/run_concurrent reuse one session
        # across items, so the policy is set for this item only and then
        # restored — a reopt item must not leak its watchdog onto the
        # next plain item (or vice versa).
        saved_policy = session.reopt_policy
        if item.reopt:
            session.reopt_policy = (
                self.reopt_policy
                if self.reopt_policy is not None
                else ReoptPolicy()
            )
        else:
            session.reopt_policy = None
        try:
            return session.run(
                item.query,
                requests=item.requests,
                use_feedback=item.use_feedback,
                hint=item.hint,
                io=self.database.new_io_context(isolated=True),
                remember=item.remember,
                exec_mode=item.exec_mode,
                cancellation=cancellation,
            )
        finally:
            session.reopt_policy = saved_policy
            self._end_execution()

    def execute_plan(
        self,
        query: Query,
        plan: PlanNode,
        requests: Sequence[PageCountRequest] = (),
        exec_mode: str = "row",
        session: Optional[Session] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> ExecutedQuery:
        """Run an already-optimized plan under lifecycle accounting.

        The scatter-gather deployment plans **once** at the coordinator
        and fans the same plan node out; shard engines must execute it
        without re-optimizing (their local statistics would re-derive a
        different plan and break shard↔shard comparability).  Like
        :meth:`execute`, the run is registered with the engine lifecycle
        (shutdown drains it, post-shutdown calls raise
        :class:`~repro.common.errors.EngineError`) and charges an
        isolated accounting context.  Feedback is **not** harvested here
        — the coordinator merges per-shard run statistics itself.
        """
        session = session if session is not None else self.session()
        self._begin_execution()
        try:
            return session.run_plan(
                query,
                plan,
                requests=list(requests),
                io=self.database.new_io_context(isolated=True),
                exec_mode=exec_mode,
                cancellation=cancellation,
            )
        finally:
            self._end_execution()

    # ------------------------------------------------------------------
    def run_serial(self, items: Sequence[WorkloadItem]) -> list[ExecutedQuery]:
        """Execute the workload one item at a time, in order."""
        session = self.session()
        return [self.execute(item, session=session) for item in items]

    def run_concurrent(
        self, items: Sequence[WorkloadItem], num_threads: int = 4
    ) -> list[ExecutedQuery]:
        """Execute the workload on ``num_threads`` threads.

        Items are pulled from a shared queue; each worker thread gets its
        own session and every item an isolated context, so results arrive
        in the input order with accounting identical to serial execution.
        Worker exceptions propagate to the caller after all threads stop.
        """
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        pending: "queue.SimpleQueue[tuple[int, WorkloadItem]]" = queue.SimpleQueue()
        for index, item in enumerate(items):
            pending.put((index, item))
        results: list[Optional[ExecutedQuery]] = [None] * len(items)
        failures: list[BaseException] = []
        # All workers launch together so executions genuinely interleave
        # (the harness exists to prove interleaving is harmless).
        gate = threading.Barrier(num_threads)

        def worker() -> None:
            session = self.session()
            gate.wait()
            while not failures:
                try:
                    index, item = pending.get_nowait()
                except queue.Empty:
                    return
                try:
                    results[index] = self.execute(item, session=session)
                except BaseException as exc:  # surfaced to the caller below
                    failures.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, name=f"engine-worker-{n}")
            for n in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            raise EngineError(
                f"run_concurrent lost {len(missing)} of {len(items)} "
                f"result(s) (indices {missing}) without raising — "
                "workload accounting would silently truncate"
            )
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    def _plan_identity_check(self, item: WorkloadItem) -> tuple[bool, str]:
        """Resolve ``item``'s plan through the shared cache *and* via a
        fresh cache-bypassing optimization, at the current feedback epoch.

        Returns ``(plans_match, cache_event)``: the two plans must render
        bit-identically, otherwise the cache is serving a plan the
        optimizer would no longer choose.  With no cache configured the
        check degenerates to fresh-vs-fresh (always equal, determinism).
        """
        cached_session = self.session()
        cached_plan = cached_session.optimize(
            item.query, use_feedback=item.use_feedback, hint=item.hint
        )
        event = (
            cached_session.last_trace.cache_event
            if cached_session.last_trace is not None
            else ""
        )
        fresh_session = self.session()
        fresh_session.plan_cache = None
        fresh_plan = fresh_session.optimize(
            item.query, use_feedback=item.use_feedback, hint=item.hint
        )
        return cached_plan.render() == fresh_plan.render(), event

    def equivalence_report(
        self, items: Sequence[WorkloadItem], num_threads: int = 4
    ) -> EquivalenceReport:
        """Run ``items`` serially, then concurrently, and diff per query.

        Compares rows, physical-read counts and page-count observations —
        exact equality, no tolerances: identical plans driven over
        identical cold private frames must charge identical counters.
        Each comparison also re-resolves the item's plan cached vs.
        uncached (:meth:`_plan_identity_check`), proving the shared plan
        cache never substitutes a stale plan.
        """
        serial = self.run_serial(items)
        concurrent = self.run_concurrent(items, num_threads=num_threads)
        if len(serial) != len(concurrent):
            raise EngineError(
                f"equivalence_report got {len(serial)} serial but "
                f"{len(concurrent)} concurrent result(s) for "
                f"{len(items)} item(s); refusing to zip-truncate the diff"
            )
        report = EquivalenceReport()
        for index, (ser, conc) in enumerate(zip(serial, concurrent)):
            serial_reads = ser.result.runstats.physical_reads
            concurrent_reads = conc.result.runstats.physical_reads
            plans_match, cache_event = self._plan_identity_check(items[index])
            report.comparisons.append(
                QueryComparison(
                    index=index,
                    rows_match=ser.result.rows == conc.result.rows,
                    physical_reads_match=serial_reads == concurrent_reads,
                    observations_match=(
                        _observation_signature(ser)
                        == _observation_signature(conc)
                    ),
                    serial_physical_reads=serial_reads,
                    concurrent_physical_reads=concurrent_reads,
                    plans_match=plans_match,
                    cache_event=cache_event,
                )
            )
        return report

    # ------------------------------------------------------------------
    def harvest_observations(
        self, observations: Sequence[PageCountObservation]
    ) -> int:
        """Apply one harvested observation batch to the shared store.

        The coordinator-side entry point for feedback that was collected
        *elsewhere* (a worker process) and travelled back over the
        marshalling protocol: the whole batch lands atomically under the
        engine's feedback write lock, advancing the epoch exactly once —
        the same contract as
        :meth:`repro.shard.ShardedFeedbackStore.record_shard_runs`.  A
        batch with zero answerable observations is a complete no-op (no
        epoch bump), so derived caches stay valid.  Returns how many
        observations were stored.
        """
        with self._feedback_lock:
            return self.feedback.record_observations(observations)

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Engine-level health report: plan-cache counters and the shared
        feedback store's epoch — the numbers the repeated-query benchmark
        and the CI plan-cache smoke read off."""
        lines = [
            f"feedback: {len(self.feedback)} record(s), "
            f"epoch={self.feedback.epoch}"
        ]
        if self.plan_cache is None:
            lines.append("plan-cache: disabled")
        else:
            lines.append(self.plan_cache.stats.render())
        return "\n".join(lines)
