"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [name ...] [--scale S] [--seed N]`` — regenerate the paper's
  tables/figures (all of them by default) and print the series;
* ``explain "<SQL>" [--rows N]`` — show all candidate plans for a COUNT
  query against a freshly built synthetic database;
* ``diagnose "<SQL>" [--rows N] [--feedback PATH]`` — run the query with
  page-count monitoring, print the statistics-xml-style output and the
  estimate-vs-actual report, recommend a plan hint, and optionally
  persist the gathered feedback;
* ``inventory [--scale S]`` — print Table I's database inventory;
* ``analyze [--strict] [--json] [--rules ...] [--plans] [--dataflow]
  [--changed-only] [paths]`` — run the three-tier static analysis
  (codebase rules R001–R010; with ``--dataflow`` also the interprocedural
  concurrency/flow rules C001–C003 and F001–F003; with ``--plans`` also
  the plan-linter rules P001–P006 over a synthetic workload's plans);
* ``serve [--host H] [--port P] ...`` — run the NDJSON-over-TCP query
  service over a synthetic database (Ctrl-C drains and stops);
* ``loadgen [--clients N] [--warm] [--connect HOST:PORT] ...`` — the
  closed-loop load generator, in-process by default or against a running
  ``serve``.

The synthetic database commands exist so the tool is usable out of the
box; programmatic users point the same APIs at their own ``Database``.
Unknown subcommands return exit code 2 (argparse's convention), also when
``main()`` is called programmatically.
"""

from __future__ import annotations

import argparse
import sys


def _add_figures(subparsers) -> None:
    parser = subparsers.add_parser(
        "figures", help="regenerate the paper's tables/figures"
    )
    parser.add_argument("names", nargs="*", help="subset, e.g. fig6 fig10")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--rows", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--exec-mode",
        choices=["row", "batch", "columnar"],
        default="row",
        help="execution drive for fig6/fig8 (results identical, batch is "
        "faster); the other figure drivers are mode-agnostic",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run fig6 over an N-shard scatter-gather deployment "
        "(same plan transitions, merged-makespan times)",
    )


def _add_query_command(subparsers, name: str, help_text: str) -> None:
    parser = subparsers.add_parser(name, help=help_text)
    parser.add_argument("sql", help="a COUNT query over the synthetic table t")
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=42)
    if name == "diagnose":
        parser.add_argument(
            "--feedback",
            default=None,
            help="path to persist the gathered feedback store (JSON)",
        )
        parser.add_argument(
            "--exec-mode",
            choices=["row", "batch", "columnar"],
            default="row",
            help="row-at-a-time iterator (default) or page-at-a-time batches",
        )


def _cmd_figures(args) -> int:
    from repro.harness import (
        run_fig6_fig7,
        run_fig8,
        run_fig9,
        run_fig10,
        run_fig11,
        run_reopt_ab,
        run_table1,
    )

    drivers = {
        "table1": lambda: run_table1(scale=args.scale, seed=args.seed),
        "fig6": lambda: run_fig6_fig7(
            num_rows=args.rows,
            queries_per_column=6,
            seed=args.seed,
            exec_mode=args.exec_mode,
            shards=args.shards,
        ),
        "fig8": lambda: run_fig8(
            num_rows=args.rows,
            queries_per_column=4,
            seed=args.seed,
            exec_mode=args.exec_mode,
        ),
        "fig9": lambda: run_fig9(num_rows=args.rows, seed=args.seed),
        "fig10": lambda: run_fig10(
            scale=args.scale, probes_per_column=3, seed=args.seed
        ),
        "fig11": lambda: run_fig11(
            scale=args.scale, queries_per_column=3, seed=args.seed
        ),
        # Mid-query re-optimization A/B (ride the misestimated plan vs
        # switch at a checkpoint); always batch-driven — the page
        # boundaries are what make the trip/resume semantics exact.
        "reopt": lambda: run_reopt_ab(
            num_rows=args.rows, queries_per_column=3, seed=args.seed
        ),
    }
    names = args.names or list(drivers)
    unknown = [n for n in names if n not in drivers]
    if unknown:
        print(f"unknown figures {unknown}; choose from {list(drivers)}")
        return 2
    from repro.harness.timing import Stopwatch

    for name in names:
        watch = Stopwatch()
        result = drivers[name]()
        print("=" * 78)
        print(result.render())
        print(f"[{name} regenerated in {watch.elapsed_seconds:.1f}s]\n")
    return 0


def _build_synthetic(args):
    from repro.workloads import build_synthetic_database

    print(
        f"building synthetic database ({args.rows} rows, seed {args.seed})...",
        file=sys.stderr,
    )
    return build_synthetic_database(
        num_rows=args.rows, seed=args.seed, with_copy=True
    )


def _cmd_explain(args) -> int:
    from repro.lifecycle.plan import build_optimizer
    from repro.sql import parse_query

    database = _build_synthetic(args)
    query = parse_query(args.sql)
    print(build_optimizer(database).explain(query))
    return 0


def _cmd_diagnose(args) -> int:
    from repro.core.diagnostics import diagnose, recommend_hint
    from repro.harness.methodology import default_requests
    from repro.session import Session
    from repro.sql import parse_query

    database = _build_synthetic(args)
    query = parse_query(args.sql)
    session = Session(database)
    requests = default_requests(database, query)
    executed = session.run(query, requests=requests, exec_mode=args.exec_mode)
    print(executed.result.runstats.render())
    print()
    report = diagnose(
        query.describe(),
        executed.plan,
        executed.observations,
        optimizer=session.optimizer(),
        query=query,
        lint_findings=session.lint_findings,
    )
    print(report.render())
    hint = recommend_hint(database, query, executed.observations)
    if hint is None:
        print("\nno plan change recommended")
    else:
        print(f"\nrecommended hint: {hint}")
        hinted = session.run(query, hint=hint, exec_mode=args.exec_mode)
        speedup = (executed.elapsed_ms - hinted.elapsed_ms) / executed.elapsed_ms
        print(
            f"hinted run: {hinted.elapsed_ms:.2f}ms vs {executed.elapsed_ms:.2f}ms "
            f"(SpeedUp {speedup:.0%})"
        )
    if args.feedback:
        session.remember(executed)
        session.feedback.save(args.feedback)
        print(f"feedback persisted to {args.feedback}")
    return 0


def _cmd_inventory(args) -> int:
    from repro.harness import run_table1

    print(run_table1(scale=args.scale, seed=args.seed).render())
    return 0


def _add_analyze(subparsers) -> None:
    parser = subparsers.add_parser(
        "analyze",
        help="run the three-tier static analysis (see docs/static_analysis.md)",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"])
    parser.add_argument("--json", action="store_true")
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero on any finding"
    )
    parser.add_argument("--rules", default=None)
    parser.add_argument(
        "--plans",
        action="store_true",
        help="also lint a synthetic workload's candidate plans",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the Tier-3 interprocedural dataflow rules",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="restrict source checks to files changed versus --changed-base",
    )
    parser.add_argument("--changed-base", default="HEAD", metavar="REF")


def _cmd_analyze(args) -> int:
    from repro.analysis.cli import main as analysis_main

    argv = list(args.paths)
    for flag in ("json", "strict", "plans", "dataflow", "changed_only"):
        if getattr(args, flag):
            argv.append("--" + flag.replace("_", "-"))
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.changed_base != "HEAD":
        argv.extend(["--changed-base", args.changed_base])
    return analysis_main(argv)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve", help="run the NDJSON-over-TCP query service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7433, help="0 picks an ephemeral port"
    )
    parser.add_argument("--rows", type=int, default=50_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument("--max-queue-depth", type=int, default=32)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="serve from an N-shard scatter-gather deployment",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="execute on N worker processes (each rebuilds the seeded "
        "database; feedback stays centralized in the coordinator); "
        "0 = in-process execution",
    )
    parser.add_argument(
        "--reopt",
        action="store_true",
        help="run monitored in-process queries under the mid-query "
        "re-optimization watchdog by default (per-request 'reopt' "
        "still wins; ignored on the worker-process tier)",
    )


def _build_engine(database, shards: int):
    """An Engine, or the Engine-shaped ShardCoordinator when sharded."""
    from repro.engine import Engine

    if shards > 1:
        from repro.shard import ShardCoordinator

        print(f"partitioning into {shards} range shards...", file=sys.stderr)
        return ShardCoordinator(database, num_shards=shards)
    return Engine(database)


def _build_worker_pool(args, engine):
    """A WorkerPool for ``--workers N``, or ``None`` when disabled.

    Workers rebuild the same synthetic database the coordinator holds
    (same factory, same kwargs), which is what keeps the equivalence
    diff at zero.  Mutually exclusive with ``--shards``: the worker tier
    harvests into one authoritative engine-owned feedback store, which
    the scatter-gather coordinator replaces with its own merge path.
    """
    workers = getattr(args, "workers", 0)
    if workers <= 0:
        return None
    if getattr(args, "shards", 1) > 1:
        raise SystemExit(
            "--workers and --shards are mutually exclusive; pick one "
            "scaling axis"
        )
    from repro.service import WorkerPool, WorkerSpec

    print(f"spawning {workers} worker process(es)...", file=sys.stderr)
    return WorkerPool(
        WorkerSpec(
            "repro.workloads:build_synthetic_database",
            {"num_rows": args.rows, "seed": args.seed, "with_copy": True},
        ),
        num_workers=workers,
        engine=engine,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import QueryServer, QueryService

    database = _build_synthetic(args)
    engine = _build_engine(database, args.shards)
    service = QueryService(
        engine,
        max_in_flight=args.max_in_flight,
        max_queue_depth=args.max_queue_depth,
        reopt_by_default=args.reopt,
        worker_pool=_build_worker_pool(args, engine),
    )
    server = QueryServer(service, host=args.host, port=args.port)

    async def run() -> None:
        host, port = await server.start()
        print(
            f"serving on {host}:{port} — newline-delimited JSON; "
            'send {"kind":"stats"} for telemetry; Ctrl-C drains and stops'
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("stopped", file=sys.stderr)
    return 0


def _add_loadgen(subparsers) -> None:
    parser = subparsers.add_parser(
        "loadgen", help="closed-loop load generator for the query service"
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--passes", type=int, default=3)
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--warm",
        action="store_true",
        help="pre-harvest feedback and optimize with it (in-process only)",
    )
    parser.add_argument("--exec-mode", choices=["row", "batch", "columnar"], default="row")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="target a running `serve` instead of an in-process service",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="drive an in-process N-shard deployment (serial diff then "
        "compares rows only; see diff_against_serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="execute on N worker processes behind the admission "
        "controller (in-process service only); 0 = single process",
    )
    parser.add_argument(
        "--reopt",
        action="store_true",
        help="mark every request for mid-query re-optimization (the "
        "serial equivalence diff then skips read-count comparison on "
        "tripped responses; rows must still match)",
    )


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.harness.loadgen import (
        DEFAULT_WORKLOAD_SQL,
        LoadSpec,
        diff_against_serial,
        run_closed_loop,
        run_closed_loop_tcp,
        workload_items,
    )

    spec = LoadSpec(
        concurrency=args.clients,
        passes=args.passes,
        exec_mode=args.exec_mode,
        use_feedback=args.warm,
        reopt=args.reopt,
        deadline_ms=args.deadline_ms,
    )

    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"--connect needs HOST:PORT, got {args.connect!r}")
            return 2
        report = asyncio.run(run_closed_loop_tcp(host, int(port_text), spec))
        print(report.render())
        return 1 if report.leaked else 0

    from repro.engine import WorkloadItem
    from repro.service import QueryService

    database = _build_synthetic(args)
    engine = _build_engine(database, args.shards)
    if args.warm:
        for item in workload_items(database, DEFAULT_WORKLOAD_SQL):
            engine.execute(
                WorkloadItem(
                    query=item.query, requests=item.requests, remember=True
                )
            )

    worker_pool = _build_worker_pool(args, engine)

    async def run():
        service = QueryService(
            engine,
            max_in_flight=args.max_in_flight,
            max_queue_depth=max(args.clients, args.max_in_flight),
            worker_pool=worker_pool,
        )
        report = await run_closed_loop(service, spec)
        stats = await service.stats()
        await service.shutdown()
        return report, stats

    report, stats = asyncio.run(run())
    print(report.render())
    if stats.get("workers") is not None:
        from repro.harness.reporting import format_worker_table

        print(format_worker_table(stats["workers"]))
    if not args.warm:
        diffs = diff_against_serial(
            database, report, rows_only=args.shards > 1
        )
        print(f"equivalence diffs vs serial replay: {len(diffs)}")
        for diff in diffs[:5]:
            print(f"  {diff}")
        if diffs:
            return 1
    if report.leaked:
        print(f"LEAK: {report.leaked}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Page-count execution-feedback reproduction (ICDE 2008)",
        epilog=(
            "tier-1 verify: PYTHONPATH=src python -m pytest -x -q "
            "(run from the repo root before shipping changes)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_figures(subparsers)
    _add_query_command(subparsers, "explain", "show all candidate plans")
    _add_query_command(
        subparsers, "diagnose", "monitor, report estimate-vs-actual, hint"
    )
    inventory = subparsers.add_parser("inventory", help="print Table I")
    inventory.add_argument("--scale", type=float, default=0.25)
    inventory.add_argument("--seed", type=int, default=3)
    _add_analyze(subparsers)
    _add_serve(subparsers)
    _add_loadgen(subparsers)

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on unknown subcommands/bad flags (0 for
        # --help); surface that as a return code so programmatic callers
        # of main() see the same convention as the shell.
        code = exc.code
        return code if isinstance(code, int) else 2

    handlers = {
        "figures": _cmd_figures,
        "explain": _cmd_explain,
        "diagnose": _cmd_diagnose,
        "inventory": _cmd_inventory,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
