"""Index plans: Index Seek and Index Intersection, with their Fetch step.

These are the *index plans* of §III-A.  The Fetch step requests rows by
locator, so the storage engine resolves each locator to a page — the page
id stream the :class:`~repro.core.monitors.FetchMonitorBundle` feeds into
linear counters (Fig. 3).  Grouped page access does **not** hold here
(Fig. 2), which is exactly why probabilistic counting is used instead of
the per-page flag counters of scan plans.

The residual predicate (terms not implied by the seek range) is evaluated
on the fetched row inside the storage engine, in plan order with
short-circuiting; monitored expressions must be prefixes of that order
(the planner enforces this — see §II-B's Index Seek discussion).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.monitors import FetchMonitorBundle
from repro.exec import vector
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction
from repro.storage.table import Table


class _FetchResidualMixin:
    """Shared batch drive for operators that fetch rows then filter them."""

    table: Table
    residual: Conjunction
    bundle: Optional[FetchMonitorBundle]
    monitor_full_eval: bool

    def _fetch_batches(
        self, ctx: ExecutionContext, fetch_iter: Iterator[tuple[Any, tuple]]
    ) -> Iterator[RowBatch]:
        """Chunk a ``(page_id, row)`` fetch stream through compiled kernels.

        Accounting and monitor feeds are totals-identical to the row loop:
        one ``charge_rows(n)`` per chunk, the residual evaluated with the
        same short-circuit setting, and the fetch bundle observing the
        same (page id, truth) pairs.  In columnar mode the chunks are
        transposed into column vectors and run through whole-vector
        kernels instead.
        """
        if ctx.vectorized:
            yield from self._fetch_batches_columnar(ctx, fetch_iter)
            return
        io = ctx.io
        compiled = BoundConjunction(
            self.residual, self.table.schema.column_names
        ).compile()
        short_circuit = not self.monitor_full_eval
        bundle = self.bundle
        stats = self.stats
        chunk_size = ctx.batch_rows
        pages_seen: set[int] = set()
        rows_buf: list[tuple] = []
        page_ids: list[Any] = []

        def flush() -> list[tuple]:
            io.charge_rows(len(rows_buf))
            outcome = compiled.evaluate_batch(rows_buf, short_circuit=short_circuit)
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            if bundle is not None:
                bundle.observe_fetch_batch(page_ids, outcome, io)
            out = [row for row, ok in zip(rows_buf, outcome.passed) if ok]
            stats.actual_rows += len(out)
            return out

        for page_id, row in fetch_iter:
            pages_seen.add(int(page_id))
            rows_buf.append(row)
            page_ids.append(page_id)
            if len(rows_buf) >= chunk_size:
                ctx.checkpoint()
                out = flush()
                if out:
                    yield RowBatch(out)
                rows_buf, page_ids = [], []
        if rows_buf:
            out = flush()
            if out:
                yield RowBatch(out)
        stats.pages_touched = len(pages_seen)

    def _fetch_batches_columnar(
        self, ctx: ExecutionContext, fetch_iter: Iterator[tuple[Any, tuple]]
    ) -> Iterator[RowBatch]:
        """Columnar chunk drive for a ``(page_id, row)`` fetch stream."""
        io = ctx.io
        width = len(self.table.schema.column_names)
        compiled = BoundConjunction(
            self.residual, self.table.schema.column_names
        ).compile()
        short_circuit = not self.monitor_full_eval
        bundle = self.bundle
        stats = self.stats
        chunk_size = ctx.batch_rows
        pages_seen: set[int] = set()
        rows_buf: list[tuple] = []
        page_ids: list[Any] = []

        def flush() -> Optional[RowBatch]:
            num_rows = len(rows_buf)
            io.charge_rows(num_rows)
            chunk_columns = vector.columns_from_rows(rows_buf, width)
            outcome = compiled.evaluate_columns(
                chunk_columns, num_rows, short_circuit=short_circuit
            )
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            if bundle is not None:
                bundle.observe_fetch_columns(page_ids, outcome, io)
            selected = vector.mask_count(outcome.passed)
            stats.actual_rows += selected
            if not selected:
                return None
            if selected == num_rows:
                return RowBatch.from_columns(chunk_columns, num_rows=num_rows)
            filtered = tuple(
                vector.take(column, outcome.passed) for column in chunk_columns
            )
            return RowBatch.from_columns(filtered, num_rows=selected)

        for page_id, row in fetch_iter:
            pages_seen.add(int(page_id))
            rows_buf.append(row)
            page_ids.append(page_id)
            if len(rows_buf) >= chunk_size:
                ctx.checkpoint()
                batch = flush()
                if batch is not None:
                    yield batch
                rows_buf, page_ids = [], []
        if rows_buf:
            batch = flush()
            if batch is not None:
                yield batch
        stats.pages_touched = len(pages_seen)


class IndexSeekFetch(_FetchResidualMixin, Operator):
    """Non-clustered index range seek followed by row fetches."""

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        index_name: str,
        low: Optional[tuple],
        high: Optional[tuple],
        residual: Conjunction,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        bundle: Optional[FetchMonitorBundle] = None,
        monitor_full_eval: bool = False,
    ) -> None:
        super().__init__()
        self.table = table
        self.index = table.index(index_name)
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.residual = residual
        self.bundle = bundle
        self.monitor_full_eval = monitor_full_eval
        self.stats.detail = (
            f"{table.name}.{index_name} seek "
            f"{'[' if low_inclusive else '('}{low}, {high}"
            f"{']' if high_inclusive else ')'} residual [{residual.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        bound = BoundConjunction(self.residual, self.table.schema.column_names)
        io = ctx.io
        pages_seen: set[int] = set()
        for _key, rid, _payload in self.index.seek_range(
            io, self.low, self.high, self.low_inclusive, self.high_inclusive
        ):
            page_id, row = self.table.fetch(io, rid)
            if int(page_id) not in pages_seen:  # new data page fetched
                ctx.checkpoint()
            pages_seen.add(int(page_id))
            io.charge_rows(1)
            outcome = bound.evaluate(
                row, short_circuit=not self.monitor_full_eval
            )
            io.charge_predicates(outcome.evaluations)
            self.stats.predicate_evaluations += outcome.evaluations
            if self.bundle is not None:
                self.bundle.observe_fetch(page_id, outcome, io)
            if outcome.passed:
                self.stats.actual_rows += 1
                yield row
        self.stats.pages_touched = len(pages_seen)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        io = ctx.io
        fetches = (
            self.table.fetch(io, rid)
            for _key, rid, _payload in self.index.seek_range(
                io, self.low, self.high, self.low_inclusive, self.high_inclusive
            )
        )
        yield from self._fetch_batches(ctx, fetches)

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())


class IndexInListSeekFetch(_FetchResidualMixin, Operator):
    """IN-list seek: one equality probe per value, then fetch.

    The disjunctive equivalent of an Index Seek for ``col IN (v1..vk)``:
    values are probed in sorted order (so leaf access stays monotone) and
    every fetched row is guaranteed to satisfy the IN term, making the
    term *guaranteed* for monitoring purposes, exactly like a seek range.
    """

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        index_name: str,
        values: tuple,
        residual: Conjunction,
        bundle: Optional[FetchMonitorBundle] = None,
        monitor_full_eval: bool = False,
    ) -> None:
        super().__init__()
        self.table = table
        self.index = table.index(index_name)
        self.values = tuple(sorted(set(values), key=repr))
        self.residual = residual
        self.bundle = bundle
        self.monitor_full_eval = monitor_full_eval
        self.stats.detail = (
            f"{table.name}.{index_name} IN ({len(self.values)} values) "
            f"residual [{residual.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        bound = BoundConjunction(self.residual, self.table.schema.column_names)
        io = ctx.io
        pages_seen: set[int] = set()
        for value in self.values:
            for _key, rid, _payload in self.index.seek_equal(io, value):
                page_id, row = self.table.fetch(io, rid)
                if int(page_id) not in pages_seen:
                    # First touch of a page is the cancellation boundary,
                    # matching the one-checkpoint-per-page contract.
                    ctx.checkpoint()
                pages_seen.add(int(page_id))
                io.charge_rows(1)
                outcome = bound.evaluate(
                    row, short_circuit=not self.monitor_full_eval
                )
                io.charge_predicates(outcome.evaluations)
                self.stats.predicate_evaluations += outcome.evaluations
                if self.bundle is not None:
                    self.bundle.observe_fetch(page_id, outcome, io)
                if outcome.passed:
                    self.stats.actual_rows += 1
                    yield row
        self.stats.pages_touched = len(pages_seen)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        io = ctx.io

        def fetches() -> Iterator[tuple[Any, tuple]]:
            for value in self.values:
                for _key, rid, _payload in self.index.seek_equal(io, value):
                    yield self.table.fetch(io, rid)

        yield from self._fetch_batches(ctx, fetches())

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())


class SeekSpec:
    """One index-range leg of an intersection plan."""

    __slots__ = ("index_name", "low", "high", "low_inclusive", "high_inclusive")

    def __init__(
        self,
        index_name: str,
        low: Optional[tuple],
        high: Optional[tuple],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.index_name = index_name
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def __repr__(self) -> str:
        return f"SeekSpec({self.index_name}: {self.low}..{self.high})"


class IndexIntersectionFetch(_FetchResidualMixin, Operator):
    """Intersect the RID sets of two or more index seeks, then fetch.

    RIDs are fetched in (page, slot) order after the intersection — the
    standard engine behaviour, which also makes the fetch stream mildly
    page-clustered; the linear counters are order-insensitive either way.
    """

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        seeks: list[SeekSpec],
        residual: Conjunction,
        bundle: Optional[FetchMonitorBundle] = None,
        monitor_full_eval: bool = False,
    ) -> None:
        super().__init__()
        if len(seeks) < 2:
            raise ValueError("index intersection needs at least two seeks")
        self.table = table
        self.seeks = seeks
        self.residual = residual
        self.bundle = bundle
        self.monitor_full_eval = monitor_full_eval
        self.stats.detail = (
            f"{table.name} intersect "
            + " & ".join(s.index_name for s in seeks)
            + f" residual [{residual.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def _intersect_rids(self, io) -> list:
        """Run the seek legs, charge the RID hashing, return sorted RIDs."""
        rid_sets = []
        for spec in self.seeks:
            index = self.table.index(spec.index_name)
            rids = {
                rid
                for _key, rid, _payload in index.seek_range(
                    io, spec.low, spec.high, spec.low_inclusive, spec.high_inclusive
                )
            }
            rid_sets.append(rids)
        intersection = set.intersection(*rid_sets)
        # Hashing RIDs during the intersection is CPU work.
        io.charge_hashes(sum(len(s) for s in rid_sets))
        return sorted(intersection, key=lambda r: (r.page_id, r.slot))

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        io = ctx.io
        sorted_rids = self._intersect_rids(io)
        bound = BoundConjunction(self.residual, self.table.schema.column_names)
        pages_seen: set[int] = set()
        for rid in sorted_rids:
            page_id, row = self.table.fetch(io, rid)
            if int(page_id) not in pages_seen:
                # First touch of a page is the cancellation boundary,
                # matching the one-checkpoint-per-page contract.
                ctx.checkpoint()
            pages_seen.add(int(page_id))
            io.charge_rows(1)
            outcome = bound.evaluate(row, short_circuit=not self.monitor_full_eval)
            io.charge_predicates(outcome.evaluations)
            self.stats.predicate_evaluations += outcome.evaluations
            if self.bundle is not None:
                self.bundle.observe_fetch(page_id, outcome, io)
            if outcome.passed:
                self.stats.actual_rows += 1
                yield row
        self.stats.pages_touched = len(pages_seen)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        io = ctx.io
        fetches = (
            self.table.fetch(io, rid) for rid in self._intersect_rids(io)
        )
        yield from self._fetch_batches(ctx, fetches)

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())
