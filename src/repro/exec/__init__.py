"""Execution engine: Volcano-style operators with SE/RE separation."""

from repro.exec.aggregates import CountAggregate, GroupByCountAggregate
from repro.exec.base import ExecutionContext, Operator
from repro.exec.executor import QueryResult, execute
from repro.exec.joins import HashJoin, INLJoin, MergeJoin
from repro.exec.runstats import OperatorStats, RunStats
from repro.exec.scans import ClusteredRangeScan, CoveringIndexScan, SeqScan
from repro.exec.seeks import (
    IndexInListSeekFetch,
    IndexIntersectionFetch,
    IndexSeekFetch,
    SeekSpec,
)
from repro.exec.sorts import Filter, Sort

__all__ = [
    "ClusteredRangeScan",
    "CountAggregate",
    "CoveringIndexScan",
    "ExecutionContext",
    "Filter",
    "GroupByCountAggregate",
    "HashJoin",
    "INLJoin",
    "IndexInListSeekFetch",
    "IndexIntersectionFetch",
    "IndexSeekFetch",
    "MergeJoin",
    "Operator",
    "OperatorStats",
    "QueryResult",
    "RunStats",
    "SeekSpec",
    "SeqScan",
    "Sort",
    "execute",
]
