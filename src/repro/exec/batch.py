"""Row batches: the unit of exchange in page-at-a-time execution.

The Volcano row iterator (:meth:`~repro.exec.base.Operator.rows`) costs a
Python generator hop per row; at repro scale the simulator — not the
simulated I/O — dominates wall-clock.  Batch mode replaces the per-row
exchange with :class:`RowBatch` objects: storage-engine scans emit one
batch per *page* (so monitor page boundaries stay aligned with exchange
boundaries for free), relational-engine operators exchange fixed-size
chunks (:data:`DEFAULT_BATCH_ROWS`).

A batch is deliberately dumb: a list of row tuples plus the page id it
came from (``None`` for RE chunks).  All per-term truth bookkeeping lives
in :class:`~repro.sql.evaluator.BatchOutcome`, produced by the compiled
predicate kernels, so batches themselves carry no selection vectors —
operators emit batches of *surviving* rows only, exactly mirroring what
the row iterator would have yielded.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.common.types import PageId

#: Chunk size for relational-engine batches (SE scans batch per page).
DEFAULT_BATCH_ROWS = 1024


class RowBatch:
    """An ordered run of output rows from one operator.

    ``page_id`` is set when the batch corresponds to one storage-engine
    page (SE scans); relational-engine chunks leave it ``None``.  Rows are
    in the exact order the row iterator would have yielded them, which is
    what makes row-mode ≡ batch-mode equivalence checkable row-for-row.
    """

    __slots__ = ("rows", "page_id")

    def __init__(
        self, rows: list[tuple], page_id: Optional[PageId] = None
    ) -> None:
        self.rows = rows
        self.page_id = page_id

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        origin = f" page={int(self.page_id)}" if self.page_id is not None else ""
        return f"RowBatch({len(self.rows)} rows{origin})"


def chunk_rows(
    rows: Iterable[tuple], batch_rows: int = DEFAULT_BATCH_ROWS
) -> Iterator[RowBatch]:
    """Adapt a row stream into fixed-size :class:`RowBatch` chunks.

    The default :meth:`~repro.exec.base.Operator.batches` uses this so
    every operator is batch-drivable even before it gains a native batch
    implementation (the rows themselves still flow through the operator's
    row loop, so all accounting is unchanged).
    """
    chunk: list[tuple] = []
    append = chunk.append
    for row in rows:
        append(row)
        if len(chunk) >= batch_rows:
            yield RowBatch(chunk)
            chunk = []
            append = chunk.append
    if chunk:
        yield RowBatch(chunk)
