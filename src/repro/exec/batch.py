"""Row batches: the unit of exchange in page-at-a-time execution.

The Volcano row iterator (:meth:`~repro.exec.base.Operator.rows`) costs a
Python generator hop per row; at repro scale the simulator — not the
simulated I/O — dominates wall-clock.  Batch mode replaces the per-row
exchange with :class:`RowBatch` objects: storage-engine scans emit one
batch per *page* (so monitor page boundaries stay aligned with exchange
boundaries for free), relational-engine operators exchange fixed-size
chunks (:data:`DEFAULT_BATCH_ROWS`).

A batch carries one of two physical representations behind one logical
interface:

* **row-backed** — a list of row tuples, exactly as before;
* **column-backed** — a tuple of column vectors (one per output column,
  see :mod:`repro.exec.vector`) plus a row count.  Columnar scans build
  these straight from page column caches with zero copying on all-pass
  pages.

Either way the logical content is the same ordered run of rows the row
iterator would have yielded, which is what makes row ≡ batch ≡ columnar
equivalence checkable row-for-row.  ``batch.rows`` is the ``to_rows()``
shim: operators that have not been converted to columnar consumption
(joins, sorts, group-by) read it and transparently materialize Python
row tuples from the columns, caching the result.  All per-term truth
bookkeeping lives in the evaluator outcomes
(:class:`~repro.sql.evaluator.BatchOutcome`,
:class:`~repro.sql.evaluator.VectorOutcome`), so batches themselves
carry no selection vectors — operators emit batches of *surviving* rows
only.

Column vectors held by a batch are read-only by contract: all-pass pages
hand out the page's cached column tuple without copying.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.common.types import PageId
from repro.exec import vector

#: Chunk size for relational-engine batches (SE scans batch per page).
DEFAULT_BATCH_ROWS = 1024


class RowBatch:
    """An ordered run of output rows from one operator.

    ``page_id`` is set when the batch corresponds to one storage-engine
    page (SE scans); relational-engine chunks leave it ``None``.

    Construct row-backed batches positionally (``RowBatch(rows, page_id)``,
    unchanged from the list-of-tuples era) and column-backed batches via
    :meth:`from_columns`.
    """

    __slots__ = ("_rows", "_columns", "_num_rows", "page_id")

    def __init__(
        self,
        rows: Optional[list[tuple]] = None,
        page_id: Optional[PageId] = None,
        *,
        columns: Optional[tuple] = None,
        num_rows: Optional[int] = None,
    ) -> None:
        if rows is None and columns is None:
            rows = []
        self._rows = rows
        self._columns = columns
        self.page_id = page_id
        if num_rows is not None:
            self._num_rows = num_rows
        elif rows is not None:
            self._num_rows = len(rows)
        else:
            assert columns is not None
            self._num_rows = (
                vector.column_length(columns[0]) if columns else 0
            )

    @classmethod
    def from_columns(
        cls,
        columns: Sequence,
        page_id: Optional[PageId] = None,
        num_rows: Optional[int] = None,
    ) -> "RowBatch":
        """Build a column-backed batch from column vectors."""
        return cls(page_id=page_id, columns=tuple(columns), num_rows=num_rows)

    @property
    def is_columnar(self) -> bool:
        """True when the batch holds column vectors (rows not materialized)."""
        return self._columns is not None

    @property
    def rows(self) -> list[tuple]:
        """Row tuples, materializing from columns on first access (the shim)."""
        if self._rows is None:
            self._rows = self.to_rows()
        return self._rows

    @property
    def columns(self) -> tuple:
        """Column vectors, transposing from rows on first access."""
        if self._columns is None:
            width = len(self._rows[0]) if self._rows else 0
            self._columns = vector.columns_from_rows(self._rows, width)
        return self._columns

    def column(self, position: int):
        """One column vector by output-column position."""
        return self.columns[position]

    def to_rows(self) -> list[tuple]:
        """Materialize row tuples of Python scalars (no caching)."""
        if self._rows is not None:
            return self._rows
        assert self._columns is not None
        return vector.rows_from_columns(self._columns, self._num_rows)

    def __len__(self) -> int:
        return self._num_rows

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __repr__(self) -> str:
        origin = f" page={int(self.page_id)}" if self.page_id is not None else ""
        kind = "columnar" if self.is_columnar else "rows"
        return f"RowBatch({self._num_rows} {kind}{origin})"


def chunk_rows(
    rows: Iterable[tuple], batch_rows: int = DEFAULT_BATCH_ROWS
) -> Iterator[RowBatch]:
    """Adapt a row stream into fixed-size :class:`RowBatch` chunks.

    The default :meth:`~repro.exec.base.Operator.batches` uses this so
    every operator is batch-drivable even before it gains a native batch
    implementation (the rows themselves still flow through the operator's
    row loop, so all accounting is unchanged).
    """
    chunk: list[tuple] = []
    append = chunk.append
    for row in rows:
        append(row)
        if len(chunk) >= batch_rows:
            yield RowBatch(chunk)
            chunk = []
            append = chunk.append
    if chunk:
        yield RowBatch(chunk)
