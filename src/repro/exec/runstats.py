"""Per-operator runtime statistics — our "statistics xml" mode.

SQL Server's ``statistics xml`` mode returns the executed plan annotated
with actual row counts per operator; the paper's prototype extends it with
estimated and actual distinct page counts per requested expression (§II-C,
§V-A).  :class:`RunStats` is our equivalent: a tree of
:class:`OperatorStats` plus the list of page-count observations, renderable
as an indented text report (:meth:`RunStats.render`) or a nested dict
(:meth:`RunStats.to_dict`) for programmatic consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.requests import PageCountObservation


@dataclass
class OperatorStats:
    """Counters for one operator in the executed plan."""

    operator: str
    detail: str = ""
    estimated_rows: Optional[float] = None
    actual_rows: int = 0
    pages_touched: int = 0
    predicate_evaluations: int = 0
    children: list["OperatorStats"] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        node: dict[str, Any] = {
            "operator": self.operator,
            "actual_rows": self.actual_rows,
        }
        if self.detail:
            node["detail"] = self.detail
        if self.estimated_rows is not None:
            node["estimated_rows"] = self.estimated_rows
        if self.pages_touched:
            node["pages_touched"] = self.pages_touched
        if self.predicate_evaluations:
            node["predicate_evaluations"] = self.predicate_evaluations
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        parts = [f"{self.operator}"]
        if self.detail:
            parts.append(f"({self.detail})")
        if self.estimated_rows is not None:
            parts.append(f"est_rows={self.estimated_rows:.1f}")
        parts.append(f"rows={self.actual_rows}")
        if self.pages_touched:
            parts.append(f"pages={self.pages_touched}")
        line = "  " * indent + " ".join(parts)
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class RunStats:
    """Execution feedback for one query run."""

    root: OperatorStats
    elapsed_ms: float = 0.0
    io_ms: float = 0.0
    cpu_ms: float = 0.0
    random_reads: int = 0
    sequential_reads: int = 0
    #: Buffer-pool accesses this execution made (hits + physical reads),
    #: attributed to the run's own IOContext — not a global-pool delta.
    logical_reads: int = 0
    pool_hits: int = 0
    #: How the plan was driven: ``"row"`` (Volcano iterator), ``"batch"``
    #: (page-at-a-time RowBatch exchange with compiled predicate kernels)
    #: or ``"columnar"`` (column-vector batches with whole-vector kernels).
    execution_mode: str = "row"
    observations: list[PageCountObservation] = field(default_factory=list)
    #: Lifecycle observability, set by the staged query lifecycle: the
    #: per-stage trace (``stages``), the plan-cache outcome for this run
    #: (``cache_event``: hit/miss/coalesced/bypassed) and, when a shared
    #: cache is configured, its cumulative counters (``plan_cache``).
    #: Stored as plain data so the exec layer needs no lifecycle import.
    lifecycle: Optional[dict[str, Any]] = None

    @property
    def physical_reads(self) -> int:
        return self.random_reads + self.sequential_reads

    @property
    def warm_ratio(self) -> float:
        """Fraction of this run's logical reads served from the buffer
        pool; 0.0 when the run made no logical reads (see
        :attr:`~repro.storage.buffer.BufferPoolStats.hit_ratio`)."""
        if self.logical_reads == 0:
            return 0.0
        return self.pool_hits / self.logical_reads

    def observation_for(self, key: str) -> Optional[PageCountObservation]:
        """Look up an observation by its request key."""
        for observation in self.observations:
            if observation.key == key:
                return observation
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.root.to_dict(),
            "elapsed_ms": self.elapsed_ms,
            "io_ms": self.io_ms,
            "cpu_ms": self.cpu_ms,
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "logical_reads": self.logical_reads,
            "pool_hits": self.pool_hits,
            "warm_ratio": self.warm_ratio,
            "execution_mode": self.execution_mode,
            "page_counts": [
                {
                    "expression": obs.key,
                    "mechanism": obs.mechanism.value,
                    "answered": obs.answered,
                    "estimate": obs.estimate,
                    "exact": obs.exact,
                    "reason": obs.reason,
                }
                for obs in self.observations
            ],
            **({"lifecycle": self.lifecycle} if self.lifecycle else {}),
        }

    def _lifecycle_lines(self) -> list[str]:
        if not self.lifecycle:
            return []
        stages = self.lifecycle.get("stages", [])
        lines = [
            "lifecycle: "
            + " → ".join(f"{s['stage']}:{s['status']}" for s in stages)
        ]
        counters = self.lifecycle.get("plan_cache")
        if counters:
            lines.append(
                f"plan-cache[{self.lifecycle.get('cache_event', '?')}]: "
                f"hits={counters['hits']} misses={counters['misses']} "
                f"invalidations={counters['invalidations']} "
                f"builds={counters['builds']} "
                f"coalesced={counters['coalesced']} "
                f"hit-rate={counters['hit_rate']:.1%}"
            )
        return lines

    def render(self) -> str:
        lines = [
            f"elapsed={self.elapsed_ms:.3f}ms (io={self.io_ms:.3f}, cpu={self.cpu_ms:.3f}) "
            f"reads: random={self.random_reads} sequential={self.sequential_reads} "
            f"logical={self.logical_reads} warm={self.warm_ratio:.1%} "
            f"mode={self.execution_mode}",
            *self._lifecycle_lines(),
            self.root.render(),
        ]
        if self.observations:
            lines.append("distinct page counts:")
            for obs in self.observations:
                if obs.answered:
                    qualifier = "exact" if obs.exact else "est"
                    lines.append(
                        f"  {obs.key} = {obs.estimate:.1f} "
                        f"[{qualifier}, {obs.mechanism.value}]"
                    )
                else:
                    lines.append(f"  {obs.key}: not available — {obs.reason}")
        return "\n".join(lines)
