"""Driving a physical operator tree to completion.

:func:`execute` runs a root operator to exhaustion under a fresh
:class:`~repro.exec.base.ExecutionContext`, finalizes monitors (the
end-of-stream step every counting mechanism needs) and assembles the
:class:`~repro.exec.runstats.RunStats` feedback — rows, simulated timings,
I/O counters and page-count observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Database
from repro.exec.base import ExecutionContext, Operator
from repro.exec.runstats import RunStats


@dataclass
class QueryResult:
    """Rows plus execution feedback for one query run."""

    rows: list[tuple]
    runstats: RunStats
    columns: tuple[str, ...] = field(default_factory=tuple)

    @property
    def elapsed_ms(self) -> float:
        return self.runstats.elapsed_ms

    def scalar(self):
        """The single value of a one-row/one-column result (COUNT queries)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} rows"
            )
        return self.rows[0][0]


def execute(
    root: Operator, database: Database, cold_cache: bool = True
) -> QueryResult:
    """Run ``root`` to completion against ``database``.

    ``cold_cache=True`` empties the buffer pool first, matching the
    paper's measurement methodology; the clock keeps running across calls,
    so timings are taken as before/after deltas.
    """
    if cold_cache:
        database.cold_cache()
    ctx = ExecutionContext(database=database)
    before = database.clock.snapshot()
    rows = list(root.rows(ctx))
    root.finalize(ctx)
    delta = before.delta(database.clock.snapshot())
    runstats = RunStats(
        root=root.collect_stats(),
        elapsed_ms=delta.total_ms,
        io_ms=delta.io_ms,
        cpu_ms=delta.cpu_ms,
        random_reads=delta.random_reads,
        sequential_reads=delta.sequential_reads,
        observations=list(ctx.observations),
    )
    return QueryResult(rows=rows, runstats=runstats, columns=root.output_columns)
