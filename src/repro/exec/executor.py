"""Driving a physical operator tree to completion.

:func:`execute` runs a root operator to exhaustion under a fresh
:class:`~repro.exec.base.ExecutionContext`, finalizes monitors (the
end-of-stream step every counting mechanism needs) and assembles the
:class:`~repro.exec.runstats.RunStats` feedback — rows, simulated timings,
I/O counters and page-count observations.

Accounting is per-execution: the run charges an
:class:`~repro.storage.accounting.IOContext` of its own and ``RunStats``
are read directly off it, so concurrent executions (each with its own
context) cannot corrupt each other's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.catalog import Database
from repro.common.cancellation import CancellationToken
from repro.exec.base import ExecutionContext, ExecutionWatchdog, Operator
from repro.exec.runstats import RunStats
from repro.storage.accounting import IOContext

#: Row-mode cancellation granularity: the checked drive loop consults the
#: token every this-many output rows (batch mode checks at every batch —
#: i.e. page — boundary instead).  Small enough that a timed-out scan
#: stops within one page's worth of output, large enough that the check
#: is invisible next to per-row simulation costs.
CANCELLATION_CHECK_ROWS = 64


@dataclass
class QueryResult:
    """Rows plus execution feedback for one query run."""

    rows: list[tuple]
    runstats: RunStats
    columns: tuple[str, ...] = field(default_factory=tuple)

    @property
    def elapsed_ms(self) -> float:
        return self.runstats.elapsed_ms

    def scalar(self):
        """The single value of a one-row/one-column result (COUNT queries)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            num_columns = len(self.rows[0]) if self.rows else 0
            raise ValueError(
                f"scalar() needs a 1x1 result, got {len(self.rows)} row(s) "
                f"x {num_columns} column(s)"
            )
        return self.rows[0][0]


def _drive_checked(
    root: Operator, ctx: ExecutionContext, mode: str, token: CancellationToken
) -> list[tuple]:
    """Drive the tree with cancellation checkpoints at exchange boundaries.

    Batch mode checks once per batch — one storage page at scan leaves, so
    a cancelled scan stops at the next page boundary.  Row mode checks
    every :data:`CANCELLATION_CHECK_ROWS` output rows.  Raising
    :class:`~repro.common.errors.QueryCancelled` abandons the generators
    mid-stream: the run stops charging its IOContext immediately and no
    end-of-stream monitor observations are produced (so a later harvest
    of a partial run cannot happen — the exception skips it).
    """
    rows: list[tuple] = []
    token.checkpoint()
    if mode != "row":  # batch and columnar share the batch exchange drive
        for batch in root.batches(ctx):
            token.checkpoint()
            rows.extend(batch.rows)
        return rows
    check_interval = CANCELLATION_CHECK_ROWS
    for row in root.rows(ctx):
        rows.append(row)
        if len(rows) % check_interval == 0:
            token.checkpoint()
    return rows


def execute(
    root: Operator,
    database: Database,
    cold_cache: bool = True,
    io: Optional[IOContext] = None,
    mode: str = "row",
    cancellation: Optional[CancellationToken] = None,
    watchdog: Optional[ExecutionWatchdog] = None,
) -> QueryResult:
    """Run ``root`` to completion against ``database``.

    ``io`` is the execution's accounting context; by default a fresh
    shared-pool context is created, so every call starts from zeroed
    counters.  With a shared-pool context, ``cold_cache=True`` empties the
    shared buffer pool first (the paper's measurement methodology) and the
    run leaves the pool warm for a subsequent ``cold_cache=False`` call.
    An *isolated* context brings its own cold private frames, so the
    shared pool is left untouched — that is the concurrent-execution path.

    ``mode`` selects the drive style: ``"row"`` pulls the Volcano row
    iterator, ``"batch"`` pulls page-at-a-time
    :class:`~repro.exec.batch.RowBatch` exchange with compiled predicate
    kernels, and ``"columnar"`` pulls the same batch exchange with
    column-vector batches and whole-vector kernels (NumPy-backed when
    available; see :mod:`repro.exec.vector`).  All three produce
    identical rows, observations and read counts (the equivalence
    harness in :mod:`repro.harness.equivalence` checks).

    ``cancellation`` opts the run into cooperative cancellation: the drive
    loop consults the token at page/batch boundaries and raises
    :class:`~repro.common.errors.QueryCancelled` once it is cancelled.
    The default ``None`` keeps the unchecked fast path bit-identical to a
    token-less run.

    ``watchdog`` attaches a checkpoint-boundary observer (the reopt
    regret watchdog): it sees every ``ctx.checkpoint()`` the operators
    hit and can trip the cancellation token, which is why it requires
    one — an observer with nothing to trip could never act.
    """
    if mode not in ("row", "batch", "columnar"):
        raise ValueError(
            f"unknown execution mode {mode!r}; expected row|batch|columnar"
        )
    if watchdog is not None and cancellation is None:
        raise ValueError(
            "a watchdog needs a cancellation token to act through"
        )
    if io is None:
        io = database.new_io_context()
    if cold_cache and not io.isolated:
        database.cold_cache()
    ctx = ExecutionContext(
        database=database,
        io=io,
        vectorized=(mode == "columnar"),
        cancellation=cancellation,
        watchdog=watchdog,
    )
    if cancellation is not None:
        rows = _drive_checked(root, ctx, mode, cancellation)
    elif mode != "row":
        rows = [row for batch in root.batches(ctx) for row in batch.rows]
    else:
        rows = list(root.rows(ctx))
    root.finalize(ctx)
    runstats = RunStats(
        root=root.collect_stats(),
        elapsed_ms=io.elapsed_ms,
        io_ms=io.io_ms,
        cpu_ms=io.cpu_ms,
        random_reads=io.random_reads,
        sequential_reads=io.sequential_reads,
        logical_reads=io.logical_reads,
        pool_hits=io.pool_hits,
        execution_mode=mode,
        observations=list(ctx.observations),
    )
    return QueryResult(rows=rows, runstats=runstats, columns=root.output_columns)
