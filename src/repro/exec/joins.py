"""Join operators: Index Nested Loops, Hash Join and Merge Join (§IV).

The monitoring story differs per method, mirroring the paper:

* **INL Join** — the inner side is fetched through an index, so the inner
  fetch stream carries page ids; a
  :class:`~repro.core.monitors.FetchMonitorBundle` with a linear counter
  observes it directly (like an Index Seek).

* **Hash Join** — the join predicate is evaluated in the relational
  engine, where page ids are invisible.  When monitoring is requested the
  planner hands the operator a :class:`~repro.core.bitvector.BitVectorFilter`;
  the build phase inserts every build-side join value (the SE→RE callback
  of §V-A), and the probe-side *scan* probes the filter on sampled pages
  as a derived semi-join predicate (Fig. 5).

* **Merge Join** — same bit-vector idea; with a blocking Sort on the outer
  the vector is complete before the inner is pulled ("blocking" mode), and
  with pre-sorted inputs a :class:`~repro.core.bitvector.PartialBitVectorFilter`
  fills incrementally as the outer advances ("partial" mode), sound
  because a merge join never advances the inner past the outer's current
  key.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.common.errors import ExecutionError
from repro.core.bitvector import BitVectorFilter, PartialBitVectorFilter
from repro.core.monitors import FetchMonitorBundle
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction
from repro.storage.table import Table


def _position_of(columns: tuple[str, ...], name: str) -> int:
    """Resolve ``name`` in an output-column list, accepting a bare column
    name when the list is qualified (``t.c``) and unambiguous."""
    if name in columns:
        return columns.index(name)
    suffix_matches = [i for i, c in enumerate(columns) if c.endswith(f".{name}")]
    if len(suffix_matches) == 1:
        return suffix_matches[0]
    raise ExecutionError(
        f"column {name!r} not found (or ambiguous) in {list(columns)}"
    )


class INLJoin(Operator):
    """Index Nested Loops join: stream the outer, seek the inner's index.

    ``inner_index_name=None`` means the inner table's *clustered* key is
    the join column, so fetches go straight to the clustered file.
    """

    engine_layer = "RE"  # the loop is RE; the inner fetch runs in SE

    def __init__(
        self,
        outer: Operator,
        outer_join_column: str,
        inner_table: Table,
        inner_join_column: str,
        inner_residual: Conjunction,
        inner_index_name: Optional[str] = None,
        outer_label: str = "outer",
        bundle: Optional[FetchMonitorBundle] = None,
    ) -> None:
        super().__init__()
        self.outer = outer
        self.outer_join_column = outer_join_column
        self.inner_table = inner_table
        self.inner_join_column = inner_join_column
        self.inner_residual = inner_residual
        self.inner_index_name = inner_index_name
        self.outer_label = outer_label
        self.bundle = bundle
        access = inner_index_name or "clustered-key"
        self.stats.detail = (
            f"inner={inner_table.name} via {access} on {inner_join_column}"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        outer_cols = tuple(
            c if "." in c else f"{self.outer_label}.{c}"
            for c in self.outer.output_columns
        )
        inner_cols = tuple(
            f"{self.inner_table.name}.{c}"
            for c in self.inner_table.schema.column_names
        )
        return outer_cols + inner_cols

    def children(self) -> list[Operator]:
        return [self.outer]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        io = ctx.io
        outer_pos = _position_of(self.outer.output_columns, self.outer_join_column)
        bound = BoundConjunction(
            self.inner_residual, self.inner_table.schema.column_names
        )
        use_clustered = self.inner_index_name is None
        if use_clustered:
            clustered = self.inner_table.clustered_file()
        else:
            index = self.inner_table.index(self.inner_index_name)
        for outer_row in self.outer.rows(ctx):
            ctx.checkpoint()
            value = outer_row[outer_pos]
            if value is None:
                continue
            if use_clustered:
                fetches = clustered.fetch_by_key(io, (value,))
            else:
                fetches = (
                    self.inner_table.fetch(io, rid)
                    for _key, rid, _payload in index.seek_equal(io, value)
                )
            for page_id, inner_row in fetches:
                io.charge_rows(1)
                outcome = bound.evaluate(inner_row, short_circuit=True)
                io.charge_predicates(outcome.evaluations)
                self.stats.predicate_evaluations += outcome.evaluations
                if self.bundle is not None:
                    self.bundle.observe_fetch(page_id, outcome, io)
                if outcome.passed:
                    self.stats.actual_rows += 1
                    yield outer_row + inner_row

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        io = ctx.io
        outer_pos = _position_of(self.outer.output_columns, self.outer_join_column)
        compiled = BoundConjunction(
            self.inner_residual, self.inner_table.schema.column_names
        ).compile()
        use_clustered = self.inner_index_name is None
        if use_clustered:
            clustered = self.inner_table.clustered_file()
        else:
            index = self.inner_table.index(self.inner_index_name)
        bundle = self.bundle
        stats = self.stats
        chunk_size = ctx.batch_rows
        outer_buf: list[tuple] = []
        inner_buf: list[tuple] = []
        page_ids: list[Any] = []

        def flush() -> list[tuple]:
            io.charge_rows(len(inner_buf))
            outcome = compiled.evaluate_batch(inner_buf, short_circuit=True)
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            if bundle is not None:
                bundle.observe_fetch_batch(page_ids, outcome, io)
            out = [
                outer_row + inner_row
                for outer_row, inner_row, ok in zip(
                    outer_buf, inner_buf, outcome.passed
                )
                if ok
            ]
            stats.actual_rows += len(out)
            return out

        for outer_batch in self.outer.batches(ctx):
            ctx.checkpoint()
            for outer_row in outer_batch.rows:
                value = outer_row[outer_pos]
                if value is None:
                    continue
                if use_clustered:
                    fetches = clustered.fetch_by_key(io, (value,))
                else:
                    fetches = (
                        self.inner_table.fetch(io, rid)
                        for _key, rid, _payload in index.seek_equal(io, value)
                    )
                for page_id, inner_row in fetches:
                    outer_buf.append(outer_row)
                    inner_buf.append(inner_row)
                    page_ids.append(page_id)
                    if len(inner_buf) >= chunk_size:
                        out = flush()
                        if out:
                            yield RowBatch(out)
                        outer_buf, inner_buf, page_ids = [], [], []
        if inner_buf:
            out = flush()
            if out:
                yield RowBatch(out)

    def finalize(self, ctx: ExecutionContext) -> None:
        self.outer.finalize(ctx)
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())


class HashJoin(Operator):
    """Classic build/probe in-memory hash join (equality predicate)."""

    engine_layer = "RE"

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_join_column: str,
        probe_join_column: str,
        build_label: str = "build",
        probe_label: str = "probe",
        bitvector: Optional[BitVectorFilter] = None,
    ) -> None:
        super().__init__()
        self.build = build
        self.probe = probe
        self.build_join_column = build_join_column
        self.probe_join_column = probe_join_column
        self.build_label = build_label
        self.probe_label = probe_label
        self.bitvector = bitvector
        self.stats.detail = f"{build_join_column} = {probe_join_column}"

    @property
    def output_columns(self) -> tuple[str, ...]:
        build_cols = tuple(
            c if "." in c else f"{self.build_label}.{c}"
            for c in self.build.output_columns
        )
        probe_cols = tuple(
            c if "." in c else f"{self.probe_label}.{c}"
            for c in self.probe.output_columns
        )
        return build_cols + probe_cols

    def children(self) -> list[Operator]:
        return [self.build, self.probe]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        io = ctx.io
        build_pos = _position_of(self.build.output_columns, self.build_join_column)
        probe_pos = _position_of(self.probe.output_columns, self.probe_join_column)

        # Build phase (blocking): also fills the monitoring bit vector —
        # this is the SE→RE callback moment of Fig. 5.
        hash_table: dict[Any, list[tuple]] = {}
        for build_row in self.build.rows(ctx):
            value = build_row[build_pos]
            if value is None:
                continue
            io.charge_hashes(1)
            hash_table.setdefault(value, []).append(build_row)
            if self.bitvector is not None:
                io.charge_hashes(1)
                self.bitvector.insert(value)

        # Probe phase: streams; the probe child's scan bundle (if any)
        # consults the now-complete bit vector on sampled pages.
        for probe_row in self.probe.rows(ctx):
            value = probe_row[probe_pos]
            if value is None:
                continue
            io.charge_hashes(1)
            matches = hash_table.get(value)
            if not matches:
                continue
            for build_row in matches:
                self.stats.actual_rows += 1
                yield build_row + probe_row

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        io = ctx.io
        build_pos = _position_of(self.build.output_columns, self.build_join_column)
        probe_pos = _position_of(self.probe.output_columns, self.probe_join_column)
        bitvector = self.bitvector
        stats = self.stats
        chunk_size = ctx.batch_rows

        hash_table: dict[Any, list[tuple]] = {}
        setdefault = hash_table.setdefault
        for build_batch in self.build.batches(ctx):
            hashes = 0
            for build_row in build_batch.rows:
                value = build_row[build_pos]
                if value is None:
                    continue
                hashes += 1
                setdefault(value, []).append(build_row)
                if bitvector is not None:
                    hashes += 1
                    bitvector.insert(value)
            if hashes:
                io.charge_hashes(hashes)

        get = hash_table.get
        out: list[tuple] = []
        for probe_batch in self.probe.batches(ctx):
            hashes = 0
            for probe_row in probe_batch.rows:
                value = probe_row[probe_pos]
                if value is None:
                    continue
                hashes += 1
                matches = get(value)
                if not matches:
                    continue
                for build_row in matches:
                    out.append(build_row + probe_row)
                if len(out) >= chunk_size:
                    stats.actual_rows += len(out)
                    yield RowBatch(out)
                    out = []
            if hashes:
                io.charge_hashes(hashes)
        if out:
            stats.actual_rows += len(out)
            yield RowBatch(out)

    def finalize(self, ctx: ExecutionContext) -> None:
        self.build.finalize(ctx)
        self.probe.finalize(ctx)


class MergeJoin(Operator):
    """Merge join over inputs sorted on the join columns.

    ``bitvector_mode`` selects the §IV Merge-Join monitoring variant:
    ``"blocking"`` fills the filter completely before the inner side is
    pulled (correct when the outer child is a blocking Sort — we enforce
    it by materialising the outer); ``"partial"`` inserts outer values as
    they are consumed and requires a :class:`PartialBitVectorFilter`.

    Merge join keeps the default row-adapter :meth:`batches` — its
    single-row lookahead (group gathering at key boundaries) is inherently
    row-at-a-time, and its inputs in this repro are always Sorts or
    pre-sorted streams, never the hot scan path.
    """

    engine_layer = "RE"

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_join_column: str,
        inner_join_column: str,
        outer_label: str = "outer",
        inner_label: str = "inner",
        bitvector: Optional[BitVectorFilter] = None,
        bitvector_mode: Optional[str] = None,
    ) -> None:
        super().__init__()
        if bitvector_mode not in (None, "blocking", "partial"):
            raise ExecutionError(f"unknown bitvector_mode {bitvector_mode!r}")
        if bitvector_mode == "partial" and not isinstance(
            bitvector, PartialBitVectorFilter
        ):
            raise ExecutionError("partial mode requires a PartialBitVectorFilter")
        if bitvector_mode is not None and bitvector is None:
            raise ExecutionError("bitvector_mode set but no bitvector supplied")
        self.outer = outer
        self.inner = inner
        self.outer_join_column = outer_join_column
        self.inner_join_column = inner_join_column
        self.outer_label = outer_label
        self.inner_label = inner_label
        self.bitvector = bitvector
        self.bitvector_mode = bitvector_mode
        self.stats.detail = f"{outer_join_column} = {inner_join_column}"

    @property
    def output_columns(self) -> tuple[str, ...]:
        outer_cols = tuple(
            c if "." in c else f"{self.outer_label}.{c}"
            for c in self.outer.output_columns
        )
        inner_cols = tuple(
            c if "." in c else f"{self.inner_label}.{c}"
            for c in self.inner.output_columns
        )
        return outer_cols + inner_cols

    def children(self) -> list[Operator]:
        return [self.outer, self.inner]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        io = ctx.io
        outer_pos = _position_of(self.outer.output_columns, self.outer_join_column)
        inner_pos = _position_of(self.inner.output_columns, self.inner_join_column)

        if self.bitvector_mode == "blocking":
            # Materialise the outer (it is blocking anyway when fed by a
            # Sort) and complete the bit vector before touching the inner.
            outer_rows = list(self.outer.rows(ctx))
            for position, row in enumerate(outer_rows):
                if not position % 256:
                    # The materialised pass charges hashes without pulling
                    # from a (checkpointing) child, so it needs its own
                    # cancellation boundary.
                    ctx.checkpoint()
                value = row[outer_pos]
                if value is not None:
                    io.charge_hashes(1)
                    self.bitvector.insert(value)
            outer_iter: Iterator[tuple] = iter(outer_rows)
        else:
            outer_iter = self.outer.rows(ctx)
        inner_iter = self.inner.rows(ctx)

        def next_outer() -> Optional[tuple]:
            for row in outer_iter:
                io.charge_rows(1)
                if self.bitvector_mode == "partial":
                    value = row[outer_pos]
                    if value is not None:
                        io.charge_hashes(1)
                        self.bitvector.insert(value)
                return row
            return None

        def next_inner() -> Optional[tuple]:
            for row in inner_iter:
                io.charge_rows(1)
                return row
            return None

        outer_row = next_outer()
        inner_row = next_inner()
        while outer_row is not None and inner_row is not None:
            outer_key = outer_row[outer_pos]
            inner_key = inner_row[inner_pos]
            if outer_key is None or (inner_key is not None and outer_key < inner_key):
                outer_row = next_outer()
                continue
            if inner_key is None or inner_key < outer_key:
                inner_row = next_inner()
                continue
            # Equal keys: gather both groups and emit the cross product.
            key = outer_key
            outer_group = [outer_row]
            outer_row = next_outer()
            while outer_row is not None and outer_row[outer_pos] == key:
                outer_group.append(outer_row)
                outer_row = next_outer()
            inner_group = [inner_row]
            inner_row = next_inner()
            while inner_row is not None and inner_row[inner_pos] == key:
                inner_group.append(inner_row)
                inner_row = next_inner()
            for o_row in outer_group:
                for i_row in inner_group:
                    self.stats.actual_rows += 1
                    yield o_row + i_row
        # Drain the inner so its scan monitors see every page: a merge
        # join would normally stop early, but monitoring semantics (and the
        # paper's DPSample-on-scan) require the scan to complete.  Draining
        # costs sequential I/O the plain plan also pays unless the outer's
        # key range ends early; we keep it simple and drain only when a
        # bit-vector monitor is attached.
        if self.bitvector is not None:
            while inner_row is not None:
                inner_row = next_inner()

    def finalize(self, ctx: ExecutionContext) -> None:
        self.outer.finalize(ctx)
        self.inner.finalize(ctx)
