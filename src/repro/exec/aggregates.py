"""Aggregate operators.

The paper's experimental queries are of the form
``SELECT COUNT(padding) FROM ...`` — a single ungrouped aggregate whose
purpose is to force the plan to actually *fetch* the counted column (so a
covering-index shortcut cannot hide the page accesses being studied).
:class:`CountAggregate` reproduces that; :class:`GroupByCountAggregate` is
provided for the example applications.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.exec import vector
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch
from repro.exec.joins import _position_of


class CountAggregate(Operator):
    """Ungrouped COUNT(column) / COUNT(*) over the child."""

    engine_layer = "RE"

    def __init__(self, child: Operator, column: Optional[str] = None) -> None:
        super().__init__()
        self.child = child
        self.column = column
        self.stats.detail = f"count({column or '*'})"

    @property
    def output_columns(self) -> tuple[str, ...]:
        return (f"count({self.column or '*'})",)

    def children(self) -> list[Operator]:
        return [self.child]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        position = (
            _position_of(self.child.output_columns, self.column)
            if self.column is not None
            else None
        )
        count = 0
        for row in self.child.rows(ctx):
            ctx.io.charge_rows(1)
            if position is None or row[position] is not None:
                count += 1
        self.stats.actual_rows = 1
        yield (count,)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        position = (
            _position_of(self.child.output_columns, self.column)
            if self.column is not None
            else None
        )
        io = ctx.io
        count = 0
        if position is None:
            for batch in self.child.batches(ctx):
                io.charge_rows(len(batch))
                count += len(batch)
        else:
            for batch in self.child.batches(ctx):
                io.charge_rows(len(batch))
                if batch.is_columnar:
                    # Typed vectors cannot hold NULL, so counting non-NULL
                    # values is O(1) for them (see vector.count_notnull).
                    count += vector.count_notnull(batch.column(position))
                else:
                    count += sum(
                        1 for row in batch.rows if row[position] is not None
                    )
        self.stats.actual_rows = 1
        yield RowBatch([(count,)])

    def finalize(self, ctx: ExecutionContext) -> None:
        self.child.finalize(ctx)


class GroupByCountAggregate(Operator):
    """Hash aggregate: COUNT(*) grouped by one column."""

    engine_layer = "RE"

    def __init__(self, child: Operator, group_column: str) -> None:
        super().__init__()
        self.child = child
        self.group_column = group_column
        self.stats.detail = f"group by {group_column}"

    @property
    def output_columns(self) -> tuple[str, ...]:
        return (self.group_column, "count(*)")

    def children(self) -> list[Operator]:
        return [self.child]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        position = _position_of(self.child.output_columns, self.group_column)
        groups: dict = {}
        for row in self.child.rows(ctx):
            ctx.io.charge_rows(1)
            ctx.io.charge_hashes(1)
            key = row[position]
            groups[key] = groups.get(key, 0) + 1
        for key in sorted(groups, key=repr):
            self.stats.actual_rows += 1
            yield key, groups[key]

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        position = _position_of(self.child.output_columns, self.group_column)
        io = ctx.io
        groups: dict = {}
        get = groups.get
        for batch in self.child.batches(ctx):
            num_rows = len(batch)
            io.charge_rows(num_rows)
            io.charge_hashes(num_rows)
            if batch.is_columnar:
                # Group keys come out as Python scalars (tolist), so the
                # repr-ordered output below matches the row path exactly.
                keys = vector.column_values(batch.column(position))
            else:
                keys = [row[position] for row in batch.rows]
            for key in keys:
                groups[key] = get(key, 0) + 1
        out = [(key, groups[key]) for key in sorted(groups, key=repr)]
        self.stats.actual_rows += len(out)
        if out:
            yield RowBatch(out)

    def finalize(self, ctx: ExecutionContext) -> None:
        self.child.finalize(ctx)
