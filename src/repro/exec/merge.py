"""Gather-side merge operators for scatter-gather execution.

The :class:`~repro.shard.coordinator.ShardCoordinator` executes one plan
on every shard and recombines the per-shard result streams here.  Three
merge shapes cover the plan algebra:

* :class:`GatherConcat` — shard-order concatenation.  Correct whenever
  per-shard stream order equals global storage order, which under
  page-aligned **range** partitioning holds for every page-order
  producer (SeqScan, ClusteredRangeScan, IndexIntersection's RID-sorted
  fetch): shard ``s``'s pages all precede shard ``s+1``'s globally.
* :class:`GatherMerge` — k-way ordered merge for key-ordered streams
  (IndexSeek, InListSeek, CoveringScan).  Ties between shards break by
  shard index, which *is* global locator order under range partitioning
  (lower shards hold lower global pages), so the merged stream is
  bit-identical to the single-engine emission order.
* :class:`GatherReaggregate` — re-aggregation of partial aggregates:
  per-shard ``COUNT`` partials sum; grouped counts merge per key and
  re-emit in the ``repr``-sorted group order
  :class:`~repro.exec.aggregates.GroupByCountAggregate` uses.

All gather operators are **free**: every row they pass through was
already charged (rows, pages, predicate evaluations) on its shard's own
:class:`~repro.storage.accounting.IOContext` during the fanned-out
execution, so re-charging here would double-count the work.  They exist
to order/append/sum already-paid-for rows.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Optional, Sequence

from repro.catalog.catalog import Database
from repro.common.errors import ExecutionError
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch, chunk_rows
from repro.exec.runstats import OperatorStats
from repro.optimizer.plans import (
    CountPlan,
    CoveringScanPlan,
    IndexSeekPlan,
    InListSeekPlan,
    PlanNode,
)

#: ``key(row) -> comparable`` extractor for ordered merges.
SortKey = Callable[[tuple], tuple]


class ShardStream(Operator):
    """Leaf operator replaying one shard's already-materialized rows.

    Charges nothing: the rows were produced — and fully accounted — by
    the shard engine's own execution.  ``collect_stats`` grafts the
    shard's executed plan statistics underneath, so a merged
    ``RunStats.render()`` shows the whole scatter-gather tree.
    """

    engine_layer = "RE"

    def __init__(
        self,
        shard_index: int,
        rows: Sequence[tuple],
        columns: Sequence[str],
        shard_root_stats: Optional[OperatorStats] = None,
    ) -> None:
        super().__init__()
        self.shard_index = shard_index
        self._rows = list(rows)
        self._columns = tuple(columns)
        self._shard_root_stats = shard_root_stats
        self.stats.detail = f"shard {shard_index}"

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self._columns

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for row in self._rows:
            self.stats.actual_rows += 1
            yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        return chunk_rows(self.rows(ctx), ctx.batch_rows)

    def collect_stats(self) -> OperatorStats:
        collected = super().collect_stats()
        if self._shard_root_stats is not None:
            collected.children = [self._shard_root_stats]
        return collected


class _GatherBase(Operator):
    """Common shape: N shard streams in, one merged stream out."""

    engine_layer = "RE"

    def __init__(self, streams: Sequence[ShardStream]) -> None:
        super().__init__()
        if not streams:
            raise ExecutionError("gather operators need >= 1 shard stream")
        self.streams = list(streams)

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.streams[0].output_columns

    def children(self) -> list[Operator]:
        return list(self.streams)

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        return chunk_rows(self.rows(ctx), ctx.batch_rows)

    def finalize(self, ctx: ExecutionContext) -> None:
        for stream in self.streams:
            stream.finalize(ctx)


class GatherConcat(_GatherBase):
    """Concatenate shard streams in shard order (page-order producers)."""

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        for stream in self.streams:
            for row in stream.rows(ctx):
                self.stats.actual_rows += 1
                yield row


class GatherMerge(_GatherBase):
    """K-way ordered merge of key-sorted shard streams.

    Each shard stream must already be sorted by ``sort_key``; rows with
    equal keys emit in shard-index order, preserving within-shard order —
    exactly the single-engine ``(key, locator)`` order when shards hold
    ascending global page ranges.
    """

    def __init__(
        self, streams: Sequence[ShardStream], sort_key: SortKey
    ) -> None:
        super().__init__(streams)
        self.sort_key = sort_key

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        key = self.sort_key
        iterators = [stream.rows(ctx) for stream in self.streams]
        heap: list[tuple[tuple, int, int, tuple]] = []
        positions = [0] * len(iterators)
        for shard, iterator in enumerate(iterators):
            first = next(iterator, None)
            if first is not None:
                heapq.heappush(heap, (key(first), shard, positions[shard], first))
        while heap:
            _, shard, _, row = heapq.heappop(heap)
            self.stats.actual_rows += 1
            yield row
            positions[shard] += 1
            nxt = next(iterators[shard], None)
            if nxt is not None:
                heapq.heappush(heap, (key(nxt), shard, positions[shard], nxt))


class GatherReaggregate(_GatherBase):
    """Re-aggregate per-shard partial aggregates into the global answer.

    Handles the two aggregate shapes the engine produces: a single-row
    ``COUNT`` partial per shard (summed), and grouped ``(key, count)``
    partials (summed per key, re-emitted in ``repr``-sorted key order,
    matching :class:`~repro.exec.aggregates.GroupByCountAggregate`).
    """

    def __init__(
        self, streams: Sequence[ShardStream], grouped: bool = False
    ) -> None:
        super().__init__(streams)
        self.grouped = grouped
        self.stats.detail = "grouped" if grouped else "scalar count"

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        if not self.grouped:
            total = 0
            for stream in self.streams:
                for row in stream.rows(ctx):
                    total += row[0]
            self.stats.actual_rows = 1
            yield (total,)
            return
        groups: dict = {}
        for stream in self.streams:
            for group_key, count in stream.rows(ctx):
                groups[group_key] = groups.get(group_key, 0) + count
        for group_key in sorted(groups, key=repr):
            self.stats.actual_rows += 1
            yield group_key, groups[group_key]


def _column_position(columns: Sequence[str], column: str) -> int:
    try:
        return list(columns).index(column)
    except ValueError:
        raise ExecutionError(
            f"merge key column {column!r} not in shard output {tuple(columns)}"
        ) from None


def gather_for_plan(
    plan: PlanNode, streams: Sequence[ShardStream], database: Database
) -> Operator:
    """Pick the merge operator that reproduces single-engine output order.

    ``database`` is the coordinator's *global* catalog — needed to
    resolve index key columns for covering scans.  The mapping:

    ======================  =========================================
    plan root               merge
    ======================  =========================================
    ``CountPlan``           :class:`GatherReaggregate` (scalar/grouped)
    ``IndexSeekPlan``       :class:`GatherMerge` on the seek column
    ``InListSeekPlan``      :class:`GatherMerge` on ``repr`` of the
                            probe column (probes run in repr order)
    ``CoveringScanPlan``    :class:`GatherMerge` on the index key
    anything else           :class:`GatherConcat` (page order)
    ======================  =========================================
    """
    if not streams:
        raise ExecutionError("gather_for_plan needs >= 1 shard stream")
    columns = streams[0].output_columns
    if isinstance(plan, CountPlan):
        return GatherReaggregate(streams, grouped=len(columns) > 1)
    if isinstance(plan, IndexSeekPlan):
        position = _column_position(columns, plan.seek_term.column)
        return GatherMerge(streams, lambda row: (row[position],))
    if isinstance(plan, InListSeekPlan):
        position = _column_position(columns, plan.in_term.column)
        return GatherMerge(streams, lambda row: (repr(row[position]),))
    if isinstance(plan, CoveringScanPlan):
        index_def = database.table(plan.table).indexes[plan.index_name].definition
        key_positions = [
            _column_position(columns, column)
            for column in index_def.key_columns
        ]
        return GatherMerge(
            streams, lambda row: tuple(row[pos] for pos in key_positions)
        )
    return GatherConcat(streams)
