"""Column-vector backend: NumPy-accelerated with a pure-Python fallback.

This is the single seam between the columnar execution mode and NumPy.
Everything above it (predicates, compiled kernels, monitors, operators)
manipulates *columns* and *masks* as opaque values through the functions
here, so the simulator remains runnable on a bare Python install: when
NumPy is absent (or the Python backend is forced for testing), columns
are plain lists and masks are lists of bools.

Representation contract:

* A **column** is either a 1-D ``numpy.ndarray`` of a primitive dtype
  (bool/int/uint/float/str) or a plain Python list.  Columns holding SQL
  NULL (``None``) or mixed/object values always stay lists — NumPy's
  object arrays would silently change comparison semantics, and typed
  arrays cannot represent NULL at all.  This gives the NULL invariant
  for free: an ndarray column *never* contains NULL.
* A **mask** is either a 1-D bool ndarray or a list of bools, aligned
  with a column.  Functions accept mixed representations (one term of a
  conjunction may have fallen back to the Python path).
* Columns and masks are treated as immutable by every consumer; page
  column caches and zero-copy batch hand-offs rely on this.

Values extracted from columns (``column_values``/``rows_from_columns``)
are always *Python* scalars — NumPy scalar types must never leak into
row tuples, IO counters or observation details, where ``repr`` is part
of the equivalence fingerprint.

The per-row loops in this module are the sanctioned pure-Python
fallback (codelint R011 exempts this file).
"""

from __future__ import annotations

import operator
from contextlib import contextmanager
from itertools import compress
from typing import Any, Callable, Iterator, Sequence, Union

try:  # NumPy is an optional accelerator, never a requirement.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the import-blocked leg
    _np = None  # type: ignore[assignment]

#: True when NumPy imported successfully (the backend may still be forced
#: to pure Python via :func:`use_python_backend`).
HAVE_NUMPY = _np is not None

#: Dtype kinds a column array may have.  Anything else (object, datetime,
#: void...) falls back to a list column.
_PRIMITIVE_KINDS = "biufUS"

_force_python = False

Column = Union["_np.ndarray", list]  # type: ignore[name-defined]
Mask = Union["_np.ndarray", list]  # type: ignore[name-defined]

_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    ">=": operator.ge,
    ">": operator.gt,
    "!=": operator.ne,
}


def backend_name() -> str:
    """Name of the backend new columns will use: ``numpy`` or ``python``."""
    return "python" if (_np is None or _force_python) else "numpy"


@contextmanager
def use_python_backend() -> Iterator[None]:
    """Force list-backed columns inside the context (for fallback tests)."""
    global _force_python
    saved = _force_python
    _force_python = True
    try:
        yield
    finally:
        _force_python = saved


def _is_array(value: Any) -> bool:
    return _np is not None and isinstance(value, _np.ndarray)


def make_column(values: Sequence) -> Column:
    """Build a column from scalar values (one table column of one page).

    NumPy backend: returns a typed ndarray when the values are homogeneous
    primitives; NULL-bearing or object-valued columns stay Python lists so
    comparison semantics are untouched.  Python backend: always a list.
    """
    if _np is None or _force_python:
        return values if isinstance(values, list) else list(values)
    arr = _np.asarray(values)
    if arr.ndim != 1 or arr.dtype.kind not in _PRIMITIVE_KINDS:
        return values if isinstance(values, list) else list(values)
    return arr


def make_scan_column(values: list) -> Column:
    """Build a *file-level* scan column from one table column's values.

    Unlike :func:`make_column`, only numeric NULL-free columns become
    ndarrays: converting a long string column (``numpy.asarray`` on tens
    of thousands of Python strs) costs more than every comparison it
    could ever accelerate, so strings stay lists and take the Python
    kernels.  The caller passes an owned list; it is returned as-is on
    the fallback paths.
    """
    if _np is None or _force_python:
        return values
    first = next((value for value in values if value is not None), None)
    if isinstance(first, bool) or not isinstance(first, (int, float)):
        return values
    arr = _np.asarray(values)
    if arr.ndim != 1 or arr.dtype.kind not in "iuf":
        return values  # NULL-bearing or mixed: object dtype, stay a list
    return arr


class SlicedColumns:
    """Zero-copy view of a contiguous row range of file-level columns.

    Behaves like the tuple-of-columns the columnar drives consume
    (``len`` is the column count, ``[i]``/iteration yield per-column
    vectors), but materializes each column slice on access — ndarray
    slices are views, so handing a 73-row page or a 1024-row chunk out
    of a file-wide vector allocates nothing on the NumPy backend.
    """

    __slots__ = ("_source", "_start", "_stop")

    def __init__(self, source: Sequence, start: int, stop: int) -> None:
        self._source = source
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return len(self._source)

    def __bool__(self) -> bool:
        return len(self._source) > 0

    def __getitem__(self, position: int) -> Column:
        return self._source[position][self._start : self._stop]

    def __iter__(self) -> Iterator[Column]:
        start, stop = self._start, self._stop
        for column in self._source:
            yield column[start:stop]


def columns_from_rows(rows: Sequence[tuple], num_columns: int) -> tuple:
    """Transpose row tuples into a tuple of columns."""
    if not rows:
        return tuple(make_column([]) for _ in range(num_columns))
    return tuple(make_column(list(col)) for col in zip(*rows))


def rows_from_columns(columns: Sequence[Column], num_rows: int) -> list[tuple]:
    """Transpose columns back into row tuples of Python scalars."""
    if not columns:
        return [() for _ in range(num_rows)]
    return list(zip(*(column_values(column) for column in columns)))


def column_length(column: Column) -> int:
    return len(column)


def column_values(column: Column) -> list:
    """The column as a list of Python scalars (ndarray ``tolist`` path)."""
    if _is_array(column):
        return column.tolist()
    return column


def slice_column(column: Column, start: int, stop: int) -> Column:
    """Contiguous sub-column (ndarray slices are zero-copy views)."""
    return column[start:stop]


def take(column: Column, mask: Mask) -> Column:
    """Rows of ``column`` where ``mask`` is true, preserving order."""
    if _is_array(column):
        if _is_array(mask):
            return column[mask]
        return column[_np.asarray(mask, dtype=bool)]
    if _is_array(mask):
        mask = mask.tolist()
    return [value for value, keep in zip(column, mask) if keep]


def compress_values(values: Sequence, mask: Mask) -> Iterator:
    """Iterate items of a plain sequence selected by a mask."""
    return compress(values, mask)


def count_notnull(column: Column) -> int:
    """Number of non-NULL values (O(1) for typed arrays — no NULLs)."""
    if _is_array(column):
        return len(column)
    return sum(1 for value in column if value is not None)


# --- predicate kernels ---------------------------------------------------

def compare_mask(column: Column, op: str, bound: Any) -> Mask:
    """``column <op> bound`` as a mask; NULL never matches."""
    fn = _OPS[op]
    if _is_array(column):
        try:
            result = fn(column, bound)
        except TypeError:
            result = None
        if _is_array(result):
            return result
        column = column.tolist()
    return [value is not None and fn(value, bound) for value in column]


def between_mask(column: Column, low: Any, high: Any) -> Mask:
    """``low <= column <= high`` as a mask; NULL never matches."""
    if _is_array(column):
        try:
            result = (column >= low) & (column <= high)
        except TypeError:
            result = None
        if _is_array(result):
            return result
        column = column.tolist()
    return [value is not None and low <= value <= high for value in column]


def isin_mask(column: Column, value_set: frozenset) -> Mask:
    """``column IN value_set`` as a mask; NULL never matches."""
    if _is_array(column):
        try:
            result = _np.isin(column, list(value_set))
        except (TypeError, ValueError):
            result = None
        if _is_array(result):
            return result
        column = column.tolist()
    return [value is not None and value in value_set for value in column]


# --- mask algebra --------------------------------------------------------

def ones_mask(num_rows: int) -> Mask:
    if _np is not None and not _force_python:
        return _np.ones(num_rows, dtype=bool)
    return [True] * num_rows


def zeros_mask(num_rows: int) -> Mask:
    if _np is not None and not _force_python:
        return _np.zeros(num_rows, dtype=bool)
    return [False] * num_rows


def mask_and(left: Mask, right: Mask) -> Mask:
    if _is_array(left):
        if not _is_array(right):
            right = _np.asarray(right, dtype=bool)
        return left & right
    if _is_array(right):
        return _np.asarray(left, dtype=bool) & right
    return [a and b for a, b in zip(left, right)]


def mask_any(mask: Mask) -> bool:
    if _is_array(mask):
        return bool(mask.any())
    return any(mask)


def mask_all(mask: Mask) -> bool:
    if _is_array(mask):
        return bool(mask.all())
    return all(mask)


def mask_count(mask: Mask) -> int:
    if _is_array(mask):
        return int(mask.sum())
    return sum(mask)


def mask_values(mask: Mask) -> list[bool]:
    if _is_array(mask):
        return mask.tolist()
    return mask
