"""Scan operators: heap/clustered full scans, clustered range seeks and
covering index scans.

These are the *scan plans* of §III-B.  They run inside the storage engine,
see page ids, enjoy grouped page access, and host the
:class:`~repro.core.monitors.ScanMonitorBundle` that implements exact
counting and DPSample.  The scan evaluates:

* the query's own residual terms with normal short-circuiting on every
  row (this decides output and feeds exact prefix counters), and
* the full monitor conjunction with short-circuiting **off**, but only on
  pages the Bernoulli sampler selected and only when some request needs
  terms the plan would otherwise skip (Fig. 4, step 4).

All predicate-term evaluations — normal and monitoring-induced — are
charged to the execution's own IOContext, which is how the overhead
measurements of Figs. 7 and 9 arise.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.monitors import FetchMonitorBundle, ScanMonitorBundle
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction
from repro.storage.table import Table


class _MonitoredScanMixin:
    """Shared row-loop logic for operators with grouped page access."""

    table: Table
    query_conjunction: Conjunction
    monitor_conjunction: Conjunction
    bundle: Optional[ScanMonitorBundle]

    def _bind(self) -> BoundConjunction:
        return BoundConjunction(
            self.monitor_conjunction, self.table.schema.column_names
        )

    def _scan_pages(
        self, ctx: ExecutionContext, page_iter: Iterator[tuple[Any, Any]]
    ) -> Iterator[tuple]:
        """Drive the page/row loop over ``(page_id, rows_iterable)`` pairs.

        The unmonitored/monitored and full-evaluation cases are split into
        separate row loops (and ``self.stats`` is hoisted into locals) so
        the hot loop carries no per-row branch on monitor state.
        """
        bound = self._bind()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        if bundle is None:
            for _page_id, rows in page_iter:
                ctx.checkpoint()
                stats.pages_touched += 1
                for row in rows:
                    io.charge_rows(1)
                    outcome = bound.evaluate_prefix(
                        row, num_query_terms, short_circuit=True
                    )
                    io.charge_predicates(outcome.evaluations)
                    stats.predicate_evaluations += outcome.evaluations
                    if outcome.passed:
                        stats.actual_rows += 1
                        yield row
            return
        for page_id, rows in page_iter:
            ctx.checkpoint()
            stats.pages_touched += 1
            bundle.start_page(page_id)
            if bundle.needs_full_evaluation():
                for row in rows:
                    io.charge_rows(1)
                    outcome = bound.evaluate(row, short_circuit=False)
                    io.charge_predicates(outcome.evaluations)
                    stats.predicate_evaluations += outcome.evaluations
                    bundle.observe_row(outcome, row, io)
                    if all(outcome.truth[:num_query_terms]):
                        stats.actual_rows += 1
                        yield row
            else:
                for row in rows:
                    io.charge_rows(1)
                    outcome = bound.evaluate_prefix(
                        row, num_query_terms, short_circuit=True
                    )
                    io.charge_predicates(outcome.evaluations)
                    stats.predicate_evaluations += outcome.evaluations
                    bundle.observe_row(outcome, row, io)
                    if outcome.passed:
                        stats.actual_rows += 1
                        yield row
            bundle.end_page()

    def _scan_pages_batched(
        self, ctx: ExecutionContext, page_iter: Iterator[tuple[Any, list[tuple]]]
    ) -> Iterator[RowBatch]:
        """Page-at-a-time drive: one compiled-kernel evaluation per page.

        Emits one :class:`RowBatch` of surviving rows per page (empty
        pages are charged and observed but yield nothing, matching the
        row loop, which simply yields no rows for them).
        """
        compiled = self._bind().compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        for page_id, rows in page_iter:
            ctx.checkpoint()
            stats.pages_touched += 1
            io.charge_rows(len(rows))
            if bundle is not None:
                bundle.start_page(page_id)
                if bundle.needs_full_evaluation():
                    outcome = compiled.evaluate_batch(rows, short_circuit=False)
                    passed = outcome.prefix_passed(num_query_terms)
                else:
                    outcome = compiled.evaluate_batch(
                        rows, num_query_terms, short_circuit=True
                    )
                    passed = outcome.passed
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
                bundle.observe_batch(outcome, rows, io)
                bundle.end_page()
            else:
                outcome = compiled.evaluate_batch(
                    rows, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
            out = [row for row, ok in zip(rows, passed) if ok]
            stats.actual_rows += len(out)
            if out:
                yield RowBatch(out, page_id)

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())


class SeqScan(_MonitoredScanMixin, Operator):
    """Full scan of a heap or clustered table (the paper's "Table Scan")."""

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        query_conjunction: Conjunction,
        bundle: Optional[ScanMonitorBundle] = None,
        monitor_conjunction: Optional[Conjunction] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.query_conjunction = query_conjunction
        self.monitor_conjunction = (
            monitor_conjunction if monitor_conjunction is not None else query_conjunction
        )
        self.bundle = bundle
        self.stats.detail = f"{table.name} [{query_conjunction.key()}]"

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        def pages():
            for page_id, page in self.table.data_file.scan_pages(ctx.io):
                yield page_id, page.rows()

        yield from self._scan_pages(ctx, pages())

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        def pages():
            for page_id, page in self.table.data_file.scan_pages(ctx.io):
                yield page_id, page.rows_list()

        yield from self._scan_pages_batched(ctx, pages())


class ClusteredRangeScan(_MonitoredScanMixin, Operator):
    """Range seek on the clustering key, plus residual predicate.

    Visits only the contiguous page run covering the key range; grouped
    page access holds within the run, so scan monitoring applies to any
    request that *includes* the range predicate (the planner enforces
    this — pages outside the run cannot satisfy such requests).
    """

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        low: Optional[tuple],
        high: Optional[tuple],
        query_conjunction: Conjunction,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        bundle: Optional[ScanMonitorBundle] = None,
        monitor_conjunction: Optional[Conjunction] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.query_conjunction = query_conjunction
        self.monitor_conjunction = (
            monitor_conjunction if monitor_conjunction is not None else query_conjunction
        )
        self.bundle = bundle
        self.stats.detail = (
            f"{table.name} key in "
            f"{'[' if low_inclusive else '('}{low}, {high}"
            f"{']' if high_inclusive else ')'} [{query_conjunction.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        def pages():
            clustered = self.table.clustered_file()
            current_page = None
            current_rows: list[tuple] = []
            for page_id, _slot, row in clustered.seek_range(
                ctx.io, self.low, self.high, self.low_inclusive, self.high_inclusive
            ):
                if page_id != current_page:
                    if current_page is not None:
                        yield current_page, current_rows
                    current_page, current_rows = page_id, []
                current_rows.append(row)
            if current_page is not None:
                yield current_page, current_rows

        yield from self._scan_pages(ctx, pages())

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        clustered = self.table.clustered_file()
        yield from self._scan_pages_batched(
            ctx,
            clustered.seek_range_pages(
                ctx.io, self.low, self.high, self.low_inclusive, self.high_inclusive
            ),
        )


class CoveringIndexScan(Operator):
    """Full leaf scan of a covering index.

    Outputs the index's carried columns.  Table page ids are *not* scanned
    here, but each leaf entry carries the row's locator, so DPC requests
    over carried columns are monitored with a
    :class:`~repro.core.monitors.FetchMonitorBundle` (linear counting over
    locator page ids) — grouped access holds for *index* pages, not for
    the table pages the request is about, hence the fetch-style mechanism.
    This refines the paper's blanket statement that covering-index scans
    behave like scan plans; the counts are identical, only the counter
    memory differs (documented in DESIGN.md).
    """

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        index_name: str,
        query_conjunction: Conjunction,
        bundle: Optional[FetchMonitorBundle] = None,
        monitor_conjunction: Optional[Conjunction] = None,
        monitor_full_eval: bool = False,
    ) -> None:
        super().__init__()
        self.table = table
        self.index = table.index(index_name)
        self.query_conjunction = query_conjunction
        self.monitor_conjunction = (
            monitor_conjunction if monitor_conjunction is not None else query_conjunction
        )
        self.bundle = bundle
        self.monitor_full_eval = monitor_full_eval
        self.stats.detail = (
            f"{table.name}.{index_name} (covering) [{query_conjunction.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.index.definition.carried_columns()

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        columns = self.output_columns
        bound = BoundConjunction(self.monitor_conjunction, columns)
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        # Per-context counters make this an exact attribution even with
        # other executions in flight (the old code diffed global pool stats).
        leaf_pages_before = io.logical_reads
        entries_seen = 0
        for key, rid, payload in self.index.scan_all(io):
            entries_seen += 1
            if not entries_seen % 256:  # ~ a few leaf pages of entries
                ctx.checkpoint()
            entry_row = key + payload
            io.charge_rows(1)
            if self.monitor_full_eval and self.bundle is not None:
                outcome = bound.evaluate(entry_row, short_circuit=False)
                passed = all(outcome.truth[:num_query_terms])
            else:
                outcome = bound.evaluate_prefix(
                    entry_row, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
            io.charge_predicates(outcome.evaluations)
            self.stats.predicate_evaluations += outcome.evaluations
            if self.bundle is not None:
                self.bundle.observe_fetch(rid.page_id, outcome, io)
            if passed:
                self.stats.actual_rows += 1
                yield entry_row
        self.stats.pages_touched = io.logical_reads - leaf_pages_before

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        columns = self.output_columns
        compiled = BoundConjunction(self.monitor_conjunction, columns).compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        full_eval = self.monitor_full_eval and bundle is not None
        leaf_pages_before = io.logical_reads
        chunk_size = ctx.batch_rows
        entries: list[tuple] = []
        page_ids: list[Any] = []

        def flush() -> list[tuple]:
            io.charge_rows(len(entries))
            if full_eval:
                outcome = compiled.evaluate_batch(entries, short_circuit=False)
                passed = outcome.prefix_passed(num_query_terms)
            else:
                outcome = compiled.evaluate_batch(
                    entries, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            if bundle is not None:
                bundle.observe_fetch_batch(page_ids, outcome, io)
            out = [row for row, ok in zip(entries, passed) if ok]
            stats.actual_rows += len(out)
            return out

        for key, rid, payload in self.index.scan_all(io):
            entries.append(key + payload)
            page_ids.append(rid.page_id)
            if len(entries) >= chunk_size:
                ctx.checkpoint()
                out = flush()
                if out:
                    yield RowBatch(out)
                entries, page_ids = [], []
        if entries:
            out = flush()
            if out:
                yield RowBatch(out)
        stats.pages_touched = io.logical_reads - leaf_pages_before

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())
