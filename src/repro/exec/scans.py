"""Scan operators: heap/clustered full scans, clustered range seeks and
covering index scans.

These are the *scan plans* of §III-B.  They run inside the storage engine,
see page ids, enjoy grouped page access, and host the
:class:`~repro.core.monitors.ScanMonitorBundle` that implements exact
counting and DPSample.  The scan evaluates:

* the query's own residual terms with normal short-circuiting on every
  row (this decides output and feeds exact prefix counters), and
* the full monitor conjunction with short-circuiting **off**, but only on
  pages the Bernoulli sampler selected and only when some request needs
  terms the plan would otherwise skip (Fig. 4, step 4).

All predicate-term evaluations — normal and monitoring-induced — are
charged to the execution's own IOContext, which is how the overhead
measurements of Figs. 7 and 9 arise.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.monitors import FetchMonitorBundle, ScanMonitorBundle
from repro.exec import vector
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction
from repro.storage.table import Table


class _MonitoredScanMixin:
    """Shared row-loop logic for operators with grouped page access."""

    table: Table
    query_conjunction: Conjunction
    monitor_conjunction: Conjunction
    bundle: Optional[ScanMonitorBundle]

    #: Resume tracking (armed by the reopt watchdog, off by default): the
    #: batch/columnar drives record the clustering-key value of the last
    #: row of each *fully processed* page.  Cancellation raises at the
    #: checkpoint that precedes the next page, and the downstream
    #: consumer has synchronously drained every yielded batch, so after a
    #: mid-query stop ``resume_key`` is an exact replay boundary: every
    #: row with key <= resume_key was scanned, none beyond it were.  The
    #: row drive does not track (its root-level cancellation check can
    #: fire mid-page), which is why resume is a batch/columnar-only path.
    resume_tracking = False
    resume_key_position: Optional[int] = None
    resume_key: Any = None

    def _bind(self) -> BoundConjunction:
        return BoundConjunction(
            self.monitor_conjunction, self.table.schema.column_names
        )

    def _scan_pages(
        self, ctx: ExecutionContext, page_iter: Iterator[tuple[Any, Any]]
    ) -> Iterator[tuple]:
        """Drive the page/row loop over ``(page_id, rows_iterable)`` pairs.

        The unmonitored/monitored and full-evaluation cases are split into
        separate row loops (and ``self.stats`` is hoisted into locals) so
        the hot loop carries no per-row branch on monitor state.
        """
        bound = self._bind()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        if bundle is None:
            for _page_id, rows in page_iter:
                ctx.checkpoint()
                stats.pages_touched += 1
                for row in rows:
                    io.charge_rows(1)
                    outcome = bound.evaluate_prefix(
                        row, num_query_terms, short_circuit=True
                    )
                    io.charge_predicates(outcome.evaluations)
                    stats.predicate_evaluations += outcome.evaluations
                    if outcome.passed:
                        stats.actual_rows += 1
                        yield row
            return
        for page_id, rows in page_iter:
            ctx.checkpoint()
            stats.pages_touched += 1
            bundle.start_page(page_id)
            if bundle.needs_full_evaluation():
                for row in rows:
                    io.charge_rows(1)
                    outcome = bound.evaluate(row, short_circuit=False)
                    io.charge_predicates(outcome.evaluations)
                    stats.predicate_evaluations += outcome.evaluations
                    bundle.observe_row(outcome, row, io)
                    if all(outcome.truth[:num_query_terms]):
                        stats.actual_rows += 1
                        yield row
            else:
                for row in rows:
                    io.charge_rows(1)
                    outcome = bound.evaluate_prefix(
                        row, num_query_terms, short_circuit=True
                    )
                    io.charge_predicates(outcome.evaluations)
                    stats.predicate_evaluations += outcome.evaluations
                    bundle.observe_row(outcome, row, io)
                    if outcome.passed:
                        stats.actual_rows += 1
                        yield row
            bundle.end_page()

    def _scan_pages_batched(
        self, ctx: ExecutionContext, page_iter: Iterator[tuple[Any, list[tuple]]]
    ) -> Iterator[RowBatch]:
        """Page-at-a-time drive: one compiled-kernel evaluation per page.

        Emits one :class:`RowBatch` of surviving rows per page (empty
        pages are charged and observed but yield nothing, matching the
        row loop, which simply yields no rows for them).
        """
        compiled = self._bind().compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        track_resume = self.resume_tracking
        key_position = self.resume_key_position
        for page_id, rows in page_iter:
            ctx.checkpoint()
            stats.pages_touched += 1
            io.charge_rows(len(rows))
            if track_resume and rows and key_position is not None:
                self.resume_key = rows[-1][key_position]
            if bundle is not None:
                bundle.start_page(page_id)
                if bundle.needs_full_evaluation():
                    outcome = compiled.evaluate_batch(rows, short_circuit=False)
                    passed = outcome.prefix_passed(num_query_terms)
                else:
                    outcome = compiled.evaluate_batch(
                        rows, num_query_terms, short_circuit=True
                    )
                    passed = outcome.passed
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
                bundle.observe_batch(outcome, rows, io)
                bundle.end_page()
            else:
                outcome = compiled.evaluate_batch(
                    rows, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
            out = [row for row, ok in zip(rows, passed) if ok]
            stats.actual_rows += len(out)
            if out:
                yield RowBatch(out, page_id)

    def _scan_pages_columnar(
        self, ctx: ExecutionContext, page_iter: Iterator[tuple[Any, tuple, int]]
    ) -> Iterator[RowBatch]:
        """Columnar drive over ``(page_id, column_vectors, num_rows)`` pages.

        One whole-vector kernel evaluation per page; monitors consume the
        witness masks directly.  Charges, observations and surviving rows
        are identical to the row and batch drives.  Pages where every row
        passes hand their file-level column views downstream with no copy;
        unmonitored scans use the wider-chunked
        :meth:`_scan_chunks_columnar` drive instead.
        """
        compiled = self._bind().compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        track_resume = self.resume_tracking
        key_position = self.resume_key_position
        for page_id, columns, num_rows in page_iter:
            ctx.checkpoint()
            stats.pages_touched += 1
            io.charge_rows(num_rows)
            if track_resume and num_rows and key_position is not None:
                self.resume_key = vector.column_values(
                    columns[key_position]
                )[-1]
            if bundle is not None:
                bundle.start_page(page_id)
                if bundle.needs_full_evaluation():
                    outcome = compiled.evaluate_columns(
                        columns, num_rows, short_circuit=False
                    )
                    passed = outcome.prefix_passed(num_query_terms)
                else:
                    outcome = compiled.evaluate_columns(
                        columns, num_rows, num_query_terms, short_circuit=True
                    )
                    passed = outcome.passed
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
                bundle.observe_columns(outcome, columns, io)
                bundle.end_page()
            else:
                outcome = compiled.evaluate_columns(
                    columns, num_rows, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
            selected = vector.mask_count(passed)
            stats.actual_rows += selected
            if not selected:
                continue
            if selected == num_rows:
                yield RowBatch.from_columns(columns, page_id, num_rows=num_rows)
            else:
                filtered = tuple(vector.take(column, passed) for column in columns)
                yield RowBatch.from_columns(filtered, page_id, num_rows=selected)

    def _scan_chunks_columnar(
        self,
        ctx: ExecutionContext,
        chunk_iter: Iterator[tuple[Any, int, Any, int]],
    ) -> Iterator[RowBatch]:
        """Unmonitored columnar drive over multi-page column chunks.

        Consumes ``(first_page_id, page_count, columns_view, num_rows)``
        tuples (:meth:`~repro.storage.heap.DataFile.scan_column_chunks`),
        evaluating one whole-vector kernel per ~``ctx.batch_rows`` rows —
        wide enough to amortize NumPy dispatch, which 73-row pages cannot.
        Only legal without a monitor bundle: monitors are page-granular
        (Bernoulli page sampling, per-page counter feeds), while every
        observable this path touches — row/predicate charges, evaluation
        counts, pages_touched, surviving rows — is additive across pages,
        so chunk boundaries cannot change it.
        """
        assert self.bundle is None
        compiled = self._bind().compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        stats = self.stats
        for first_page_id, page_count, columns, num_rows in chunk_iter:
            ctx.checkpoint()
            stats.pages_touched += page_count
            io.charge_rows(num_rows)
            outcome = compiled.evaluate_columns(
                columns, num_rows, num_query_terms, short_circuit=True
            )
            passed = outcome.passed
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            selected = vector.mask_count(passed)
            stats.actual_rows += selected
            if not selected:
                continue
            if selected == num_rows:
                yield RowBatch.from_columns(columns, first_page_id, num_rows=num_rows)
            else:
                filtered = tuple(vector.take(column, passed) for column in columns)
                yield RowBatch.from_columns(filtered, first_page_id, num_rows=selected)

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())


class SeqScan(_MonitoredScanMixin, Operator):
    """Full scan of a heap or clustered table (the paper's "Table Scan")."""

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        query_conjunction: Conjunction,
        bundle: Optional[ScanMonitorBundle] = None,
        monitor_conjunction: Optional[Conjunction] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.query_conjunction = query_conjunction
        self.monitor_conjunction = (
            monitor_conjunction if monitor_conjunction is not None else query_conjunction
        )
        self.bundle = bundle
        self.stats.detail = f"{table.name} [{query_conjunction.key()}]"

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        def pages():
            for page_id, page in self.table.data_file.scan_pages(ctx.io):
                yield page_id, page.rows()

        yield from self._scan_pages(ctx, pages())

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if ctx.vectorized:
            if self.bundle is None:
                # No monitors → no page-granular observables: chunk many
                # pages per kernel call (see _scan_chunks_columnar).
                yield from self._scan_chunks_columnar(
                    ctx,
                    self.table.data_file.scan_column_chunks(ctx.io, ctx.batch_rows),
                )
            else:
                yield from self._scan_pages_columnar(
                    ctx, self.table.data_file.scan_page_columns(ctx.io)
                )
            return

        def pages():
            for page_id, page in self.table.data_file.scan_pages(ctx.io):
                yield page_id, page.rows_list()

        yield from self._scan_pages_batched(ctx, pages())


class ClusteredRangeScan(_MonitoredScanMixin, Operator):
    """Range seek on the clustering key, plus residual predicate.

    Visits only the contiguous page run covering the key range; grouped
    page access holds within the run, so scan monitoring applies to any
    request that *includes* the range predicate (the planner enforces
    this — pages outside the run cannot satisfy such requests).
    """

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        low: Optional[tuple],
        high: Optional[tuple],
        query_conjunction: Conjunction,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        bundle: Optional[ScanMonitorBundle] = None,
        monitor_conjunction: Optional[Conjunction] = None,
    ) -> None:
        super().__init__()
        self.table = table
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.query_conjunction = query_conjunction
        self.monitor_conjunction = (
            monitor_conjunction if monitor_conjunction is not None else query_conjunction
        )
        self.bundle = bundle
        self.stats.detail = (
            f"{table.name} key in "
            f"{'[' if low_inclusive else '('}{low}, {high}"
            f"{']' if high_inclusive else ')'} [{query_conjunction.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.table.schema.column_names

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        def pages():
            clustered = self.table.clustered_file()
            current_page = None
            current_rows: list[tuple] = []
            for page_id, _slot, row in clustered.seek_range(
                ctx.io, self.low, self.high, self.low_inclusive, self.high_inclusive
            ):
                if page_id != current_page:
                    if current_page is not None:
                        yield current_page, current_rows
                    current_page, current_rows = page_id, []
                current_rows.append(row)
            if current_page is not None:
                yield current_page, current_rows

        yield from self._scan_pages(ctx, pages())

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        clustered = self.table.clustered_file()
        if ctx.vectorized:
            yield from self._scan_pages_columnar(
                ctx,
                clustered.seek_range_columns(
                    ctx.io, self.low, self.high, self.low_inclusive, self.high_inclusive
                ),
            )
            return
        yield from self._scan_pages_batched(
            ctx,
            clustered.seek_range_pages(
                ctx.io, self.low, self.high, self.low_inclusive, self.high_inclusive
            ),
        )


class CoveringIndexScan(Operator):
    """Full leaf scan of a covering index.

    Outputs the index's carried columns.  Table page ids are *not* scanned
    here, but each leaf entry carries the row's locator, so DPC requests
    over carried columns are monitored with a
    :class:`~repro.core.monitors.FetchMonitorBundle` (linear counting over
    locator page ids) — grouped access holds for *index* pages, not for
    the table pages the request is about, hence the fetch-style mechanism.
    This refines the paper's blanket statement that covering-index scans
    behave like scan plans; the counts are identical, only the counter
    memory differs (documented in DESIGN.md).
    """

    engine_layer = "SE"

    def __init__(
        self,
        table: Table,
        index_name: str,
        query_conjunction: Conjunction,
        bundle: Optional[FetchMonitorBundle] = None,
        monitor_conjunction: Optional[Conjunction] = None,
        monitor_full_eval: bool = False,
    ) -> None:
        super().__init__()
        self.table = table
        self.index = table.index(index_name)
        self.query_conjunction = query_conjunction
        self.monitor_conjunction = (
            monitor_conjunction if monitor_conjunction is not None else query_conjunction
        )
        self.bundle = bundle
        self.monitor_full_eval = monitor_full_eval
        self.stats.detail = (
            f"{table.name}.{index_name} (covering) [{query_conjunction.key()}]"
        )

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.index.definition.carried_columns()

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        columns = self.output_columns
        bound = BoundConjunction(self.monitor_conjunction, columns)
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        # Per-context counters make this an exact attribution even with
        # other executions in flight (the old code diffed global pool stats).
        leaf_pages_before = io.logical_reads
        entries_seen = 0
        for key, rid, payload in self.index.scan_all(io):
            entries_seen += 1
            if not entries_seen % 256:  # ~ a few leaf pages of entries
                ctx.checkpoint()
            entry_row = key + payload
            io.charge_rows(1)
            if self.monitor_full_eval and self.bundle is not None:
                outcome = bound.evaluate(entry_row, short_circuit=False)
                passed = all(outcome.truth[:num_query_terms])
            else:
                outcome = bound.evaluate_prefix(
                    entry_row, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
            io.charge_predicates(outcome.evaluations)
            self.stats.predicate_evaluations += outcome.evaluations
            if self.bundle is not None:
                self.bundle.observe_fetch(rid.page_id, outcome, io)
            if passed:
                self.stats.actual_rows += 1
                yield entry_row
        self.stats.pages_touched = io.logical_reads - leaf_pages_before

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        if ctx.vectorized:
            yield from self._columnar_batches(ctx)
            return
        columns = self.output_columns
        compiled = BoundConjunction(self.monitor_conjunction, columns).compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        full_eval = self.monitor_full_eval and bundle is not None
        leaf_pages_before = io.logical_reads
        chunk_size = ctx.batch_rows
        entries: list[tuple] = []
        page_ids: list[Any] = []

        def flush() -> list[tuple]:
            io.charge_rows(len(entries))
            if full_eval:
                outcome = compiled.evaluate_batch(entries, short_circuit=False)
                passed = outcome.prefix_passed(num_query_terms)
            else:
                outcome = compiled.evaluate_batch(
                    entries, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            if bundle is not None:
                bundle.observe_fetch_batch(page_ids, outcome, io)
            out = [row for row, ok in zip(entries, passed) if ok]
            stats.actual_rows += len(out)
            return out

        for key, rid, payload in self.index.scan_all(io):
            entries.append(key + payload)
            page_ids.append(rid.page_id)
            if len(entries) >= chunk_size:
                ctx.checkpoint()
                out = flush()
                if out:
                    yield RowBatch(out)
                entries, page_ids = [], []
        if entries:
            out = flush()
            if out:
                yield RowBatch(out)
        stats.pages_touched = io.logical_reads - leaf_pages_before

    def _columnar_batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Columnar drive: chunks of leaf entries transposed into vectors.

        The leaf stream yields Python tuples, so chunks are transposed
        once (``columns_from_rows``) and then evaluated with whole-vector
        kernels; the fetch bundle consumes witness masks.  Accounting and
        counter feeds match the batch drive chunk for chunk.
        """
        column_names = self.output_columns
        width = len(column_names)
        compiled = BoundConjunction(self.monitor_conjunction, column_names).compile()
        num_query_terms = len(self.query_conjunction)
        io = ctx.io
        bundle = self.bundle
        stats = self.stats
        full_eval = self.monitor_full_eval and bundle is not None
        leaf_pages_before = io.logical_reads
        chunk_size = ctx.batch_rows
        entries: list[tuple] = []
        page_ids: list[Any] = []

        def flush() -> Optional[RowBatch]:
            num_rows = len(entries)
            io.charge_rows(num_rows)
            chunk_columns = vector.columns_from_rows(entries, width)
            if full_eval:
                outcome = compiled.evaluate_columns(
                    chunk_columns, num_rows, short_circuit=False
                )
                passed = outcome.prefix_passed(num_query_terms)
            else:
                outcome = compiled.evaluate_columns(
                    chunk_columns, num_rows, num_query_terms, short_circuit=True
                )
                passed = outcome.passed
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            if bundle is not None:
                bundle.observe_fetch_columns(page_ids, outcome, io)
            selected = vector.mask_count(passed)
            stats.actual_rows += selected
            if not selected:
                return None
            if selected == num_rows:
                return RowBatch.from_columns(chunk_columns, num_rows=num_rows)
            filtered = tuple(
                vector.take(column, passed) for column in chunk_columns
            )
            return RowBatch.from_columns(filtered, num_rows=selected)

        for key, rid, payload in self.index.scan_all(io):
            entries.append(key + payload)
            page_ids.append(rid.page_id)
            if len(entries) >= chunk_size:
                ctx.checkpoint()
                batch = flush()
                if batch is not None:
                    yield batch
                entries, page_ids = [], []
        if entries:
            batch = flush()
            if batch is not None:
                yield batch
        stats.pages_touched = io.logical_reads - leaf_pages_before

    def finalize(self, ctx: ExecutionContext) -> None:
        if self.bundle is not None:
            ctx.observations.extend(self.bundle.finish())
