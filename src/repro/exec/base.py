"""Operator base class and the execution context.

Operators follow the Volcano iterator model, implemented with Python
generators: :meth:`Operator.rows` yields output tuples and runs any
blocking work (hash build, sort) before its first yield.  Each operator
owns an :class:`~repro.exec.runstats.OperatorStats` and is marked with the
engine layer it executes in — ``SE`` operators see page ids, ``RE``
operators do not (the separation that motivates the paper's callback
design, Fig. 1/Fig. 5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Optional, Protocol

from repro.catalog.catalog import Database
from repro.common.cancellation import CancellationToken
from repro.core.requests import PageCountObservation
from repro.exec.batch import DEFAULT_BATCH_ROWS, RowBatch, chunk_rows
from repro.exec.runstats import OperatorStats
from repro.storage.accounting import IOContext


class ExecutionWatchdog(Protocol):
    """Checkpoint-boundary observer (the reopt regret watchdog's seam).

    ``observe`` runs on the executing thread at every
    :meth:`ExecutionContext.checkpoint` — i.e. at the same page/probe
    boundaries cancellation is checked at — *before* the cancellation
    token is consulted, so an observer that trips the token stops the
    run at the very boundary it observed.  Implementations charge any
    bookkeeping they do to the passed ``io`` context (their overhead
    must be visible in simulated time, like every monitor's).
    """

    def observe(self, io: IOContext) -> None: ...


@dataclass
class ExecutionContext:
    """Shared state for one query execution.

    ``io`` is this execution's private accounting context: every operator,
    storage call and monitor charges it, so the run's timings and read
    counts are exact attributions (no global clock, no snapshot deltas).
    ``batch_rows`` is the chunk size relational-engine operators use in
    batch mode (storage-engine scans batch per page regardless).
    ``vectorized`` is set by the executor in columnar mode: operators
    with a columnar drive emit column-backed batches, everything else
    falls back to the batch path via the ``RowBatch.rows`` shim.
    ``cancellation`` is the run's cooperative-cancellation token (``None``
    for the overwhelmingly common uncancellable run); operators call
    :meth:`checkpoint` at page/probe boundaries.  ``watchdog`` is an
    optional checkpoint observer (mid-query re-optimization's regret
    watchdog); it runs before the token check so a trip it requests is
    raised at the same boundary.
    """

    database: Database
    io: IOContext
    observations: list[PageCountObservation] = field(default_factory=list)
    batch_rows: int = DEFAULT_BATCH_ROWS
    vectorized: bool = False
    cancellation: Optional[CancellationToken] = None
    watchdog: Optional[ExecutionWatchdog] = None

    def checkpoint(self) -> None:
        """Raise :class:`~repro.common.errors.QueryCancelled` if this
        execution's token has been cancelled; no-op without a token.

        Called once per storage page (scan operators) and once per probe
        row (index-nested-loop join), so a timed-out query stops charging
        its :attr:`io` within one page of work.  A watchdog, when
        attached, observes the same boundary first — tripping the token
        here is how mid-query re-optimization stops a run.
        """
        if self.watchdog is not None:
            self.watchdog.observe(self.io)
        if self.cancellation is not None:
            self.cancellation.checkpoint()


class Operator(ABC):
    """Base class of all physical operators."""

    #: Which engine layer the operator runs in: "SE" (storage engine,
    #: page ids visible) or "RE" (relational engine).
    engine_layer = "RE"

    def __init__(self) -> None:
        self.stats = OperatorStats(operator=type(self).__name__)
        self.estimated_rows: Optional[float] = None

    @property
    @abstractmethod
    def output_columns(self) -> tuple[str, ...]:
        """Names of the columns in yielded tuples, in order."""

    @abstractmethod
    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        """Yield output rows; must run to exhaustion for monitors to
        observe end-of-stream."""

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        """Yield output rows as :class:`~repro.exec.batch.RowBatch` chunks.

        The default adapts :meth:`rows` into fixed-size chunks, so every
        operator is batch-drivable; operators with a native batch path
        override this (and must emit exactly the rows, in exactly the
        order, the row iterator would — the equivalence harness checks).
        """
        yield from chunk_rows(self.rows(ctx), ctx.batch_rows)

    def finalize(self, ctx: ExecutionContext) -> None:
        """Called after the stream is exhausted; default collects children.

        Operators with monitors override this to flush observations into
        ``ctx.observations`` (the end-of-stream message of Fig. 3).
        """

    def collect_stats(self) -> OperatorStats:
        """Assemble this operator's stats subtree."""
        self.stats.operator = type(self).__name__
        self.stats.estimated_rows = self.estimated_rows
        self.stats.children = [child.collect_stats() for child in self.children()]
        return self.stats

    def children(self) -> list["Operator"]:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.stats.detail})"
