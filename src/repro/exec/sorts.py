"""Sort and RE-side Filter operators."""

from __future__ import annotations

import math
from typing import Iterator

from repro.exec import vector
from repro.exec.base import ExecutionContext, Operator
from repro.exec.batch import RowBatch
from repro.exec.joins import _position_of
from repro.sql.evaluator import BoundConjunction
from repro.sql.predicates import Conjunction


class Sort(Operator):
    """Blocking in-memory sort on one column.

    The first row is yielded only after the child is fully consumed — the
    blocking property §IV relies on for Merge-Join bit-vector filtering
    ("the first GetNext() call to the Sort operator is blocking").
    CPU cost is charged as ``n·log2(n)`` comparison steps.
    """

    engine_layer = "RE"

    def __init__(self, child: Operator, sort_column: str, descending: bool = False):
        super().__init__()
        self.child = child
        self.sort_column = sort_column
        self.descending = descending
        self.stats.detail = f"by {sort_column}{' desc' if descending else ''}"

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns

    def children(self) -> list[Operator]:
        return [self.child]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        position = _position_of(self.child.output_columns, self.sort_column)
        materialized = list(self.child.rows(ctx))
        n = len(materialized)
        if n > 1:
            ctx.io.charge_predicates(int(n * math.log2(n)))
        materialized.sort(key=lambda row: row[position], reverse=self.descending)
        for row in materialized:
            self.stats.actual_rows += 1
            yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        position = _position_of(self.child.output_columns, self.sort_column)
        materialized = [
            row for batch in self.child.batches(ctx) for row in batch.rows
        ]
        n = len(materialized)
        if n > 1:
            ctx.io.charge_predicates(int(n * math.log2(n)))
        materialized.sort(key=lambda row: row[position], reverse=self.descending)
        self.stats.actual_rows += n
        chunk_size = ctx.batch_rows
        for start in range(0, n, chunk_size):
            yield RowBatch(materialized[start : start + chunk_size])

    def finalize(self, ctx: ExecutionContext) -> None:
        self.child.finalize(ctx)


class Filter(Operator):
    """Relational-engine filter (predicates not pushed into the SE)."""

    engine_layer = "RE"

    def __init__(self, child: Operator, conjunction: Conjunction) -> None:
        super().__init__()
        self.child = child
        self.conjunction = conjunction
        self.stats.detail = conjunction.key()

    @property
    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns

    def children(self) -> list[Operator]:
        return [self.child]

    def rows(self, ctx: ExecutionContext) -> Iterator[tuple]:
        bound = BoundConjunction(self.conjunction, self.child.output_columns)
        for row in self.child.rows(ctx):
            outcome = bound.evaluate(row, short_circuit=True)
            ctx.io.charge_predicates(outcome.evaluations)
            self.stats.predicate_evaluations += outcome.evaluations
            if outcome.passed:
                self.stats.actual_rows += 1
                yield row

    def batches(self, ctx: ExecutionContext) -> Iterator[RowBatch]:
        compiled = BoundConjunction(
            self.conjunction, self.child.output_columns
        ).compile()
        io = ctx.io
        stats = self.stats
        for batch in self.child.batches(ctx):
            if batch.is_columnar:
                columns = batch.columns
                num_rows = len(batch)
                outcome = compiled.evaluate_columns(
                    columns, num_rows, short_circuit=True
                )
                io.charge_predicates(outcome.evaluations)
                stats.predicate_evaluations += outcome.evaluations
                selected = vector.mask_count(outcome.passed)
                stats.actual_rows += selected
                if not selected:
                    continue
                if selected == num_rows:
                    yield batch
                else:
                    filtered = tuple(
                        vector.take(column, outcome.passed) for column in columns
                    )
                    yield RowBatch.from_columns(
                        filtered, batch.page_id, num_rows=selected
                    )
                continue
            rows = batch.rows
            outcome = compiled.evaluate_batch(rows, short_circuit=True)
            io.charge_predicates(outcome.evaluations)
            stats.predicate_evaluations += outcome.evaluations
            out = [row for row, ok in zip(rows, outcome.passed) if ok]
            stats.actual_rows += len(out)
            if out:
                yield RowBatch(out, batch.page_id)

    def finalize(self, ctx: ExecutionContext) -> None:
        self.child.finalize(ctx)
