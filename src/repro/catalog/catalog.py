"""The database catalog: tables, indexes, files and shared runtime objects.

A :class:`Database` owns the disk-parameter set, the buffer pool, file-id
allocation and the table registry.  It is the single entry point for
creating and loading tables — examples and the benchmark harness construct
one ``Database`` per experiment.  Timing and I/O *counters* are not here:
each execution carries its own
:class:`~repro.storage.accounting.IOContext` (see
:meth:`Database.new_io_context`), so per-query accounting never flows
through shared mutable state.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.common.errors import CatalogError
from repro.common.types import FileId
from repro.catalog.schema import IndexDef, PartitionSpec, TableSchema
from repro.storage.accounting import IOContext
from repro.storage.buffer import BufferPool
from repro.storage.clustered import ClusteredFile
from repro.storage.disk import DiskParameters
from repro.storage.heap import HeapFile
from repro.storage.table import Table


class Database:
    """A named collection of tables sharing one buffer pool."""

    def __init__(
        self,
        name: str = "db",
        buffer_pool_pages: int = 65536,
        disk_params: Optional[DiskParameters] = None,
    ) -> None:
        self.name = name
        self.disk_params = disk_params or DiskParameters()
        self.buffer_pool = BufferPool(capacity_pages=buffer_pool_pages)
        self.tables: dict[str, Table] = {}
        #: Both set by :func:`repro.shard.partition.partition_database` on
        #: the shard-local databases it builds; ``None`` on an unsharded
        #: (or coordinator-global) database.
        self.partition_spec: Optional[PartitionSpec] = None
        self.shard_index: Optional[int] = None
        self._next_file_id = 0

    def new_io_context(self, isolated: bool = False) -> IOContext:
        """A fresh accounting context for one execution.

        ``isolated=True`` gives the context its own cold private buffer
        frames (same capacity as the shared pool), so concurrent
        executions cannot perturb each other's physical-read counts.
        """
        return IOContext(params=self.disk_params, isolated=isolated)

    def _allocate_file_id(self) -> FileId:
        file_id = FileId(self._next_file_id)
        self._next_file_id += 1
        return file_id

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        schema: TableSchema,
        clustered_on: Optional[Sequence[str]] = None,
        fill_factor: float = 1.0,
    ) -> Table:
        """Create an empty table, as a heap or clustered on ``clustered_on``."""
        if schema.table_name in self.tables:
            raise CatalogError(f"table {schema.table_name} already exists")
        file_id = self._allocate_file_id()
        clustered_def: Optional[IndexDef] = None
        if clustered_on:
            key_positions = [schema.position(col) for col in clustered_on]
            data_file = ClusteredFile(
                file_id,
                schema.row_width_bytes,
                self.buffer_pool,
                key_positions=key_positions,
                fill_factor=fill_factor,
            )
            clustered_def = IndexDef(
                name=f"cidx_{schema.table_name}",
                table_name=schema.table_name,
                key_columns=tuple(clustered_on),
                clustered=True,
            )
        else:
            data_file = HeapFile(
                file_id, schema.row_width_bytes, self.buffer_pool, fill_factor
            )
        table = Table(schema, data_file, clustered_index=clustered_def)
        self.tables[schema.table_name] = table
        return table

    def load_table(
        self,
        schema: TableSchema,
        rows: Sequence[Sequence[Any]],
        clustered_on: Optional[Sequence[str]] = None,
        indexes: Sequence[IndexDef] = (),
        build_stats: bool = True,
        fill_factor: float = 1.0,
    ) -> Table:
        """One-shot create + bulk load + index build + statistics."""
        table = self.create_table(schema, clustered_on, fill_factor)
        table.bulk_load(rows)
        for definition in indexes:
            table.create_index(definition, self._allocate_file_id())
        if build_stats:
            table.build_table_statistics()
        return table

    def create_index(self, table_name: str, definition: IndexDef):
        """Add a secondary index to an already-loaded table."""
        return self.table(table_name).create_index(
            definition, self._allocate_file_id()
        )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(
                f"database {self.name} has no table {name!r}; "
                f"available: {sorted(self.tables)}"
            ) from None

    def statistics_versions(
        self, tables: Sequence[str]
    ) -> tuple[tuple[str, int], ...]:
        """Sorted ``(table, statistics_version)`` vector for ``tables``.

        Part of the plan cache's freshness key: a statistics rebuild on
        any touched table must invalidate cached plans costed against the
        old statistics.
        """
        return tuple(
            (name, self.table(name).statistics_version)
            for name in sorted(set(tables))
        )

    # ------------------------------------------------------------------
    # Experiment controls
    # ------------------------------------------------------------------
    def cold_cache(self) -> None:
        """Empty the buffer pool (the paper's cold-cache methodology)."""
        self.buffer_pool.reset()

    def reset_measurements(self) -> None:
        """Cold cache + zeroed shared-pool counters, for a fresh run.

        Per-execution counters need no reset: every execution starts from
        a fresh :class:`~repro.storage.accounting.IOContext`.
        """
        self.buffer_pool.reset()
        self.buffer_pool.reset_stats()

    def inventory(self) -> list[dict[str, Any]]:
        """Per-table geometry summary (Table I's columns)."""
        rows = []
        for table in self.tables.values():
            rows.append(
                {
                    "table": table.name,
                    "num_rows": table.num_rows,
                    "num_pages": table.num_pages,
                    "avg_rows_per_page": (
                        table.num_rows / table.num_pages if table.num_pages else 0.0
                    ),
                }
            )
        return rows

    def __repr__(self) -> str:
        return f"Database({self.name}: tables={sorted(self.tables)})"
