"""Table schemas and index definitions.

A :class:`TableSchema` fixes the column order used by row tuples everywhere
in the engine.  :class:`IndexDef` describes one index: the engine supports a
single *clustered* index (which determines the physical row order of the
table, SQL Server style) and any number of non-clustered B-tree indexes,
optionally with included columns (making them covering for some queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.common.errors import SchemaError
from repro.sql.types import SqlType


@dataclass(frozen=True)
class ColumnDef:
    """One column: a name and a SQL type.

    ``width_bytes`` is the simulated storage width used by the page layout
    to decide rows-per-page; defaults approximate fixed-width encodings.
    """

    name: str
    sql_type: SqlType
    width_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.width_bytes < 0:
            raise SchemaError(f"column {self.name}: negative width {self.width_bytes}")
        if self.width_bytes == 0:
            object.__setattr__(self, "width_bytes", _DEFAULT_WIDTHS[self.sql_type])


_DEFAULT_WIDTHS: dict[SqlType, int] = {
    SqlType.INT: 8,
    SqlType.FLOAT: 8,
    SqlType.STR: 32,
    SqlType.DATE: 4,
}


class TableSchema:
    """Ordered column definitions for a table.

    Rows are plain tuples in schema order.  The schema provides fast
    name -> position resolution and row validation.
    """

    __slots__ = ("table_name", "columns", "_positions", "row_width_bytes")

    def __init__(self, table_name: str, columns: Sequence[ColumnDef]) -> None:
        if not table_name or not table_name.isidentifier():
            raise SchemaError(f"invalid table name {table_name!r}")
        if not columns:
            raise SchemaError(f"table {table_name}: at least one column required")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {table_name}: duplicate column names in {names}")
        self.table_name = table_name
        self.columns: tuple[ColumnDef, ...] = tuple(columns)
        self._positions = {c.name: i for i, c in enumerate(columns)}
        self.row_width_bytes = sum(c.width_bytes for c in columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def position(self, column: str) -> int:
        """Position of ``column`` in row tuples; raises on unknown names."""
        try:
            return self._positions[column]
        except KeyError:
            raise SchemaError(
                f"table {self.table_name} has no column {column!r}; "
                f"columns are {list(self._positions)}"
            ) from None

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.position(name)]

    def has_column(self, name: str) -> bool:
        return name in self._positions

    def validate_row(self, row: Sequence[Any]) -> tuple:
        """Type-check a row against the schema; returns the row as a tuple."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.table_name}: row has {len(row)} values, "
                f"schema has {len(self.columns)} columns"
            )
        return tuple(
            col.sql_type.validate(value) for col, value in zip(self.columns, row)
        )

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.sql_type.value}" for c in self.columns)
        return f"TableSchema({self.table_name}: {cols})"


#: Partitioning strategies the catalog understands.  ``range`` carves the
#: table into contiguous runs of whole pages in clustering-key order (the
#: layout under which per-shard page counts sum exactly to the global
#: ones); ``hash`` scatters rows by a deterministic hash of the
#: partitioning column (balanced, but shard pages no longer correspond
#: 1:1 to global pages).
PARTITION_STRATEGIES = ("range", "hash")


@dataclass(frozen=True)
class PartitionSpec:
    """How a database is split across shards.

    ``column`` names the partitioning column; ``None`` defaults to the
    table's clustering key (or its first column for a heap).  One spec
    applies database-wide so every table of a shard lives on the same
    shard boundary discipline.
    """

    num_shards: int
    strategy: str = "range"
    column: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise SchemaError(
                f"partition spec needs >= 1 shard, got {self.num_shards}"
            )
        if self.strategy not in PARTITION_STRATEGIES:
            raise SchemaError(
                f"unknown partition strategy {self.strategy!r}; "
                f"expected one of {PARTITION_STRATEGIES}"
            )


@dataclass(frozen=True)
class TablePartition:
    """One shard's slice of a partitioned table.

    For ``range`` partitioning the slice is a contiguous run of whole
    global pages: ``page_offset`` is the global page id of the shard's
    first local page and ``row_offset`` the global row position of its
    first row, so ``global_page = page_offset + local_page`` maps shard
    accounting back onto the unsharded layout.  Hash partitioning has no
    such correspondence; both offsets are ``None`` there.
    """

    spec: PartitionSpec
    shard_index: int
    page_offset: Optional[int] = None
    row_offset: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.shard_index < self.spec.num_shards:
            raise SchemaError(
                f"shard index {self.shard_index} outside "
                f"[0, {self.spec.num_shards})"
            )


@dataclass(frozen=True)
class IndexDef:
    """Metadata for one index.

    ``key_columns`` is the search key (composite keys supported).  For a
    clustered index the table's rows are physically ordered by the key; for
    a non-clustered index the leaf entries carry the row locator (RID for a
    heap, clustering key otherwise).  ``included_columns`` widen the leaf
    entries so more queries are *covered* (answerable from the index alone).
    """

    name: str
    table_name: str
    key_columns: tuple[str, ...]
    clustered: bool = False
    included_columns: tuple[str, ...] = field(default_factory=tuple)
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise SchemaError(f"index {self.name}: key_columns must not be empty")
        overlap = set(self.key_columns) & set(self.included_columns)
        if overlap:
            raise SchemaError(
                f"index {self.name}: columns {sorted(overlap)} are both key and included"
            )

    @property
    def leading_column(self) -> str:
        """First key column — the one a single-column seek predicate targets."""
        return self.key_columns[0]

    def carried_columns(self) -> tuple[str, ...]:
        """All columns physically present in the index leaves."""
        return self.key_columns + self.included_columns

    def covers(self, needed: Iterable[str]) -> bool:
        """Whether the index leaves carry every column in ``needed``."""
        carried = set(self.carried_columns())
        return all(col in carried for col in needed)
