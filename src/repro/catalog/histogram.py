"""Equi-depth histograms for cardinality estimation.

The optimizer's cardinality estimates come from per-column equi-depth
histograms (the standard structure; cf. Poosala et al., SIGMOD 1996, cited
by the paper).  The paper's methodology *injects accurate cardinalities* to
isolate page-count error from cardinality error — the histograms exist so
the engine is a complete, realistic optimizer and so the experiments can
also run without injection.

A histogram stores, per bucket: the inclusive value range, the row count
and the number of distinct values.  Estimation of range predicates uses
linear interpolation within a bucket for numeric and date columns and a
half-bucket heuristic for strings.
"""

from __future__ import annotations

import bisect
import datetime
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.common.errors import EstimationError
from repro.sql.predicates import AtomicPredicate, Between, Comparison, InList


def _to_number(value: Any) -> Optional[float]:
    """Map a value to a real number for interpolation, or None if unordered."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


@dataclass(frozen=True)
class Bucket:
    """One equi-depth bucket: inclusive [low, high] with counts."""

    low: Any
    high: Any
    row_count: int
    distinct_count: int

    def __post_init__(self) -> None:
        if self.row_count < 0 or self.distinct_count < 0:
            raise EstimationError("bucket counts must be non-negative")
        if self.distinct_count > self.row_count:
            raise EstimationError("bucket distinct_count exceeds row_count")


class EquiDepthHistogram:
    """Equi-depth histogram over one column's values.

    Buckets partition the sorted value sequence into runs of roughly equal
    row counts, with the constraint that equal values never straddle a
    bucket boundary (so equality estimates are well defined).
    """

    def __init__(self, column: str, buckets: Sequence[Bucket], null_count: int = 0):
        self.column = column
        self.buckets: tuple[Bucket, ...] = tuple(buckets)
        self.null_count = null_count
        self.total_rows = sum(b.row_count for b in buckets) + null_count
        self._lows = [b.low for b in self.buckets]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, column: str, values: Sequence[Any], num_buckets: int = 64
    ) -> "EquiDepthHistogram":
        """Build from raw column values (unsorted, may contain None)."""
        if num_buckets <= 0:
            raise EstimationError(f"num_buckets must be positive, got {num_buckets}")
        non_null = sorted(v for v in values if v is not None)
        null_count = len(values) - len(non_null)
        if not non_null:
            return cls(column, [], null_count)

        target = max(1, len(non_null) // num_buckets)
        buckets: list[Bucket] = []
        start = 0
        n = len(non_null)
        while start < n:
            end = min(start + target, n)
            # Grow the bucket so equal values do not straddle the boundary.
            while end < n and non_null[end] == non_null[end - 1]:
                end += 1
            chunk = non_null[start:end]
            distinct = 1
            for i in range(1, len(chunk)):
                if chunk[i] != chunk[i - 1]:
                    distinct += 1
            buckets.append(
                Bucket(
                    low=chunk[0],
                    high=chunk[-1],
                    row_count=len(chunk),
                    distinct_count=distinct,
                )
            )
            start = end
        return cls(column, buckets, null_count)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def estimate_predicate(self, predicate: AtomicPredicate) -> float:
        """Estimated number of rows satisfying ``predicate``.

        Supports the atomic predicate forms of :mod:`repro.sql.predicates`.
        """
        if predicate.column != self.column:
            raise EstimationError(
                f"histogram is over {self.column!r}, predicate over "
                f"{predicate.column!r}"
            )
        if not self.buckets:
            return 0.0
        if isinstance(predicate, Comparison):
            return self._estimate_comparison(predicate.op, predicate.value)
        if isinstance(predicate, Between):
            return self._estimate_range(predicate.low, predicate.high)
        if isinstance(predicate, InList):
            return sum(self._estimate_comparison("=", v) for v in predicate.values)
        raise EstimationError(f"unsupported predicate type {type(predicate).__name__}")

    def estimate_selectivity(self, predicate: AtomicPredicate) -> float:
        """Estimated fraction of the table's rows satisfying ``predicate``."""
        if self.total_rows == 0:
            return 0.0
        return min(1.0, self.estimate_predicate(predicate) / self.total_rows)

    def estimate_distinct(self) -> int:
        """Estimated number of distinct non-null values in the column."""
        return sum(b.distinct_count for b in self.buckets)

    # -- internals ------------------------------------------------------
    def _estimate_comparison(self, op: str, value: Any) -> float:
        if op == "=":
            return self._estimate_equals(value)
        if op == "!=":
            non_null = self.total_rows - self.null_count
            return max(0.0, non_null - self._estimate_equals(value))
        if op in ("<", "<="):
            return self._estimate_below(value, inclusive=(op == "<="))
        if op in (">", ">="):
            non_null = self.total_rows - self.null_count
            below = self._estimate_below(value, inclusive=(op == ">"))
            return max(0.0, non_null - below)
        raise EstimationError(f"unknown comparison op {op!r}")

    def _estimate_equals(self, value: Any) -> float:
        bucket = self._bucket_for(value)
        if bucket is None:
            return 0.0
        # Uniform-within-bucket: rows spread evenly over distinct values.
        return bucket.row_count / max(1, bucket.distinct_count)

    def _estimate_range(self, low: Any, high: Any) -> float:
        below_high = self._estimate_below(high, inclusive=True)
        below_low = self._estimate_below(low, inclusive=False)
        return max(0.0, below_high - below_low)

    def _estimate_below(self, value: Any, inclusive: bool) -> float:
        """Estimated rows with column < value (or <= when inclusive)."""
        total = 0.0
        for bucket in self.buckets:
            if bucket.high < value:
                total += bucket.row_count
            elif bucket.low > value:
                break
            else:
                total += self._partial_bucket(bucket, value, inclusive)
        return total

    def _partial_bucket(self, bucket: Bucket, value: Any, inclusive: bool) -> float:
        low_n, high_n, value_n = (
            _to_number(bucket.low),
            _to_number(bucket.high),
            _to_number(value),
        )
        if low_n is None or high_n is None or value_n is None or high_n == low_n:
            fraction = 0.5  # unordered domain (strings): half-bucket heuristic
        else:
            fraction = (value_n - low_n) / (high_n - low_n)
            fraction = min(1.0, max(0.0, fraction))
        estimate = bucket.row_count * fraction
        if inclusive and bucket.low <= value <= bucket.high:
            # Include the boundary value itself: one distinct value's share.
            estimate += bucket.row_count / max(1, bucket.distinct_count)
        return min(float(bucket.row_count), estimate)

    def _bucket_for(self, value: Any) -> Optional[Bucket]:
        """The bucket whose [low, high] contains ``value``, if any."""
        try:
            pos = bisect.bisect_right(self._lows, value) - 1
        except TypeError as exc:
            raise EstimationError(
                f"value {value!r} is not comparable with histogram domain of "
                f"{self.column!r}"
            ) from exc
        if pos < 0:
            return None
        bucket = self.buckets[pos]
        if bucket.low <= value <= bucket.high:
            return bucket
        return None

    def __repr__(self) -> str:
        return (
            f"EquiDepthHistogram({self.column}: {len(self.buckets)} buckets, "
            f"{self.total_rows} rows)"
        )
