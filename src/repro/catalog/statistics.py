"""Per-table statistics: row counts, page counts and column histograms.

This is the metadata the optimizer consumes.  Page counts come from the
storage layer (the catalog records them after load, like ``sysindexes``
page counters); histograms are built on demand per column.  The paper's
point is precisely that these statistics say nothing about *on-disk
clustering*, so the optimizer must fall back to analytical page-count
formulas — which the feedback mechanisms then correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import EstimationError
from repro.catalog.histogram import EquiDepthHistogram
from repro.sql.predicates import AtomicPredicate, Conjunction


@dataclass
class TableStatistics:
    """Statistics snapshot for one table."""

    table_name: str
    row_count: int
    page_count: int
    avg_rows_per_page: float
    histograms: dict[str, EquiDepthHistogram] = field(default_factory=dict)

    def histogram_for(self, column: str) -> EquiDepthHistogram:
        try:
            return self.histograms[column]
        except KeyError:
            raise EstimationError(
                f"no histogram on {self.table_name}.{column}; "
                f"available: {sorted(self.histograms)}"
            ) from None

    def has_histogram(self, column: str) -> bool:
        return column in self.histograms

    # ------------------------------------------------------------------
    # Cardinality estimation (independence across terms, the textbook —
    # and SQL Server — assumption)
    # ------------------------------------------------------------------
    def estimate_term_selectivity(self, predicate: AtomicPredicate) -> float:
        """Selectivity of one atomic predicate from its column histogram.

        Falls back to a conventional magic constant (1/3 for ranges, 1/10
        for equality) when no histogram exists, as classic optimizers do.
        """
        if self.has_histogram(predicate.column):
            return self.histogram_for(predicate.column).estimate_selectivity(predicate)
        from repro.sql.predicates import Comparison

        if isinstance(predicate, Comparison) and predicate.op == "=":
            return 0.1
        return 1.0 / 3.0

    def estimate_selectivity(self, conjunction: Conjunction) -> float:
        """Selectivity of a conjunction under term independence."""
        selectivity = 1.0
        for term in conjunction.terms:
            selectivity *= self.estimate_term_selectivity(term)
        return selectivity

    def estimate_cardinality(self, conjunction: Conjunction) -> float:
        """Estimated number of rows satisfying ``conjunction``."""
        return self.row_count * self.estimate_selectivity(conjunction)

    def estimate_distinct(self, column: str) -> int:
        """Estimated distinct values in ``column`` (histogram-based)."""
        if self.has_histogram(column):
            return max(1, self.histogram_for(column).estimate_distinct())
        return max(1, self.row_count // 10)

    def __repr__(self) -> str:
        return (
            f"TableStatistics({self.table_name}: {self.row_count} rows, "
            f"{self.page_count} pages, {self.avg_rows_per_page:.1f} rows/page)"
        )


def build_statistics(
    table_name: str,
    rows: list[tuple],
    column_names: list[str],
    page_count: int,
    histogram_columns: Optional[list[str]] = None,
    num_buckets: int = 64,
) -> TableStatistics:
    """Construct :class:`TableStatistics` by scanning ``rows``.

    ``histogram_columns`` defaults to all columns.  This mimics
    ``UPDATE STATISTICS ... WITH FULLSCAN``: exact row counts and
    full-resolution equi-depth histograms.
    """
    row_count = len(rows)
    avg = row_count / page_count if page_count else 0.0
    stats = TableStatistics(
        table_name=table_name,
        row_count=row_count,
        page_count=page_count,
        avg_rows_per_page=avg,
    )
    targets = histogram_columns if histogram_columns is not None else list(column_names)
    for column in targets:
        position = column_names.index(column)
        values = [row[position] for row in rows]
        stats.histograms[column] = EquiDepthHistogram.build(
            column, values, num_buckets=num_buckets
        )
    return stats
