"""Catalog: schemas, statistics, histograms and the database registry."""

from repro.catalog.catalog import Database
from repro.catalog.histogram import Bucket, EquiDepthHistogram
from repro.catalog.schema import ColumnDef, IndexDef, TableSchema
from repro.catalog.statistics import TableStatistics, build_statistics

__all__ = [
    "Bucket",
    "ColumnDef",
    "Database",
    "EquiDepthHistogram",
    "IndexDef",
    "TableSchema",
    "TableStatistics",
    "build_statistics",
]
