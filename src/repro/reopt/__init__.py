"""Mid-query re-optimization (the regret watchdog).

The paper's feedback loop corrects distinct-page-count estimates *after*
a query finishes (§II-C): the next query benefits, the mis-planned one
pays full price.  This package closes the loop mid-flight.  A
:class:`~repro.reopt.watchdog.RegretWatchdog` subscribes to the
execution's monitor bundles and, at checkpoint boundaries, compares the
streaming actuals against the optimizer's estimates; when the divergence
crosses an incremental threshold (with hysteresis and a min-progress
guard so cheap queries never pay), it trips the execution's
:class:`~repro.common.cancellation.CancellationToken` with a typed
:class:`~repro.common.errors.ReoptRequested` reason.  The
:mod:`~repro.reopt.episode` runner then harvests the *partial* actuals
into lower-bound injections, re-optimizes through the existing
``build_optimizer`` path, and either restarts under the new plan or
resumes where the consumed prefix is replayable — recording every step
as stages in the session's lifecycle trace.

Only this package may construct partial-observation injections or
request ``ReoptRequested`` cancellation (codelint rule R015).
"""

from repro.reopt.episode import ReoptEpisode, run_with_reopt
from repro.reopt.harvest import harvest_partials
from repro.reopt.policy import MODES, ReoptPolicy
from repro.reopt.watchdog import RegretWatchdog

__all__ = [
    "MODES",
    "ReoptEpisode",
    "ReoptPolicy",
    "RegretWatchdog",
    "harvest_partials",
    "run_with_reopt",
]
