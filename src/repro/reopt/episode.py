"""The re-optimization episode: run, trip, harvest, replan, switch.

:func:`run_with_reopt` wraps one query's lifecycle in the mid-query
re-optimization state machine::

    execute ──(no trip)──────────────────────────────▶ done
       │
       └─(ReoptRequested at a checkpoint)─▶ harvest partial actuals
                                               │ (epoch-free ingest)
                                               ▼
                                            replan (cache bypassed,
                                               partial bounds injected)
                                               │
                               ┌───────────────┴──────────────┐
                               ▼                              ▼
                            resume                         restart
                    (replay boundary legal:          (new plan, from the
                     count the unscanned              top, same warm
                     suffix and add the               IOContext)
                     consumed prefix's rows)

    Every transition is a StageRecord in the session's lifecycle trace:
    reopt-trip → reopt-harvest → reopt-replan → reopt-resume|reopt-restart.

The second leg always runs watchdog-free, so an episode performs at most
one trip and terminates by construction.  Both legs share one IOContext:
the switched run inherits the buffer-pool warmth the cancelled prefix
paid for (exactly what a real mid-query switch would see), and the final
``RunStats.elapsed_ms`` is the episode's total —
``T_partial + T_replan + T_new`` — which is what the A/B harness
compares against the unswitched plan's full cost.

The replan deliberately bypasses the plan cache: a plan optimized from
partial lower bounds must never be published under a cache key that
outlives them (partial ingests do not bump feedback epochs, so cached
plans' freshness vectors still describe the last *complete* harvest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.common.cancellation import CancellationToken
from repro.common.errors import ReoptRequested
from repro.core.requests import PageCountRequest
from repro.exec.executor import QueryResult
from repro.lifecycle.plan import build_optimizer
from repro.lifecycle.runner import ExecutedQuery
from repro.optimizer.hints import PlanHint
from repro.optimizer.optimizer import Query, SingleTableQuery
from repro.optimizer.plans import CountPlan, PlanNode, SeqScanPlan
from repro.reopt.harvest import harvest_partials
from repro.reopt.policy import ReoptPolicy
from repro.reopt.watchdog import RegretWatchdog, WatchTarget
from repro.sql.predicates import Comparison, Conjunction
from repro.storage.accounting import IOContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session -> reopt)
    from repro.session import Session


@dataclass
class ReoptEpisode:
    """What one reopt-wrapped execution did, for telemetry and reports."""

    executed: ExecutedQuery
    tripped: bool = False
    #: The replan chose a different plan than the one that tripped.
    switched: bool = False
    #: The episode replayed the unscanned suffix instead of restarting.
    resumed: bool = False
    #: Tripped, replanned — and re-chose the same plan (wasted work).
    false_trip: bool = False
    trip_detail: str = ""
    partials_recorded: int = 0
    original_plan: Optional[PlanNode] = None
    final_plan: Optional[PlanNode] = None

    def to_dict(self) -> dict:
        return {
            "tripped": self.tripped,
            "switched": self.switched,
            "resumed": self.resumed,
            "false_trip": self.false_trip,
            "trip_detail": self.trip_detail,
            "partials_recorded": self.partials_recorded,
        }


def _resume_remainder(
    query: Query,
    plan: PlanNode,
    watchdog: RegretWatchdog,
    exec_mode: str,
) -> Optional[tuple[WatchTarget, SingleTableQuery]]:
    """The replayable-suffix query, when the consumed prefix is replayable.

    Resume is legal only for the shape whose partial work is a pure
    prefix count: ``COUNT(*)`` over a full scan of a table clustered on
    a unique single-column key, stopped at a page boundary by the
    batch/columnar drive.  Then the scan's emitted-row counter *is* the
    count over ``key <= resume_key``, and the remainder is the original
    predicate AND ``key > resume_key`` — no row can be missed or counted
    twice.  ``COUNT(column)`` shapes are excluded (the scan counter
    counts matching rows, not non-null values of the column), as is the
    row drive (its root-level cancellation check can fire mid-page).
    """
    if exec_mode == "row":
        return None
    if not isinstance(query, SingleTableQuery) or query.count_column is not None:
        return None
    if not isinstance(plan, CountPlan) or not isinstance(plan.child, SeqScanPlan):
        return None
    if plan.child.table != query.table:
        return None
    target = watchdog.resume_target()
    if target is None or target.table_name != query.table:
        return None
    key_column = target.resume_key_column
    resume_key = target.operator.resume_key  # type: ignore[attr-defined]
    assert key_column is not None
    remainder = SingleTableQuery(
        table=query.table,
        predicate=Conjunction(
            query.predicate.terms + (Comparison(key_column, ">", resume_key),)
        ),
        count_column=None,
    )
    return target, remainder


def run_with_reopt(
    session: "Session",
    query: Query,
    requests: Sequence[PageCountRequest] = (),
    policy: Optional[ReoptPolicy] = None,
    use_feedback: bool = False,
    hint: Optional[PlanHint] = None,
    cold_cache: bool = True,
    io: Optional[IOContext] = None,
    exec_mode: str = "batch",
    cancellation: Optional[CancellationToken] = None,
    remember: bool = False,
) -> ReoptEpisode:
    """Run ``query`` under the regret watchdog; switch plans on a trip.

    ``cancellation`` may carry the caller's deadline token — the
    watchdog trips *through* it (first cancel wins, so a deadline cancel
    is never upgraded to a reopt trip).  A trip consumes the token: the
    post-trip leg runs uncancellable, which bounds an episode at one
    trip.  Any non-reopt :class:`~repro.common.errors.QueryCancelled`
    propagates to the caller exactly as it would without the watchdog.
    """
    policy = policy if policy is not None else ReoptPolicy()
    lifecycle = session.lifecycle()
    plan_node, trace = lifecycle.plan(query, use_feedback=use_feedback, hint=hint)
    session.last_trace = trace

    # Baselines must be the estimates the chosen plan was built from —
    # the same snapshot rule the planning stage applies.
    if use_feedback:
        baseline_injections, _ = session.feedback.snapshot_injections(
            session.injections.copy(), query.tables()
        )
    else:
        baseline_injections = session.injections.copy()

    token = cancellation if cancellation is not None else CancellationToken()
    watchdog = RegretWatchdog(
        policy=policy,
        token=token,
        database=session.database,
        injections=baseline_injections,
        page_count_model=session.page_count_model,
        arm_resume=policy.mode in ("auto", "resume"),
    )
    if io is None:
        io = session.database.new_io_context()

    try:
        executed = lifecycle.run_plan(
            query,
            plan_node,
            requests=requests,
            cold_cache=cold_cache,
            io=io,
            remember=remember,
            trace=trace,
            exec_mode=exec_mode,
            cancellation=token,
            watchdog=watchdog,
        )
        episode = ReoptEpisode(
            executed=executed,
            original_plan=plan_node,
            final_plan=plan_node,
        )
        executed.result.runstats.lifecycle["reopt"] = episode.to_dict()
        return episode
    except ReoptRequested:
        pass  # fall through to the switch path below

    trace.record("execute", "cancelled", watchdog.trip_detail)
    trace.record("reopt-trip", "ok", watchdog.trip_detail)

    partials = harvest_partials(watchdog)
    if session.feedback_lock is None:
        stored = session.feedback.record_partial_observations(partials)
    else:
        with session.feedback_lock:
            stored = session.feedback.record_partial_observations(partials)
    trace.record(
        "reopt-harvest",
        "ok",
        f"{stored} partial lower bound(s), epoch untouched",
    )

    # Replan with the partial bounds injected, bypassing the plan cache:
    # lower-bound plans must never be published for other queries.
    io.cpu_ms += policy.replan_cost_ms
    replan_injections = session.feedback.to_injections(session.injections.copy())
    optimizer = build_optimizer(
        session.database,
        injections=replan_injections,
        page_count_model=session.page_count_model,
        hint=hint,
    )
    new_plan = optimizer.optimize(query)
    switched = new_plan.signature() != plan_node.signature()
    trace.record(
        "reopt-replan",
        "ok",
        f"cache=bypassed switched={switched} plan={new_plan.describe()}",
    )

    episode = ReoptEpisode(
        executed=None,  # type: ignore[arg-type]  # set below
        tripped=True,
        switched=switched,
        false_trip=not switched,
        trip_detail=watchdog.trip_detail,
        partials_recorded=stored,
        original_plan=plan_node,
    )

    resumable = _resume_remainder(query, plan_node, watchdog, exec_mode)
    if resumable is not None:
        target, remainder_query = resumable
        prefix_rows = target.operator.stats.actual_rows
        remainder_plan = optimizer.optimize(remainder_query)
        trace.record(
            "reopt-resume",
            "ok",
            f"prefix: {target.pages_seen} page(s), {prefix_rows} row(s); "
            f"remainder plan: {remainder_plan.describe()}",
        )
        executed = lifecycle.run_plan(
            remainder_query,
            remainder_plan,
            requests=(),
            cold_cache=False,
            io=io,
            remember=False,
            trace=trace,
            exec_mode=exec_mode,
        )
        total = prefix_rows + int(executed.result.scalar())
        executed = ExecutedQuery(
            query=query,
            plan=remainder_plan,
            result=QueryResult(
                rows=[(total,)],
                runstats=executed.result.runstats,
                columns=executed.result.columns,
            ),
            trace=trace,
        )
        episode.resumed = True
        episode.final_plan = remainder_plan
    else:
        trace.record(
            "reopt-restart",
            "ok",
            f"from the top under {new_plan.describe()}",
        )
        executed = lifecycle.run_plan(
            query,
            new_plan,
            requests=requests,
            cold_cache=False,
            io=io,
            remember=remember,
            trace=trace,
            exec_mode=exec_mode,
        )
        episode.final_plan = new_plan

    episode.executed = executed
    executed.result.runstats.lifecycle["reopt"] = episode.to_dict()
    session.last_trace = trace
    return episode
