"""Knobs of the mid-query re-optimization loop."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import EngineError

#: Allowed values of :attr:`ReoptPolicy.mode`.
MODES = ("auto", "restart", "resume")


@dataclass(frozen=True)
class ReoptPolicy:
    """When the regret watchdog may trip, and what happens afterwards.

    The trip condition is deliberately conservative — PLANSIEVE-style
    incremental thresholds with hysteresis — so that well-estimated
    queries never pay more than the (simulated-time-visible) watchdog
    checks themselves:

    * a request's projected final DPC must diverge from the optimizer's
      estimate by at least :attr:`trip_ratio` (q-error style, so both
      over- and under-estimates count),
    * for :attr:`hysteresis_checks` *consecutive* checkpoint
      evaluations (one flat page cannot trip a scan), and
    * only after the scan has real progress to project from:
      :attr:`min_pages` pages seen **and** :attr:`min_progress_fraction`
      of the table covered — cheap queries finish before either guard
      clears.
    """

    #: Minimum q-error between projected and estimated DPC to count a
    #: checkpoint as a breach (2.0 = off by 2x either way).
    trip_ratio: float = 2.0
    #: Consecutive breaching evaluations required before tripping.
    hysteresis_checks: int = 3
    #: Fraction of the table a scan must have covered before the
    #: projection is trusted at all.
    min_progress_fraction: float = 0.05
    #: Absolute floor on pages seen (small tables never trip).
    min_pages: int = 8
    #: Maximum trips per episode.  The second run always executes
    #: watchdog-free, so an episode terminates by construction.
    max_trips: int = 1
    #: What to do after a trip: "restart" re-runs the new plan from
    #: scratch, "resume" replays only the unscanned suffix (legal for
    #: count-over-clustered-scan shapes, see the episode runner), and
    #: "auto" resumes when legal, restarts otherwise.
    mode: str = "auto"
    #: Simulated cost of the mid-flight re-optimization itself, charged
    #: to the episode's IOContext so T_switch honestly includes
    #: T_replan.
    replan_cost_ms: float = 0.5
    #: Evaluate the divergence only every N-th checkpoint (1 = every
    #: page boundary).  Checks are charged as monitor checks either way.
    evaluate_every: int = 1

    def __post_init__(self) -> None:
        if self.trip_ratio < 1.0:
            raise EngineError(
                f"trip_ratio must be >= 1.0, got {self.trip_ratio}"
            )
        if self.hysteresis_checks < 1:
            raise EngineError(
                f"hysteresis_checks must be >= 1, got {self.hysteresis_checks}"
            )
        if not 0.0 <= self.min_progress_fraction < 1.0:
            raise EngineError(
                "min_progress_fraction must be in [0, 1), got "
                f"{self.min_progress_fraction}"
            )
        if self.min_pages < 1:
            raise EngineError(f"min_pages must be >= 1, got {self.min_pages}")
        if self.max_trips < 0:
            raise EngineError(f"max_trips must be >= 0, got {self.max_trips}")
        if self.mode not in MODES:
            raise EngineError(
                f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.replan_cost_ms < 0:
            raise EngineError(
                f"replan_cost_ms must be >= 0, got {self.replan_cost_ms}"
            )
        if self.evaluate_every < 1:
            raise EngineError(
                f"evaluate_every must be >= 1, got {self.evaluate_every}"
            )
