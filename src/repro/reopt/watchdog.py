"""The regret watchdog: checkpoint-boundary divergence detection.

A :class:`RegretWatchdog` implements the executor's
:class:`~repro.exec.base.ExecutionWatchdog` seam.  :meth:`attach` walks
the built operator tree and latches onto every monitored scan (the
operators that host a :class:`~repro.core.monitors.ScanMonitorBundle`),
computing — with the *same* estimators the optimizer used — the DPC
baseline each monitored request was planned under.  :meth:`observe` then
runs at every ``ctx.checkpoint()``: it linearly projects each streaming
counter to end-of-scan (``satisfied * total_pages / pages_seen``) and
compares the projection against the baseline with the shared q-error
guard (:func:`~repro.core.selftuning.guarded_ratio`).  Enough
consecutive divergent evaluations — past the policy's progress guards —
trip the execution's cancellation token with the typed
:class:`~repro.common.errors.ReoptRequested` reason, which the episode
runner catches.

Every evaluation charges one monitor check to the execution's own
IOContext, so the watchdog's overhead is visible in simulated time like
any other monitor's (the uncorrelated-workload overhead gate in
``benchmarks/smoke_reopt.py`` measures exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.catalog import Database
from repro.common.cancellation import CancellationToken
from repro.core.monitors import ScanMonitorBundle
from repro.core.requests import AccessPathRequest
from repro.core.selftuning import guarded_ratio
from repro.exec.base import Operator
from repro.exec.scans import SeqScan, _MonitoredScanMixin
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.estimators import PageCountEstimator
from repro.optimizer.injection import InjectionSet
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.reopt.policy import ReoptPolicy
from repro.storage.accounting import IOContext


@dataclass
class WatchTarget:
    """One monitored scan the watchdog projects counters for."""

    operator: Operator  # a _MonitoredScanMixin scan, kept as Operator
    bundle: ScanMonitorBundle
    table_name: str
    total_pages: int
    #: request key -> the DPC the optimizer planned this request under.
    baselines: dict[str, float] = field(default_factory=dict)
    #: Set when the scan was armed for prefix replay (resume).
    resume_key_column: Optional[str] = None

    @property
    def pages_seen(self) -> int:
        return self.operator.stats.pages_touched


def _walk(operator: Operator) -> list[Operator]:
    out = [operator]
    for child in operator.children():
        out.extend(_walk(child))
    return out


class RegretWatchdog:
    """Observes checkpoint boundaries; trips the token on sustained regret."""

    def __init__(
        self,
        policy: ReoptPolicy,
        token: CancellationToken,
        database: Database,
        injections: Optional[InjectionSet] = None,
        page_count_model: Optional[AnalyticalPageCountModel] = None,
        arm_resume: bool = False,
    ) -> None:
        """``injections``/``page_count_model`` must be the ones the plan
        under watch was optimized from, so baselines reproduce the
        optimizer's own numbers (regret is measured against what the
        optimizer believed, not against some fresher estimate)."""
        self.policy = policy
        self.token = token
        self.database = database
        self.arm_resume = arm_resume
        self._cardinality = CardinalityEstimator(database, injections)
        self._pages = PageCountEstimator(
            database, model=page_count_model, injections=injections
        )
        self.targets: list[WatchTarget] = []
        self.tripped = False
        self.trip_detail = ""
        self._checks = 0
        self._consecutive_breaches = 0
        self._trips = 0

    # ------------------------------------------------------------------
    def attach(self, root: Operator) -> int:
        """Latch onto ``root``'s monitored scans; returns how many.

        Called by the lifecycle's ``run_plan`` between monitor planning
        and execution, so the watchdog sees exactly the bundles the run
        will feed.  Scans over tables with a unique single-column
        clustered key are additionally armed for resume tracking when
        the policy allows it (the per-page key recording that makes the
        consumed prefix replayable).
        """
        for operator in _walk(root):
            if not isinstance(operator, _MonitoredScanMixin):
                continue
            bundle = operator.bundle
            if not isinstance(bundle, ScanMonitorBundle):
                # Fetch-side bundles (covering scans, seek fetches) count
                # *data* pages off an index-driven stream; their pages_seen
                # progress is in index-page units, so a linear projection
                # against the table's page count would be unit-mismatched.
                continue
            table = operator.table
            target = WatchTarget(
                operator=operator,  # type: ignore[arg-type]
                bundle=bundle,
                table_name=table.name,
                total_pages=table.num_pages,
            )
            for progress in bundle.progress():
                request = progress.request
                if not isinstance(request, AccessPathRequest):
                    continue  # join baselines need join cardinalities;
                    # bit-vector counters stay harvest-only.
                fetched = self._cardinality.estimate_selection(
                    request.table, request.expression
                )
                baseline, _source = self._pages.access_dpc(
                    request.table, request.expression, fetched
                )
                target.baselines[request.key()] = baseline
            if self.arm_resume:
                self._arm_resume_tracking(operator, target)
            self.targets.append(target)
        return len(self.targets)

    def _arm_resume_tracking(
        self, operator: _MonitoredScanMixin, target: WatchTarget
    ) -> None:
        """Turn on per-page clustering-key recording where replay is legal.

        Only plain full scans of a table clustered on a single *unique*
        column qualify: uniqueness makes ``key <= resume_key`` an exact
        description of the scanned prefix (a duplicated boundary key
        could straddle the stop page).
        """
        if not isinstance(operator, SeqScan):
            return
        table = operator.table
        index = table.clustered_index
        if index is None or len(index.key_columns) != 1:
            return
        key_column = index.key_columns[0]
        stats = table.statistics
        if stats is None:
            return
        if stats.estimate_distinct(key_column) < stats.row_count:
            return
        operator.resume_tracking = True
        operator.resume_key_position = table.schema.position(key_column)
        target.resume_key_column = key_column

    def resume_target(self) -> Optional[WatchTarget]:
        """The armed scan with a recorded replay boundary, if any."""
        for target in self.targets:
            if (
                target.resume_key_column is not None
                and target.operator.resume_key is not None  # type: ignore[attr-defined]
            ):
                return target
        return None

    # ------------------------------------------------------------------
    def observe(self, io: IOContext) -> None:
        """One checkpoint-boundary evaluation (ExecutionWatchdog seam)."""
        self._checks += 1
        policy = self.policy
        if self._checks % policy.evaluate_every:
            return
        io.charge_monitor_checks(1)
        if self.tripped or self._trips >= policy.max_trips:
            return
        breach = self._worst_divergence()
        if breach is None:
            self._consecutive_breaches = 0
            return
        self._consecutive_breaches += 1
        if self._consecutive_breaches < policy.hysteresis_checks:
            return
        key, ratio, projected, baseline, progress = breach
        self.tripped = True
        self._trips += 1
        self.trip_detail = (
            f"{key}: projected {projected:.1f} vs estimated {baseline:.1f} "
            f"pages (q-error {ratio:.2f} >= {policy.trip_ratio}) at "
            f"{progress:.0%} progress"
        )
        self.token.cancel_for_reopt(self.trip_detail)

    def _worst_divergence(
        self,
    ) -> Optional[tuple[str, float, float, float, float]]:
        """The largest qualifying divergence this checkpoint, or None.

        Returns ``(request key, ratio, projected, baseline, progress)``
        for the worst request whose ratio clears the trip threshold,
        considering only targets past both progress guards.
        """
        policy = self.policy
        worst: Optional[tuple[str, float, float, float, float]] = None
        for target in self.targets:
            if not target.baselines:
                continue
            pages_seen = target.pages_seen
            if pages_seen < policy.min_pages or target.total_pages == 0:
                continue
            progress = pages_seen / target.total_pages
            if progress < policy.min_progress_fraction:
                continue
            scale = target.total_pages / pages_seen
            for monitor_progress in target.bundle.progress():
                key = monitor_progress.request.key()
                baseline = target.baselines.get(key)
                if baseline is None:
                    continue
                projected = monitor_progress.satisfied_pages * scale
                ratio = guarded_ratio(projected, baseline)
                if ratio < policy.trip_ratio:
                    continue
                if worst is None or ratio > worst[1]:
                    worst = (key, ratio, projected, baseline, progress)
        return worst
