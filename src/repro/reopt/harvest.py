"""Turning a stopped run's streaming counters into partial feedback.

A reopt-cancelled execution never reaches ``finalize`` — the
end-of-stream monitor flush (Fig. 3's final message) is skipped by the
exception on purpose, so nothing downstream can mistake a truncated
count for a finished one.  What the run *did* measure still has value:
every folded page's counter is an honest **lower bound** on the true
DPC.  :func:`harvest_partials` reads those counters off the watchdog's
attached bundles and wraps them as partial observations
(:func:`~repro.core.feedback.partial_page_count_observation`), which the
episode runner feeds to
:meth:`~repro.core.feedback.FeedbackStore.record_partial_observations`
— the epoch-free ingest path.  Codelint rule R015 keeps both calls
exclusive to this package.
"""

from __future__ import annotations

from repro.core.feedback import partial_page_count_observation
from repro.core.requests import PageCountObservation
from repro.reopt.watchdog import RegretWatchdog


def harvest_partials(watchdog: RegretWatchdog) -> list[PageCountObservation]:
    """Lower-bound observations from every scan the watchdog attached to.

    Counters cover only *folded* (fully processed) pages — the bundle's
    ``progress()`` contract — so each observation's ``pages_seen`` /
    ``total_pages`` coverage describes exactly the prefix the estimate
    was measured over.  Scans that never completed a page contribute
    nothing.
    """
    observations: list[PageCountObservation] = []
    for target in watchdog.targets:
        pages_seen = target.pages_seen
        if not pages_seen:
            continue
        for progress in target.bundle.progress():
            observations.append(
                partial_page_count_observation(
                    request=progress.request,
                    mechanism=progress.mechanism,
                    satisfied_pages=progress.satisfied_pages,
                    pages_seen=pages_seen,
                    total_pages=target.total_pages,
                )
            )
    return observations
