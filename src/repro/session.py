"""High-level session API: optimize, execute, monitor, feed back.

:class:`Session` is the front door most users (and all examples) go
through.  It ties together a :class:`~repro.catalog.Database`, the
optimizer, the monitor planner and a :class:`~repro.core.FeedbackStore`,
exposing the paper's full loop in three calls:

>>> session = Session(database)
>>> run = session.run(query, requests=[...])        # monitor current plan
>>> session.remember(run)                            # harvest feedback
>>> improved = session.run(query, use_feedback=True) # re-optimized plan
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.findings import Finding, errors, render_findings
from repro.analysis.planlint import lint_plan
from repro.catalog.catalog import Database
from repro.common.errors import PlanLintError
from repro.core.feedback import FeedbackStore
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import PageCountRequest
from repro.exec.executor import QueryResult, execute
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Optimizer, Query
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.optimizer.plans import PlanNode
from repro.storage.accounting import IOContext


@dataclass
class ExecutedQuery:
    """A plan and the result of running it."""

    query: Query
    plan: PlanNode
    result: QueryResult

    @property
    def elapsed_ms(self) -> float:
        return self.result.elapsed_ms

    @property
    def observations(self):
        return self.result.runstats.observations

    def summary(self) -> str:
        return (
            f"{self.query.describe()}\n"
            f"plan: {self.plan.describe()}\n"
            f"{self.result.runstats.render()}"
        )


@dataclass
class Session:
    """One user's connection to the simulated engine."""

    database: Database
    feedback: FeedbackStore = field(default_factory=FeedbackStore)
    injections: InjectionSet = field(default_factory=InjectionSet)
    monitor_config: MonitorConfig = field(default_factory=MonitorConfig)
    page_count_model: Optional[AnalyticalPageCountModel] = None
    #: Lint every optimized plan (repro.analysis.planlint, rules P001-P006)
    #: before it reaches the monitor planner.  Findings accumulate in
    #: :attr:`lint_findings`; with :attr:`strict_lint` an error-severity
    #: finding raises :class:`~repro.common.errors.PlanLintError` instead.
    lint_plans: bool = True
    strict_lint: bool = False
    lint_findings: list[Finding] = field(default_factory=list)
    #: Acquired around feedback-store writes when the session shares its
    #: :class:`~repro.core.feedback.FeedbackStore` with concurrent sessions
    #: (an :class:`~repro.engine.Engine` sets this; standalone sessions
    #: leave it None and write directly).  Any context-manager lock works.
    feedback_lock: Optional[object] = None

    # ------------------------------------------------------------------
    def optimizer(
        self,
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
        extra_injections: Optional[InjectionSet] = None,
    ) -> Optimizer:
        injections = (
            extra_injections if extra_injections is not None else self.injections
        ).copy()
        if use_feedback:
            injections = self.feedback.to_injections(injections)
        return Optimizer(
            self.database,
            injections=injections,
            page_count_model=self.page_count_model,
            hint=hint,
        )

    def optimize(
        self,
        query: Query,
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
    ) -> PlanNode:
        optimizer = self.optimizer(use_feedback=use_feedback, hint=hint)
        plan = optimizer.optimize(query)
        if self.lint_plans:
            self._lint(plan, optimizer.injections)
        return plan

    def _lint(self, plan: PlanNode, injections: InjectionSet) -> None:
        findings = lint_plan(plan, self.database, injections=injections)
        if not findings:
            return
        self.lint_findings.extend(findings)
        if self.strict_lint and errors(findings):
            raise PlanLintError(
                "optimized plan violates plan invariants:\n"
                + render_findings(findings)
            )

    # ------------------------------------------------------------------
    def run_plan(
        self,
        query: Query,
        plan: PlanNode,
        requests: Sequence[PageCountRequest] = (),
        cold_cache: bool = True,
        io: Optional[IOContext] = None,
    ) -> ExecutedQuery:
        """Execute a specific plan, with monitors for ``requests``.

        ``io`` is the execution's accounting context (default: a fresh
        shared-pool context); pass an *isolated* context to run
        interference-free next to concurrent executions.
        """
        build = build_executable(
            plan, self.database, list(requests), self.monitor_config
        )
        result = execute(build.root, self.database, cold_cache=cold_cache, io=io)
        result.runstats.observations.extend(build.unanswerable)
        return ExecutedQuery(query=query, plan=plan, result=result)

    def run(
        self,
        query: Query,
        requests: Sequence[PageCountRequest] = (),
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
        cold_cache: bool = True,
        io: Optional[IOContext] = None,
    ) -> ExecutedQuery:
        """Optimize then execute, with monitoring."""
        plan = self.optimize(query, use_feedback=use_feedback, hint=hint)
        return self.run_plan(
            query, plan, requests=requests, cold_cache=cold_cache, io=io
        )

    # ------------------------------------------------------------------
    def remember(self, executed: ExecutedQuery) -> int:
        """Harvest an executed query's page-count feedback; returns the
        number of observations stored.  Serialized under
        :attr:`feedback_lock` when the store is shared."""
        if self.feedback_lock is None:
            return self.feedback.record_run(executed.result.runstats)
        with self.feedback_lock:  # type: ignore[attr-defined]
            return self.feedback.record_run(executed.result.runstats)
