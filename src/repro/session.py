"""High-level session API: optimize, execute, monitor, feed back.

:class:`Session` is the front door most users (and all examples) go
through.  It ties together a :class:`~repro.catalog.Database`, the
optimizer, the monitor planner and a :class:`~repro.core.FeedbackStore`,
exposing the paper's full loop in three calls:

>>> session = Session(database)
>>> run = session.run(query, requests=[...])        # monitor current plan
>>> session.remember(run)                            # harvest feedback
>>> improved = session.run(query, use_feedback=True) # re-optimized plan

Every ``run``/``optimize`` goes through the staged **query lifecycle**
(:mod:`repro.lifecycle`): canonicalize → plan-cache → optimize → lint →
monitor-plan → execute → harvest.  A standalone session has no plan
cache by default (every optimize is fresh, as before); sessions handed
out by an :class:`~repro.engine.Engine` share the engine's
:class:`~repro.lifecycle.PlanCache`, so repeated queries skip the
optimize and lint stages entirely while feedback epochs guarantee a
cached plan is never stale.  The last run's stage-by-stage record is in
:attr:`Session.last_trace` (and in ``RunStats.render()``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ContextManager, Optional, Sequence

from repro.analysis.findings import Finding, errors, render_findings
from repro.analysis.planlint import lint_plan
from repro.catalog.catalog import Database
from repro.common.cancellation import CancellationToken
from repro.common.errors import PlanLintError
from repro.core.feedback import FeedbackStore
from repro.core.planner import MonitorConfig
from repro.core.requests import PageCountRequest
from repro.lifecycle.plan import build_optimizer
from repro.lifecycle.plancache import PlanCache
from repro.lifecycle.runner import ExecutedQuery, LifecycleTrace, QueryLifecycle
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import Optimizer, Query
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.optimizer.plans import PlanNode
from repro.storage.accounting import IOContext

if TYPE_CHECKING:  # pragma: no cover - annotation-only (reopt imports session)
    from repro.reopt.policy import ReoptPolicy

__all__ = ["ExecutedQuery", "Session"]


@dataclass
class Session:
    """One user's connection to the simulated engine."""

    database: Database
    feedback: FeedbackStore = field(default_factory=FeedbackStore)
    injections: InjectionSet = field(default_factory=InjectionSet)
    monitor_config: MonitorConfig = field(default_factory=MonitorConfig)
    page_count_model: Optional[AnalyticalPageCountModel] = None
    #: Lint every optimized plan (repro.analysis.planlint, rules P001-P006)
    #: before it reaches the monitor planner.  Findings accumulate in
    #: :attr:`lint_findings`; with :attr:`strict_lint` an error-severity
    #: finding raises :class:`~repro.common.errors.PlanLintError` instead.
    lint_plans: bool = True
    strict_lint: bool = False
    lint_findings: list[Finding] = field(default_factory=list)
    #: Acquired around feedback-store writes when the session shares its
    #: :class:`~repro.core.feedback.FeedbackStore` with concurrent sessions
    #: (an :class:`~repro.engine.Engine` sets this; standalone sessions
    #: leave it None and write directly).  Any context-manager lock works.
    feedback_lock: Optional[ContextManager[Any]] = None
    #: Shared plan cache (an Engine wires its own in).  ``None`` means
    #: every optimize is fresh — the plan-cache stage reports "bypassed".
    plan_cache: Optional[PlanCache] = None
    #: Mid-query re-optimization policy.  ``None`` (the default) keeps
    #: every run on the exact pre-reopt code path — no watchdog, no
    #: checkpoint observers, bit-identical results and charges.  With a
    #: policy set, :meth:`run` calls that carry page-count requests are
    #: routed through the reopt episode runner
    #: (:func:`repro.reopt.run_with_reopt`).
    reopt_policy: Optional["ReoptPolicy"] = None
    #: Stage-by-stage record of the most recent optimize()/run() call.
    last_trace: Optional[LifecycleTrace] = None

    # ------------------------------------------------------------------
    def lifecycle(self) -> QueryLifecycle:
        """The staged lifecycle bound to this session (cheap to build)."""
        return QueryLifecycle(self)

    def optimizer(
        self,
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
        extra_injections: Optional[InjectionSet] = None,
    ) -> Optimizer:
        """A raw optimizer over this session's injections (no caching).

        Prefer :meth:`optimize`/:meth:`run`, which go through the staged
        lifecycle; this accessor exists for explain-style tooling.
        """
        injections = (
            extra_injections if extra_injections is not None else self.injections
        ).copy()
        if use_feedback:
            injections = self.feedback.to_injections(injections)
        return build_optimizer(
            self.database,
            injections=injections,
            page_count_model=self.page_count_model,
            hint=hint,
        )

    def optimize(
        self,
        query: Query,
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
    ) -> PlanNode:
        """Resolve a plan through the lifecycle's planning stages
        (canonicalize → plan-cache → optimize → lint)."""
        plan, trace = self.lifecycle().plan(
            query, use_feedback=use_feedback, hint=hint
        )
        self.last_trace = trace
        return plan

    def lint(self, plan: PlanNode, injections: InjectionSet) -> None:
        """Lint a plan (lifecycle lint stage); raises in strict mode."""
        findings = lint_plan(plan, self.database, injections=injections)
        if not findings:
            return
        self.lint_findings.extend(findings)
        if self.strict_lint and errors(findings):
            raise PlanLintError(
                "optimized plan violates plan invariants:\n"
                + render_findings(findings)
            )

    # Backwards-compatible private alias.
    _lint = lint

    # ------------------------------------------------------------------
    def run_plan(
        self,
        query: Query,
        plan: PlanNode,
        requests: Sequence[PageCountRequest] = (),
        cold_cache: bool = True,
        io: Optional[IOContext] = None,
        exec_mode: str = "row",
        cancellation: Optional[CancellationToken] = None,
    ) -> ExecutedQuery:
        """Execute a specific plan, with monitors for ``requests``.

        ``io`` is the execution's accounting context (default: a fresh
        shared-pool context); pass an *isolated* context to run
        interference-free next to concurrent executions.  ``exec_mode``
        picks row-at-a-time (default) or page-at-a-time batch drive.
        ``cancellation`` opts into cooperative cancellation (the executor
        raises :class:`~repro.common.errors.QueryCancelled` at the next
        page/batch boundary after the token is cancelled).
        """
        executed = self.lifecycle().run_plan(
            query,
            plan,
            requests=requests,
            cold_cache=cold_cache,
            io=io,
            exec_mode=exec_mode,
            cancellation=cancellation,
        )
        self.last_trace = executed.trace
        return executed

    def run(
        self,
        query: Query,
        requests: Sequence[PageCountRequest] = (),
        use_feedback: bool = False,
        hint: Optional[PlanHint] = None,
        cold_cache: bool = True,
        io: Optional[IOContext] = None,
        remember: bool = False,
        exec_mode: str = "row",
        cancellation: Optional[CancellationToken] = None,
    ) -> ExecutedQuery:
        """The full lifecycle: plan (cached or fresh), execute, and — with
        ``remember=True`` — harvest feedback in the same call.

        When a :attr:`reopt_policy` is set and the call carries
        page-count requests, the run goes through the mid-query
        re-optimization episode instead: the regret watchdog observes
        the monitored scans and may cancel, replan, and switch plans
        mid-flight (the episode's outcome lands in
        ``runstats.lifecycle["reopt"]``).  Requestless runs have no
        streaming counters to project from, so they stay on the plain
        path even with a policy set.
        """
        if self.reopt_policy is not None and requests:
            from repro.reopt.episode import run_with_reopt

            episode = run_with_reopt(
                self,
                query,
                requests=requests,
                policy=self.reopt_policy,
                use_feedback=use_feedback,
                hint=hint,
                cold_cache=cold_cache,
                io=io,
                exec_mode=exec_mode,
                cancellation=cancellation,
                remember=remember,
            )
            return episode.executed
        executed = self.lifecycle().run(
            query,
            requests=requests,
            use_feedback=use_feedback,
            hint=hint,
            cold_cache=cold_cache,
            io=io,
            remember=remember,
            exec_mode=exec_mode,
            cancellation=cancellation,
        )
        self.last_trace = executed.trace
        return executed

    # ------------------------------------------------------------------
    def remember(self, executed: ExecutedQuery) -> int:
        """Harvest an executed query's page-count feedback; returns the
        number of observations stored.  Serialized under
        :attr:`feedback_lock` when the store is shared."""
        if self.feedback_lock is None:
            return self.feedback.record_run(executed.result.runstats)
        with self.feedback_lock:
            return self.feedback.record_run(executed.result.runstats)
