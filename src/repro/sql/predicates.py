"""Predicate expressions.

The paper (Section III) assumes for exposition that predicates are
conjunctions of *atomic* predicates, and everything about short-circuiting,
prefixes and ``Satisfies(T, PID, p)`` is phrased in those terms.  We model:

* :class:`Comparison` — ``col <op> literal`` for ``< <= = >= > !=``,
* :class:`Between` — ``lo <= col <= hi`` (closed range),
* :class:`InList` — ``col IN (v1, ..., vk)``,
* :class:`Conjunction` — ordered AND of atomic predicates (order matters:
  it is the order the predicate evaluator uses for short-circuiting),
* :class:`JoinEquality` — ``left_col = right_col`` across two tables, used
  by join operators and as the predicate of a join-method DPC request.

Every predicate has a canonical :meth:`key` string used by the feedback
store and the diagnostics report, and knows which columns it touches.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.common.errors import ExpressionError

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    ">=": operator.ge,
    ">": operator.gt,
    "!=": operator.ne,
}

_vector_module = None


def _vec():
    """Lazily bind :mod:`repro.exec.vector`.

    A top-level import would pull in ``repro.exec.__init__`` (which
    imports operators, which import this module) while predicates is
    still half-initialized; deferring to first use breaks the cycle.
    """
    global _vector_module
    if _vector_module is None:
        from repro.exec import vector

        _vector_module = vector
    return _vector_module


class AtomicPredicate(ABC):
    """A single-column predicate evaluable on one row."""

    column: str

    @abstractmethod
    def matches(self, value: Any) -> bool:
        """Whether a column value satisfies the predicate.

        SQL three-valued logic is collapsed: NULL never matches.
        """

    def matches_batch(self, values: Sequence[Any]) -> list[bool]:
        """Vectorized :meth:`matches` over a column of values.

        Semantically ``[self.matches(v) for v in values]`` — subclasses
        override with a specialized comprehension that hoists the per-term
        constants out of the loop, which is what the compiled batch
        kernels (:meth:`~repro.sql.evaluator.BoundConjunction.compile`)
        run per page.  Overrides must preserve the NULL-never-matches
        collapse exactly.
        """
        return [self.matches(v) for v in values]

    def matches_vector(self, column):
        """Whole-column :meth:`matches` producing a selection mask.

        ``column`` is a column vector (see :mod:`repro.exec.vector`);
        the result is a mask aligned with it.  Subclasses map onto a
        single backend kernel; this default routes through
        :meth:`matches_batch` so any atomic predicate is columnar-safe.
        Like the batch path, overrides must preserve the
        NULL-never-matches collapse exactly.
        """
        vec = _vec()
        return self.matches_batch(vec.column_values(column))

    @abstractmethod
    def key(self) -> str:
        """Canonical string form, stable across runs (feedback-store key)."""

    def columns(self) -> tuple[str, ...]:
        return (self.column,)

    def __repr__(self) -> str:
        return self.key()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomicPredicate) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


@dataclass(frozen=True, eq=False)
class Comparison(AtomicPredicate):
    """``column <op> value`` where ``<op>`` is one of ``< <= = >= > !=``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExpressionError(
                f"unknown comparison operator {self.op!r}; expected one of {sorted(_OPS)}"
            )

    def matches(self, value: Any) -> bool:
        if value is None:
            return False
        return _OPS[self.op](value, self.value)

    def matches_batch(self, values: Sequence[Any]) -> list[bool]:
        op, bound = _OPS[self.op], self.value
        return [v is not None and op(v, bound) for v in values]

    def matches_vector(self, column):
        return _vec().compare_mask(column, self.op, self.value)

    def key(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True, eq=False)
class Between(AtomicPredicate):
    """Closed range ``low <= column <= high``."""

    column: str
    low: Any
    high: Any

    def __post_init__(self) -> None:
        try:
            if self.low > self.high:
                raise ExpressionError(
                    f"BETWEEN bounds reversed for {self.column}: {self.low!r} > {self.high!r}"
                )
        except TypeError as exc:
            raise ExpressionError(
                f"BETWEEN bounds for {self.column} are not comparable: "
                f"{self.low!r}, {self.high!r}"
            ) from exc

    def matches(self, value: Any) -> bool:
        if value is None:
            return False
        return self.low <= value <= self.high

    def matches_batch(self, values: Sequence[Any]) -> list[bool]:
        low, high = self.low, self.high
        return [v is not None and low <= v <= high for v in values]

    def matches_vector(self, column):
        return _vec().between_mask(column, self.low, self.high)

    def key(self) -> str:
        return f"{self.column} BETWEEN {self.low!r} AND {self.high!r}"


@dataclass(frozen=True, eq=False)
class InList(AtomicPredicate):
    """``column IN (v1, ..., vk)``."""

    column: str
    values: tuple[Any, ...]
    _value_set: frozenset = field(init=False, repr=False, compare=False)

    def __init__(self, column: str, values: Iterable[Any]) -> None:
        values = tuple(values)
        if not values:
            raise ExpressionError(f"IN list for {column} must not be empty")
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "_value_set", frozenset(values))

    def matches(self, value: Any) -> bool:
        if value is None:
            return False
        return value in self._value_set

    def matches_batch(self, values: Sequence[Any]) -> list[bool]:
        value_set = self._value_set
        return [v is not None and v in value_set for v in values]

    def matches_vector(self, column):
        return _vec().isin_mask(column, self._value_set)

    def key(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"{self.column} IN ({rendered})"


class Conjunction:
    """Ordered AND of atomic predicates.

    The order of ``terms`` is the evaluation order used by the predicate
    evaluator; with short-circuiting on, a FALSE term stops evaluation of
    the remaining terms (Example 3 in the paper).  A conjunction of zero
    terms is TRUE (useful as the "no selection" predicate of a pure scan).
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Sequence[AtomicPredicate] = ()) -> None:
        self.terms: tuple[AtomicPredicate, ...] = tuple(terms)

    def columns(self) -> tuple[str, ...]:
        seen: list[str] = []
        for term in self.terms:
            for col in term.columns():
                if col not in seen:
                    seen.append(col)
        return tuple(seen)

    def key(self) -> str:
        if not self.terms:
            return "TRUE"
        return " AND ".join(term.key() for term in self.terms)

    def prefix(self, length: int) -> "Conjunction":
        """The conjunction of the first ``length`` terms."""
        if not 0 <= length <= len(self.terms):
            raise ExpressionError(
                f"prefix length {length} out of range for {len(self.terms)} terms"
            )
        return Conjunction(self.terms[:length])

    def is_prefix_of(self, other: "Conjunction") -> bool:
        """Whether this conjunction is a prefix of ``other``'s term order.

        Section III-B: page counts for a *prefix* of the evaluated predicate
        order never require turning off short-circuiting.
        """
        if len(self.terms) > len(other.terms):
            return False
        return all(a == b for a, b in zip(self.terms, other.terms))

    def subset_of(self, other: "Conjunction") -> bool:
        """Whether every term here appears somewhere in ``other``."""
        other_terms = set(other.terms)
        return all(term in other_terms for term in self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Conjunction) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.terms)

    def __repr__(self) -> str:
        return f"Conjunction({self.key()})"


def conjunction_of(*terms: AtomicPredicate) -> Conjunction:
    """Convenience constructor: ``conjunction_of(p1, p2, ...)``."""
    return Conjunction(terms)


@dataclass(frozen=True)
class JoinEquality:
    """Equality join predicate ``left_table.left_column = right_table.right_column``.

    For a join-method DPC request (Section IV) the predicate ``p`` in
    ``DPC(inner, p)`` is exactly this join predicate — selection predicates
    on the inner are excluded because an INL join applies them *after* the
    fetch.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def key(self) -> str:
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )

    def reversed(self) -> "JoinEquality":
        """The same predicate with sides swapped (R join S vs. S join R)."""
        return JoinEquality(
            self.right_table, self.right_column, self.left_table, self.left_column
        )

    def column_for(self, table: str) -> str:
        """The join column on ``table``'s side; raises if not a participant."""
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise ExpressionError(f"table {table!r} does not participate in {self.key()}")

    def __repr__(self) -> str:
        return f"JoinEquality({self.key()})"
