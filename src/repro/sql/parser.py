"""A small SQL parser for the query shapes the paper evaluates.

The engine is not a general SQL system — the paper's workloads are
``SELECT count(col) FROM T WHERE <conjunction>`` and two-table equality
joins — but typing those as strings beats assembling predicate objects by
hand.  Supported grammar (keywords case-insensitive)::

    query   := SELECT COUNT '(' ( '*' | colref ) ')'
               FROM ident (',' ident)?
               ( WHERE cond (AND cond)* )?
    cond    := colref op literal
             | colref BETWEEN literal AND literal
             | colref IN '(' literal (',' literal)* ')'
             | colref '=' colref                     -- join predicate
    colref  := ident ('.' ident)?
    op      := '<' | '<=' | '=' | '>=' | '>' | '!=' | '<>'
    literal := integer | float | 'string' | DATE 'YYYY-MM-DD'

Predicate order in the WHERE clause is preserved — it is the evaluation
(short-circuit) order, which §III-B's prefix rule cares about.

Entry points: :func:`parse_query` -> ``SingleTableQuery | JoinQuery``,
and :func:`parse_predicate` -> ``Conjunction`` for monitor requests.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import ExpressionError
from repro.sql.predicates import (
    AtomicPredicate,
    Between,
    Comparison,
    Conjunction,
    InList,
    JoinEquality,
)

_TOKEN_PATTERN = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')      # 'text' with '' escaping
      | (?P<number>\d+\.\d+|\d+)        # 123 or 1.5
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|<>|[<>=(),.*])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "count", "from", "where", "and", "between", "in", "date"}


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "ident" | "op" | "keyword"
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_PATTERN.match(sql, position)
        if match is None or match.end() == position:
            remainder = sql[position:].strip()
            if not remainder:
                break
            raise ExpressionError(
                f"cannot tokenize SQL at position {position}: {remainder[:20]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        text = match.group(kind)
        if kind == "ident" and text.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", text.lower(), match.start(kind)))
        else:
            tokens.append(_Token(kind, text, match.start(kind)))
    return tokens


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    table: Optional[str]
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class ParsedCondition:
    """One WHERE condition before table resolution."""

    predicate: Optional[AtomicPredicate]  # None for join conditions
    column: ColumnRef
    join_right: Optional[ColumnRef] = None  # set for colref = colref


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.index = 0

    # -- token primitives ----------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of SQL: {self.sql!r}")
        self.index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ExpressionError(
                f"expected {wanted!r} at position {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        ):
            self.index += 1
            return token
        return None

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # -- grammar ----------------------------------------------------------
    def column_ref(self) -> ColumnRef:
        first = self._expect("ident").text
        if self._accept("op", "."):
            second = self._expect("ident").text
            return ColumnRef(table=first, column=second)
        return ColumnRef(table=None, column=first)

    def literal(self) -> Any:
        token = self._peek()
        if token is None:
            raise ExpressionError("expected a literal, found end of SQL")
        if token.kind == "keyword" and token.text == "date":
            self._next()
            raw = self._expect("string").text
            return _parse_date(raw[1:-1])
        if token.kind == "string":
            self._next()
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            self._next()
            return float(token.text) if "." in token.text else int(token.text)
        raise ExpressionError(
            f"expected a literal at position {token.position}, got {token.text!r}"
        )

    def condition(self) -> ParsedCondition:
        column = self.column_ref()
        token = self._peek()
        if token is None:
            raise ExpressionError(f"dangling column reference {column}")
        if token.kind == "keyword" and token.text == "between":
            self._next()
            low = self.literal()
            self._expect("keyword", "and")
            high = self.literal()
            return ParsedCondition(
                predicate=Between(column.column, low, high), column=column
            )
        if token.kind == "keyword" and token.text == "in":
            self._next()
            self._expect("op", "(")
            values = [self.literal()]
            while self._accept("op", ","):
                values.append(self.literal())
            self._expect("op", ")")
            return ParsedCondition(
                predicate=InList(column.column, values), column=column
            )
        if token.kind == "op" and token.text in ("<", "<=", "=", ">=", ">", "!=", "<>"):
            self._next()
            operator = "!=" if token.text == "<>" else token.text
            # ``colref = colref`` is a join condition.
            right = self._peek()
            if (
                operator == "="
                and right is not None
                and right.kind == "ident"
            ):
                right_ref = self.column_ref()
                return ParsedCondition(
                    predicate=None, column=column, join_right=right_ref
                )
            value = self.literal()
            return ParsedCondition(
                predicate=Comparison(column.column, operator, value), column=column
            )
        raise ExpressionError(
            f"expected an operator after {column} at position {token.position}, "
            f"got {token.text!r}"
        )

    def conditions(self) -> list[ParsedCondition]:
        parsed = [self.condition()]
        while self._accept("keyword", "and"):
            parsed.append(self.condition())
        return parsed

    def query(self):
        self._expect("keyword", "select")
        self._expect("keyword", "count")
        self._expect("op", "(")
        if self._accept("op", "*"):
            count_ref: Optional[ColumnRef] = None
        else:
            count_ref = self.column_ref()
        self._expect("op", ")")
        self._expect("keyword", "from")
        tables = [self._expect("ident").text]
        while self._accept("op", ","):
            tables.append(self._expect("ident").text)
        if len(tables) > 2:
            raise ExpressionError(
                f"at most two tables are supported, got {len(tables)}"
            )
        conditions: list[ParsedCondition] = []
        if self._accept("keyword", "where"):
            conditions = self.conditions()
        if not self.at_end():
            token = self._peek()
            raise ExpressionError(
                f"unexpected trailing input at position {token.position}: "
                f"{token.text!r}"
            )
        if len(tables) == 1:
            return _build_single(tables[0], count_ref, conditions)
        return _build_join(tables, count_ref, conditions)


def _parse_date(text: str) -> datetime.date:
    try:
        return datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise ExpressionError(f"invalid DATE literal {text!r}") from exc


def _resolve_table(ref: ColumnRef, tables: list[str], context: str) -> str:
    if ref.table is not None:
        if ref.table not in tables:
            raise ExpressionError(
                f"{context}: table {ref.table!r} is not in the FROM clause "
                f"{tables}"
            )
        return ref.table
    if len(tables) == 1:
        return tables[0]
    raise ExpressionError(
        f"{context}: column {ref.column!r} must be qualified when two "
        f"tables are joined"
    )


def _build_single(
    table: str, count_ref: Optional[ColumnRef], conditions: list[ParsedCondition]
):
    # Imported lazily: the optimizer package (which owns the query types)
    # itself depends on repro.sql, and a module-level import would cycle.
    from repro.optimizer.optimizer import SingleTableQuery
    terms = []
    for condition in conditions:
        if condition.join_right is not None:
            raise ExpressionError(
                "join conditions are not allowed in a single-table query"
            )
        _resolve_table(condition.column, [table], condition.column.column)
        terms.append(condition.predicate)
    count_column = None
    if count_ref is not None:
        _resolve_table(count_ref, [table], "count column")
        count_column = count_ref.column
    return SingleTableQuery(
        table=table, predicate=Conjunction(tuple(terms)), count_column=count_column
    )


def _build_join(
    tables: list[str],
    count_ref: Optional[ColumnRef],
    conditions: list[ParsedCondition],
):
    from repro.optimizer.optimizer import JoinQuery  # lazy: avoids a cycle
    join_predicate: Optional[JoinEquality] = None
    per_table: dict[str, list[AtomicPredicate]] = {name: [] for name in tables}
    for condition in conditions:
        if condition.join_right is not None:
            left_table = _resolve_table(condition.column, tables, "join")
            right_table = _resolve_table(condition.join_right, tables, "join")
            if left_table == right_table:
                raise ExpressionError(
                    "join condition must relate the two FROM tables"
                )
            if join_predicate is not None:
                raise ExpressionError("only one join condition is supported")
            join_predicate = JoinEquality(
                left_table,
                condition.column.column,
                right_table,
                condition.join_right.column,
            )
        else:
            table = _resolve_table(condition.column, tables, "selection")
            per_table[table].append(condition.predicate)
    if join_predicate is None:
        raise ExpressionError(
            "a two-table query needs a join condition (t1.a = t2.b)"
        )
    count_column = None
    if count_ref is not None:
        count_table = _resolve_table(count_ref, tables, "count column")
        count_column = f"{count_table}.{count_ref.column}"
    predicates = {
        name: Conjunction(tuple(terms))
        for name, terms in per_table.items()
        if terms
    }
    return JoinQuery(
        join_predicate=join_predicate,
        predicates=predicates,
        count_column=count_column,
    )


def parse_query(sql: str):
    """Parse a COUNT query into the optimizer's query objects
    (:class:`~repro.optimizer.SingleTableQuery` or
    :class:`~repro.optimizer.JoinQuery`)."""
    return _Parser(sql).query()


def parse_predicate(text: str) -> Conjunction:
    """Parse a bare conjunction (``"c2 < 500 AND state = 'CA'"``).

    Useful for building :class:`~repro.core.AccessPathRequest` expressions
    without constructing predicate objects by hand.  Column references
    must be unqualified; join conditions are rejected.
    """
    parser = _Parser(text)
    conditions = parser.conditions()
    if not parser.at_end():
        token = parser._peek()
        raise ExpressionError(
            f"unexpected trailing input at position {token.position}: "
            f"{token.text!r}"
        )
    terms = []
    for condition in conditions:
        if condition.join_right is not None:
            raise ExpressionError("join conditions are not valid predicates here")
        if condition.column.table is not None:
            raise ExpressionError(
                f"qualified column {condition.column} is not valid in a bare "
                "predicate"
            )
        terms.append(condition.predicate)
    return Conjunction(tuple(terms))
