"""Static analysis of DPC requests against the executing plan's predicate.

Section III-B establishes the rule this module encodes:

    "For a sequence of conjunctive predicates, there is no need to turn off
    predicate short-circuiting to obtain the distinct page count
    corresponding to any *prefix* of the predicates.  However, if the page
    counts are required for a predicate that is not a prefix of the
    predicates evaluated, it is necessary to turn off the predicate
    short-circuiting optimization."

Given the conjunction a scan evaluates (in its evaluation order) and a set
of requested expressions, :func:`plan_scan_requests` classifies each request
and reports whether short-circuiting must be disabled on sampled pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import MonitorError
from repro.sql.predicates import Conjunction


@dataclass(frozen=True)
class ScanRequestPlan:
    """How one requested expression will be monitored during a scan.

    ``term_indexes`` are the positions (in the scan conjunction's term
    order) whose per-row truth values decide the requested expression.
    ``is_prefix`` means the request is a prefix of the evaluation order, so
    short-circuited evaluation already yields its truth on every row.
    """

    expression: Conjunction
    term_indexes: tuple[int, ...]
    is_prefix: bool

    def satisfied_by(self, truth: tuple) -> bool:
        """Whether a row's per-term truth vector satisfies this expression.

        For non-prefix requests the caller must have evaluated all terms
        (short-circuiting off); a skipped needed term raises
        :class:`MonitorError` because silently guessing would bias counts.

        One exception needs care: with short-circuiting *on*, a needed term
        may be ``None`` because an **earlier needed term** was FALSE — in
        that case the expression is decidedly FALSE and we return that
        without needing the skipped term.
        """
        for index in self.term_indexes:
            value = truth[index]
            if value is False:
                return False
            if value is None:
                raise MonitorError(
                    f"term {index} of {self.expression.key()!r} was not evaluated; "
                    "short-circuiting must be disabled for this request"
                )
        return True

    def decidable_from(self, truth: tuple) -> bool:
        """Whether the truth vector suffices to decide the expression."""
        for index in self.term_indexes:
            value = truth[index]
            if value is False:
                return True  # decided FALSE regardless of later terms
            if value is None:
                return False
        return True


def analyze_scan_request(
    scan_conjunction: Conjunction, requested: Conjunction
) -> ScanRequestPlan:
    """Map a requested expression onto the scan's evaluated term order.

    Every term of ``requested`` must appear in ``scan_conjunction`` — a scan
    can only witness ``Satisfies`` for predicates it evaluates.  (The scan
    operator arranges for *all* requested terms to be part of its pushed-
    down conjunction; terms needed only for monitoring are appended after
    the query's own terms so normal short-circuiting semantics and result
    correctness are unchanged.)
    """
    positions = []
    for term in requested.terms:
        try:
            positions.append(scan_conjunction.terms.index(term))
        except ValueError:
            raise MonitorError(
                f"requested term {term.key()!r} is not part of the scan predicate "
                f"{scan_conjunction.key()!r}"
            ) from None
    return ScanRequestPlan(
        expression=requested,
        term_indexes=tuple(positions),
        is_prefix=requested.is_prefix_of(scan_conjunction),
    )


def plan_scan_requests(
    scan_conjunction: Conjunction, requests: list[Conjunction]
) -> tuple[list[ScanRequestPlan], bool]:
    """Analyze all requests; return the plans and whether any needs
    short-circuiting turned off on sampled pages."""
    plans = [analyze_scan_request(scan_conjunction, r) for r in requests]
    needs_full_eval = any(not p.is_prefix for p in plans)
    return plans, needs_full_eval


def augment_scan_conjunction(
    query_conjunction: Conjunction, requests: list[Conjunction]
) -> Conjunction:
    """Extend the scan's pushed-down conjunction with any requested terms it
    does not already evaluate.

    Extra terms are appended *after* the query's own terms, so: (a) the scan
    still returns exactly the rows the query wants (appended terms can only
    be reached when the row already passed... note appended terms DO filter
    — so the caller must only use this when the scan's output predicate is
    taken from ``query_conjunction``'s terms alone).  In this engine the
    scan separates the *output* decision (query terms only) from the
    *monitoring* conjunction returned here; see ``exec.scans``.
    """
    terms = list(query_conjunction.terms)
    existing = set(terms)
    for request in requests:
        for term in request.terms:
            if term not in existing:
                terms.append(term)
                existing.add(term)
    return Conjunction(terms)
