"""Predicate evaluation with short-circuit control and accounting.

This module is the seam the paper's scan-plan monitors depend on.  A real
storage engine evaluates the pushed-down conjunction term by term, in plan
order, and *short-circuits*: once a term is FALSE the remaining terms are
skipped (Example 3).  The DPC monitors need to know, per row:

* which terms were actually evaluated (a term that was skipped gives no
  information about ``Satisfies`` for expressions containing it), and
* how many term evaluations were performed (the unit of CPU overhead that
  Figs. 7 and 9 measure).

:class:`BoundConjunction` binds a :class:`~repro.sql.predicates.Conjunction`
to a row layout once (name -> position), then evaluates rows cheaply.  The
result is a :class:`TermOutcome` carrying the per-term truth vector.

Batch mode adds a second seam: :meth:`BoundConjunction.compile` specializes
each term into a closure (a *kernel*) evaluated over a whole page of rows
at once, selection-vector style — term *i* runs only on the rows every
earlier term passed, so the per-term truth vectors and the total number of
term evaluations are exactly what the row-at-a-time loop would have
produced.  The column-oriented result is a :class:`BatchOutcome`.

Columnar mode adds the third: :meth:`CompiledConjunction.evaluate_columns`
runs each term's :meth:`~repro.sql.predicates.AtomicPredicate.matches_vector`
over a whole column vector, producing selection *bitmasks*
(:class:`VectorOutcome`).  Masks are computed full-width (that is what
makes them fast), but short-circuit semantics are preserved by masking:
term *i*'s witness mask is ANDed with the rows alive after terms
``0..i-1``, a term reached by no alive row is not evaluated at all, and
``evaluations`` charges each term only for the rows the row-at-a-time
loop would have evaluated it on — so monitor observations and Fig. 7/9
overhead accounting stay bit-identical across all three modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import ExpressionError
from repro.sql.predicates import AtomicPredicate, Conjunction

_vector_module = None


def _vec():
    """Lazily bind :mod:`repro.exec.vector` (avoids the sql <-> exec cycle)."""
    global _vector_module
    if _vector_module is None:
        from repro.exec import vector

        _vector_module = vector
    return _vector_module


@dataclass(slots=True)
class TermOutcome:
    """Result of evaluating a conjunction on one row.

    ``truth[i]`` is ``True``/``False`` if term *i* was evaluated, ``None``
    if it was skipped by short-circuiting.  ``passed`` is the conjunction's
    value; when short-circuited it is still exact (a FALSE term decides it).
    ``evaluations`` counts the term evaluations performed on this row.
    """

    passed: bool
    truth: tuple[Optional[bool], ...]
    evaluations: int

    def term_known(self, index: int) -> bool:
        """Whether term ``index`` was actually evaluated on this row."""
        return self.truth[index] is not None


class BatchOutcome:
    """Result of evaluating a conjunction over one batch of rows.

    Column-oriented mirror of :class:`TermOutcome`: ``truth[i]`` is the
    per-row truth column of term *i* (``None`` entries for rows the term
    was short-circuited on), or ``None`` when the term was evaluated on no
    row at all.  ``passed[r]`` is the evaluated prefix's value on row *r*
    and ``evaluations`` is the total number of term evaluations — both
    bit-identical to summing the per-row :class:`TermOutcome` results.
    """

    __slots__ = ("passed", "truth", "evaluations", "num_rows")

    def __init__(
        self,
        passed: list[bool],
        truth: list[Optional[list[Optional[bool]]]],
        evaluations: int,
        num_rows: int,
    ) -> None:
        self.passed = passed
        self.truth = truth
        self.evaluations = evaluations
        self.num_rows = num_rows

    def truth_row(self, row_index: int) -> tuple[Optional[bool], ...]:
        """Row ``row_index``'s truth vector, in :class:`TermOutcome` form."""
        return tuple(
            column[row_index] if column is not None else None
            for column in self.truth
        )

    def prefix_passed(self, num_terms: int) -> list[bool]:
        """Per-row truth of the first ``num_terms`` terms.

        Used by scans in full-evaluation mode, where the monitor
        conjunction was evaluated in full but row output is decided by the
        query's own prefix (`all(outcome.truth[:num_query_terms])` in the
        row loop).
        """
        if num_terms == 0:
            return [True] * self.num_rows
        columns = self.truth[:num_terms]
        if any(column is None for column in columns):
            return [False] * self.num_rows
        if num_terms == 1:
            return [value is True for value in columns[0]]
        return [
            all(value is True for value in values) for values in zip(*columns)
        ]


class VectorOutcome:
    """Result of evaluating a conjunction over one page of column vectors.

    Mask-oriented mirror of :class:`BatchOutcome`: ``truth[i]`` is term
    *i*'s **witness mask** — true exactly on the rows where the term was
    evaluated *and* held — or ``None`` when the term was evaluated on no
    row at all (whole-batch short-circuit).  A mask cannot distinguish
    "evaluated false" from "skipped" per row, but no consumer needs to:
    monitors only ask which rows *witness* a term (``is True`` in the
    batch path), and row output only needs ``passed``.  ``passed`` is the
    evaluated prefix's truth per row and ``evaluations`` counts term
    evaluations exactly as the row-at-a-time loop would have.
    """

    __slots__ = ("passed", "truth", "evaluations", "num_rows")

    def __init__(
        self,
        passed,
        truth: list,
        evaluations: int,
        num_rows: int,
    ) -> None:
        self.passed = passed
        self.truth = truth
        self.evaluations = evaluations
        self.num_rows = num_rows

    def prefix_passed(self, num_terms: int):
        """Witness mask of the first ``num_terms`` terms (full-eval mode)."""
        vec = _vec()
        if num_terms == 0:
            return vec.ones_mask(self.num_rows)
        masks = self.truth[:num_terms]
        if any(mask is None for mask in masks):
            return vec.zeros_mask(self.num_rows)
        result = masks[0]
        for mask in masks[1:]:
            result = vec.mask_and(result, mask)
        return result


class CompiledConjunction:
    """Per-term kernels for page-at-a-time conjunction evaluation.

    ``compile()`` specializes every term into a closure that evaluates it
    over a list of rows in one comprehension (constants hoisted by the
    term's :meth:`~repro.sql.predicates.AtomicPredicate.matches_batch`).
    Evaluation is selection-vector style: with short-circuiting on, term
    *i*'s kernel runs only on the rows that every earlier term passed, so
    per-term truth, short-circuit skips (``None``) and the evaluation
    count all match the interpreted per-row path exactly.
    """

    __slots__ = ("conjunction", "_positions", "_kernels", "_vector_kernels")

    def __init__(
        self,
        conjunction: Conjunction,
        positions: tuple[int, ...],
        terms: tuple[AtomicPredicate, ...],
    ) -> None:
        self.conjunction = conjunction
        self._positions = positions
        self._kernels = tuple(
            self._specialize(position, term)
            for position, term in zip(positions, terms)
        )
        self._vector_kernels = tuple(
            self._specialize_vector(position, term)
            for position, term in zip(positions, terms)
        )

    @staticmethod
    def _specialize(
        position: int, term: AtomicPredicate
    ) -> Callable[[list[tuple]], list[bool]]:
        matches_batch = term.matches_batch

        def kernel(rows: list[tuple]) -> list[bool]:
            return matches_batch([row[position] for row in rows])

        return kernel

    @staticmethod
    def _specialize_vector(position: int, term: AtomicPredicate) -> Callable:
        matches_vector = term.matches_vector

        def kernel(columns: Sequence):
            return matches_vector(columns[position])

        return kernel

    def __len__(self) -> int:
        return len(self._kernels)

    def evaluate_batch(
        self,
        rows: Sequence[tuple],
        num_terms: Optional[int] = None,
        short_circuit: bool = True,
    ) -> BatchOutcome:
        """Evaluate the first ``num_terms`` terms over all of ``rows``.

        ``num_terms=None`` evaluates the whole conjunction.  Equivalent to
        calling :meth:`BoundConjunction.evaluate_prefix` on every row and
        transposing the outcomes; see :class:`BatchOutcome`.
        """
        total = len(self._kernels)
        if num_terms is None:
            num_terms = total
        if not 0 <= num_terms <= total:
            raise ExpressionError(
                f"prefix of {num_terms} terms out of range for "
                f"{total}-term conjunction"
            )
        rows = rows if isinstance(rows, list) else list(rows)
        num_rows = len(rows)
        truth: list[Optional[list[Optional[bool]]]] = [None] * total
        passed = [True] * num_rows
        evaluations = 0

        if not short_circuit:
            for i in range(num_terms):
                column = self._kernels[i](rows)
                truth[i] = column  # type: ignore[assignment]
                evaluations += num_rows
                for r, value in enumerate(column):
                    if not value:
                        passed[r] = False
            return BatchOutcome(passed, truth, evaluations, num_rows)

        # Selection-vector path: ``alive`` is the list of row indexes every
        # term so far passed; ``None`` means "all rows" (fast common case).
        alive: Optional[list[int]] = None
        for i in range(num_terms):
            if alive is None:
                column = self._kernels[i](rows)
                truth[i] = column  # type: ignore[assignment]
                evaluations += num_rows
                if not all(column):
                    alive = []
                    survived = alive.append
                    for r, value in enumerate(column):
                        if value:
                            survived(r)
                        else:
                            passed[r] = False
            else:
                if not alive:
                    break  # every row short-circuited: later terms unevaluated
                values = self._kernels[i]([rows[r] for r in alive])
                evaluations += len(alive)
                column_sparse: list[Optional[bool]] = [None] * num_rows
                next_alive: list[int] = []
                survived = next_alive.append
                for r, value in zip(alive, values):
                    column_sparse[r] = value
                    if value:
                        survived(r)
                    else:
                        passed[r] = False
                truth[i] = column_sparse
                alive = next_alive
        return BatchOutcome(passed, truth, evaluations, num_rows)

    def evaluate_columns(
        self,
        columns: Sequence,
        num_rows: int,
        num_terms: Optional[int] = None,
        short_circuit: bool = True,
    ) -> VectorOutcome:
        """Evaluate the first ``num_terms`` terms over column vectors.

        The columnar mirror of :meth:`evaluate_batch`: each term becomes
        one whole-vector compare producing a bitmask.  Witness masks,
        whole-batch short-circuit skips (``truth[i] is None``) and the
        evaluation count match the row-at-a-time loop exactly; see
        :class:`VectorOutcome` for why per-row skip positions need not be
        represented.
        """
        vec = _vec()
        total = len(self._kernels)
        if num_terms is None:
            num_terms = total
        if not 0 <= num_terms <= total:
            raise ExpressionError(
                f"prefix of {num_terms} terms out of range for "
                f"{total}-term conjunction"
            )
        truth: list = [None] * total
        evaluations = 0

        if not short_circuit:
            passed = None
            for i in range(num_terms):
                mask = self._vector_kernels[i](columns)
                truth[i] = mask
                evaluations += num_rows
                passed = mask if passed is None else vec.mask_and(passed, mask)
            if passed is None:
                passed = vec.ones_mask(num_rows)
            return VectorOutcome(passed, truth, evaluations, num_rows)

        # Masked short-circuit: ``alive`` is the mask of rows every term so
        # far passed; ``None`` means "all rows" (fast common case).  A term
        # is charged only for the rows alive when it ran, and a term with
        # no alive rows left is not evaluated at all — exactly mirroring
        # the selection-vector path above.
        alive = None
        alive_count = num_rows
        for i in range(num_terms):
            if alive is not None and alive_count == 0:
                break  # every row short-circuited: later terms unevaluated
            mask = self._vector_kernels[i](columns)
            if alive is None:
                evaluations += num_rows
                truth[i] = mask
                if not vec.mask_all(mask):
                    alive = mask
                    alive_count = vec.mask_count(mask)
            else:
                evaluations += alive_count
                witness = vec.mask_and(alive, mask)
                truth[i] = witness
                alive = witness
                alive_count = vec.mask_count(witness)
        passed = alive if alive is not None else vec.ones_mask(num_rows)
        return VectorOutcome(passed, truth, evaluations, num_rows)


class BoundConjunction:
    """A conjunction bound to a specific row layout for fast evaluation.

    The layout is a sequence of column names; rows are tuples in that order.
    Binding resolves each term's column to a position once, so per-row
    evaluation does no dict lookups.
    """

    __slots__ = ("conjunction", "_positions", "_matchers", "_compiled")

    def __init__(self, conjunction: Conjunction, columns: Sequence[str]) -> None:
        self.conjunction = conjunction
        index = {name: pos for pos, name in enumerate(columns)}
        positions = []
        matchers = []
        for term in conjunction.terms:
            if term.column not in index:
                raise ExpressionError(
                    f"predicate column {term.column!r} not in row layout {list(columns)}"
                )
            positions.append(index[term.column])
            matchers.append(term.matches)
        self._positions = tuple(positions)
        self._matchers = tuple(matchers)
        self._compiled: Optional[CompiledConjunction] = None

    def __len__(self) -> int:
        return len(self._positions)

    def compile(self) -> CompiledConjunction:
        """Specialize every term into a batch kernel (cached).

        The compiled form evaluates whole pages at a time; see
        :class:`CompiledConjunction` for the equivalence guarantees.
        """
        compiled = self._compiled
        if compiled is None:
            compiled = CompiledConjunction(
                self.conjunction, self._positions, self.conjunction.terms
            )
            self._compiled = compiled
        return compiled

    def evaluate(self, row: Sequence, short_circuit: bool = True) -> TermOutcome:
        """Evaluate all terms on ``row``.

        With ``short_circuit=True`` (the engine's normal mode) evaluation
        stops at the first FALSE term and later terms report ``None``.
        With ``short_circuit=False`` every term is evaluated — the mode
        DPSample forces on sampled pages (Fig. 4, step 4).
        """
        truth: list[Optional[bool]] = [None] * len(self._positions)
        passed = True
        evaluations = 0
        for i, (pos, matches) in enumerate(zip(self._positions, self._matchers)):
            result = matches(row[pos])
            evaluations += 1
            truth[i] = result
            if not result:
                passed = False
                if short_circuit:
                    break
        return TermOutcome(passed=passed, truth=tuple(truth), evaluations=evaluations)

    def evaluate_prefix(
        self, row: Sequence, num_terms: int, short_circuit: bool = True
    ) -> TermOutcome:
        """Evaluate only the first ``num_terms`` terms.

        The truth vector is still sized to the full conjunction (later
        entries are ``None``), so monitors indexing by term position work
        regardless of how much of the conjunction a given page evaluated.
        ``passed`` refers to the *prefix* conjunction only — this is what a
        scan uses to decide row output when extra monitoring-only terms
        have been appended after the query's own terms.
        """
        if not 0 <= num_terms <= len(self._positions):
            raise ExpressionError(
                f"prefix of {num_terms} terms out of range for "
                f"{len(self._positions)}-term conjunction"
            )
        truth: list[Optional[bool]] = [None] * len(self._positions)
        passed = True
        evaluations = 0
        for i in range(num_terms):
            result = self._matchers[i](row[self._positions[i]])
            evaluations += 1
            truth[i] = result
            if not result:
                passed = False
                if short_circuit:
                    break
        return TermOutcome(passed=passed, truth=tuple(truth), evaluations=evaluations)

    def passes(self, row: Sequence) -> bool:
        """Fast boolean-only evaluation with short-circuiting.

        Used on hot paths that do not need per-term accounting (e.g. the
        exact-DPC oracle and index-side residual filters).
        """
        for pos, matches in zip(self._positions, self._matchers):
            if not matches(row[pos]):
                return False
        return True
