"""Predicate evaluation with short-circuit control and accounting.

This module is the seam the paper's scan-plan monitors depend on.  A real
storage engine evaluates the pushed-down conjunction term by term, in plan
order, and *short-circuits*: once a term is FALSE the remaining terms are
skipped (Example 3).  The DPC monitors need to know, per row:

* which terms were actually evaluated (a term that was skipped gives no
  information about ``Satisfies`` for expressions containing it), and
* how many term evaluations were performed (the unit of CPU overhead that
  Figs. 7 and 9 measure).

:class:`BoundConjunction` binds a :class:`~repro.sql.predicates.Conjunction`
to a row layout once (name -> position), then evaluates rows cheaply.  The
result is a :class:`TermOutcome` carrying the per-term truth vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import ExpressionError
from repro.sql.predicates import Conjunction


@dataclass(slots=True)
class TermOutcome:
    """Result of evaluating a conjunction on one row.

    ``truth[i]`` is ``True``/``False`` if term *i* was evaluated, ``None``
    if it was skipped by short-circuiting.  ``passed`` is the conjunction's
    value; when short-circuited it is still exact (a FALSE term decides it).
    ``evaluations`` counts the term evaluations performed on this row.
    """

    passed: bool
    truth: tuple[Optional[bool], ...]
    evaluations: int

    def term_known(self, index: int) -> bool:
        """Whether term ``index`` was actually evaluated on this row."""
        return self.truth[index] is not None


class BoundConjunction:
    """A conjunction bound to a specific row layout for fast evaluation.

    The layout is a sequence of column names; rows are tuples in that order.
    Binding resolves each term's column to a position once, so per-row
    evaluation does no dict lookups.
    """

    __slots__ = ("conjunction", "_positions", "_matchers")

    def __init__(self, conjunction: Conjunction, columns: Sequence[str]) -> None:
        self.conjunction = conjunction
        index = {name: pos for pos, name in enumerate(columns)}
        positions = []
        matchers = []
        for term in conjunction.terms:
            if term.column not in index:
                raise ExpressionError(
                    f"predicate column {term.column!r} not in row layout {list(columns)}"
                )
            positions.append(index[term.column])
            matchers.append(term.matches)
        self._positions = tuple(positions)
        self._matchers = tuple(matchers)

    def __len__(self) -> int:
        return len(self._positions)

    def evaluate(self, row: Sequence, short_circuit: bool = True) -> TermOutcome:
        """Evaluate all terms on ``row``.

        With ``short_circuit=True`` (the engine's normal mode) evaluation
        stops at the first FALSE term and later terms report ``None``.
        With ``short_circuit=False`` every term is evaluated — the mode
        DPSample forces on sampled pages (Fig. 4, step 4).
        """
        truth: list[Optional[bool]] = [None] * len(self._positions)
        passed = True
        evaluations = 0
        for i, (pos, matches) in enumerate(zip(self._positions, self._matchers)):
            result = matches(row[pos])
            evaluations += 1
            truth[i] = result
            if not result:
                passed = False
                if short_circuit:
                    break
        return TermOutcome(passed=passed, truth=tuple(truth), evaluations=evaluations)

    def evaluate_prefix(
        self, row: Sequence, num_terms: int, short_circuit: bool = True
    ) -> TermOutcome:
        """Evaluate only the first ``num_terms`` terms.

        The truth vector is still sized to the full conjunction (later
        entries are ``None``), so monitors indexing by term position work
        regardless of how much of the conjunction a given page evaluated.
        ``passed`` refers to the *prefix* conjunction only — this is what a
        scan uses to decide row output when extra monitoring-only terms
        have been appended after the query's own terms.
        """
        if not 0 <= num_terms <= len(self._positions):
            raise ExpressionError(
                f"prefix of {num_terms} terms out of range for "
                f"{len(self._positions)}-term conjunction"
            )
        truth: list[Optional[bool]] = [None] * len(self._positions)
        passed = True
        evaluations = 0
        for i in range(num_terms):
            result = self._matchers[i](row[self._positions[i]])
            evaluations += 1
            truth[i] = result
            if not result:
                passed = False
                if short_circuit:
                    break
        return TermOutcome(passed=passed, truth=tuple(truth), evaluations=evaluations)

    def passes(self, row: Sequence) -> bool:
        """Fast boolean-only evaluation with short-circuiting.

        Used on hot paths that do not need per-term accounting (e.g. the
        exact-DPC oracle and index-side residual filters).
        """
        for pos, matches in zip(self._positions, self._matchers):
            if not matches(row[pos]):
                return False
        return True
