"""Predicate expressions, typed values and evaluation with short-circuiting."""

from repro.sql.analysis import (
    ScanRequestPlan,
    analyze_scan_request,
    augment_scan_conjunction,
    plan_scan_requests,
)
from repro.sql.evaluator import BoundConjunction, TermOutcome
from repro.sql.parser import parse_predicate, parse_query
from repro.sql.predicates import (
    AtomicPredicate,
    Between,
    Comparison,
    Conjunction,
    InList,
    JoinEquality,
    conjunction_of,
)
from repro.sql.types import SqlType, infer_sql_type

__all__ = [
    "AtomicPredicate",
    "Between",
    "BoundConjunction",
    "Comparison",
    "Conjunction",
    "InList",
    "JoinEquality",
    "ScanRequestPlan",
    "SqlType",
    "TermOutcome",
    "analyze_scan_request",
    "augment_scan_conjunction",
    "conjunction_of",
    "infer_sql_type",
    "parse_predicate",
    "parse_query",
    "plan_scan_requests",
]
