"""SQL value types for the simulated engine.

The engine stores plain Python values inside pages; this module defines the
small type system the catalog uses to describe columns and the predicates
use to validate comparisons.  Dates are modelled as :class:`datetime.date`
(the paper's motivating predicates are on ``Shipdate``-style columns).
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.common.errors import SchemaError


class SqlType(enum.Enum):
    """Column types supported by the simulated engine."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"

    @property
    def python_type(self) -> type:
        """The Python type used to store values of this SQL type."""
        return _PYTHON_TYPES[self]

    def validate(self, value: Any) -> Any:
        """Check ``value`` is storable under this type; return it unchanged.

        Integers are accepted for FLOAT columns (widening), mirroring SQL's
        implicit numeric promotion.  ``None`` is accepted everywhere (SQL
        NULL).  Raises :class:`SchemaError` otherwise.
        """
        if value is None:
            return None
        expected = _PYTHON_TYPES[self]
        if isinstance(value, bool):
            # bool is an int subclass but never a valid SQL value here.
            raise SchemaError(f"bool value {value!r} is not a valid {self.value}")
        if isinstance(value, expected):
            return value
        if self is SqlType.FLOAT and isinstance(value, int):
            return float(value)
        raise SchemaError(
            f"value {value!r} (type {type(value).__name__}) is not a valid {self.value}"
        )

    def comparable_with(self, other: "SqlType") -> bool:
        """Whether values of this type can be compared with ``other``'s."""
        numeric = {SqlType.INT, SqlType.FLOAT}
        if self in numeric and other in numeric:
            return True
        return self is other


_PYTHON_TYPES: dict[SqlType, type] = {
    SqlType.INT: int,
    SqlType.FLOAT: float,
    SqlType.STR: str,
    SqlType.DATE: datetime.date,
}


def infer_sql_type(value: Any) -> SqlType:
    """Infer the :class:`SqlType` of a literal Python value.

    Raises :class:`SchemaError` for unsupported types (including ``None``,
    whose type cannot be inferred).
    """
    if isinstance(value, bool) or value is None:
        raise SchemaError(f"cannot infer SQL type of {value!r}")
    if isinstance(value, int):
        return SqlType.INT
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.STR
    if isinstance(value, datetime.date):
        return SqlType.DATE
    raise SchemaError(f"unsupported literal type {type(value).__name__}")
