"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation (§V-B).  Each
returns a structured result whose :meth:`render` prints the same rows or
series the paper reports; the ``benchmarks/`` directory wraps these in
pytest-benchmark entries and ``EXPERIMENTS.md`` records paper-vs-measured.

Scale note: the paper runs 100M-row tables on a physical SQL Server; we
run scaled-down tables (defaults here) on the simulated engine.  Every
quantity compared is a *ratio* (SpeedUp, overhead, clustering ratio,
estimate/actual), which is what makes the scale substitution sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Database
from repro.core.clustering import ClusteringMeasurement, measure_clustering
from repro.core.dpc import exact_dpc
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import AccessPathRequest
from repro.exec.executor import execute
from repro.harness.methodology import EvaluationOutcome, evaluate_workload
from repro.harness.reporting import format_table, percent, summarize
from repro.lifecycle.plan import build_optimizer
from repro.workloads.queries import (
    clustering_probe_predicates,
    join_workload,
    multi_predicate_query,
    single_table_workload,
)
from repro.workloads.realworld import build_real_world_databases, default_dataset_specs
from repro.workloads.synthetic import build_synthetic_database
from repro.workloads.tpch import TPCH_QUERY_COLUMNS


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
@dataclass
class TableOneResult:
    rows: list[dict] = field(default_factory=list)

    def render(self) -> str:
        headers = [
            "database",
            "num_rows",
            "num_pages",
            "rows/page",
            "paper rows (M)",
            "paper rows/page",
        ]
        body = [
            [
                r["database"],
                r["num_rows"],
                r["num_pages"],
                f"{r['rows_per_page']:.0f}",
                r["paper_rows_millions"],
                r["paper_rows_per_page"],
            ]
            for r in self.rows
        ]
        return "TABLE I — Databases used in experiments\n" + format_table(
            headers, body
        )


def run_table1(scale: float = 1.0, seed: int = 0) -> TableOneResult:
    """Regenerate Table I: the database inventory (scaled)."""
    result = TableOneResult()
    synthetic = build_synthetic_database(
        num_rows=max(1000, int(100_000 * scale)), seed=seed
    )
    table = synthetic.table("t")
    result.rows.append(
        {
            "database": "synthetic",
            "num_rows": table.num_rows,
            "num_pages": table.num_pages,
            "rows_per_page": table.num_rows / table.num_pages,
            "paper_rows_millions": 100.0,
            "paper_rows_per_page": 80,
        }
    )
    paper_geometry = {
        spec.name: spec for spec in default_dataset_specs(scale)
    }
    databases = build_real_world_databases(scale=scale, seed=seed)
    for name, database in databases.items():
        if name == "tpch":
            table = database.table("lineitem")
            paper_millions, paper_rpp = 60.0, 54
        else:
            table = database.table(name)
            spec = paper_geometry[name]
            paper_millions = spec.paper_rows_millions
            paper_rpp = spec.paper_rows_per_page
        result.rows.append(
            {
                "database": name,
                "num_rows": table.num_rows,
                "num_pages": table.num_pages,
                "rows_per_page": table.num_rows / max(1, table.num_pages),
                "paper_rows_millions": paper_millions,
                "paper_rows_per_page": paper_rpp,
            }
        )
    return result


# ----------------------------------------------------------------------
# Figures 6 & 7 — single-table speedup and overhead
# ----------------------------------------------------------------------
@dataclass
class SingleTableFiguresResult:
    """Joint result for Fig. 6 (SpeedUp) and Fig. 7 (overhead)."""

    outcomes: list[EvaluationOutcome] = field(default_factory=list)

    def by_column(self) -> dict[str, list[EvaluationOutcome]]:
        grouped: dict[str, list[EvaluationOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.generated.column, []).append(outcome)
        return grouped

    def speedups(self) -> list[float]:
        return [o.speedup for o in self.outcomes]

    def overheads(self) -> list[float]:
        return [o.overhead for o in self.outcomes]

    def render(self) -> str:
        lines = ["FIG. 6 — SpeedUp for single table queries"]
        body = []
        for index, outcome in enumerate(self.outcomes):
            body.append(
                [
                    index,
                    outcome.generated.column,
                    percent(outcome.generated.selectivity),
                    outcome.original_plan.access_method(),
                    outcome.improved_plan.access_method(),
                    percent(outcome.speedup),
                    percent(outcome.overhead),
                ]
            )
        lines.append(
            format_table(
                ["query", "column", "sel", "plan P", "plan P'", "speedup", "overhead"],
                body,
            )
        )
        lines.append("")
        lines.append("per-column summary (Fig. 6 shape):")
        for column, outcomes in sorted(self.by_column().items()):
            stats = summarize([o.speedup for o in outcomes])
            changed = sum(1 for o in outcomes if o.plan_changed)
            lines.append(
                f"  {column}: mean speedup {percent(stats['mean'])}, "
                f"max {percent(stats['max'])}, plan changed {changed}/{len(outcomes)}"
            )
        overhead_stats = summarize(self.overheads())
        lines.append(
            f"FIG. 7 — monitoring overhead: mean {percent(overhead_stats['mean'])}, "
            f"max {percent(overhead_stats['max'])} (paper: typically < 2%)"
        )
        return "\n".join(lines)


def run_fig6_fig7(
    num_rows: int = 60_000,
    queries_per_column: int = 25,
    seed: int = 0,
    monitor_config: Optional[MonitorConfig] = None,
    exec_mode: str = "row",
    shards: int = 1,
) -> SingleTableFiguresResult:
    """The Fig. 6/7 experiment: 4 columns x N queries, selectivity 1-10%.

    ``shards > 1`` runs the same methodology against a scatter-gather
    deployment: every T / T_monitored / T' is the merged makespan of a
    range-partitioned :class:`~repro.shard.coordinator.ShardCoordinator`
    fan-out, and step 4 re-optimizes on the shard-merged observations.
    The plan transitions (the Fig. 6 shape) are identical to the serial
    run — :func:`repro.harness.equivalence.compare_sharded_workload`
    proves it — but the *speedups* change character: scans parallelize
    ~N× while index seeks on clustering-correlated columns (c2, c3) hit
    range-partitioning skew — their matches concentrate on one shard, so
    the seek's makespan stays serial and the measured SpeedUp can go
    negative even though the plan choice is still the serial optimum.
    """
    database = build_synthetic_database(num_rows=num_rows, seed=seed)
    workload = single_table_workload(
        database,
        "t",
        ["c2", "c3", "c4", "c5"],
        queries_per_column=queries_per_column,
        selectivity_range=(0.01, 0.10),
        seed=seed,
    )
    if shards > 1:
        from repro.harness.methodology import evaluate_workload_sharded
        from repro.shard.coordinator import ShardCoordinator

        coordinator = ShardCoordinator(
            database, num_shards=shards, monitor_config=monitor_config
        )
        try:
            outcomes = evaluate_workload_sharded(
                coordinator, workload, exec_mode=exec_mode
            )
        finally:
            coordinator.shutdown()
    else:
        outcomes = evaluate_workload(
            database, workload, monitor_config=monitor_config, exec_mode=exec_mode
        )
    return SingleTableFiguresResult(outcomes=outcomes)


# ----------------------------------------------------------------------
# Figure 8 — join speedup
# ----------------------------------------------------------------------
@dataclass
class JoinFigureResult:
    outcomes: list[EvaluationOutcome] = field(default_factory=list)

    def render(self) -> str:
        lines = ["FIG. 8 — SpeedUp for join queries"]
        body = []
        for index, outcome in enumerate(self.outcomes):
            body.append(
                [
                    index,
                    outcome.generated.column,
                    percent(outcome.generated.selectivity),
                    outcome.original_plan.access_method(),
                    outcome.improved_plan.access_method(),
                    percent(outcome.speedup),
                    percent(outcome.overhead),
                ]
            )
        lines.append(
            format_table(
                ["query", "join col", "outer sel", "plan P", "plan P'", "speedup", "overhead"],
                body,
            )
        )
        changed = sum(1 for o in self.outcomes if o.plan_changed)
        stats = summarize([o.speedup for o in self.outcomes])
        overhead = summarize([o.overhead for o in self.outcomes])
        lines.append(
            f"summary: plan changed {changed}/{len(self.outcomes)}, "
            f"mean speedup {percent(stats['mean'])}, max {percent(stats['max'])}; "
            f"max monitoring overhead {percent(overhead['max'])} (paper: <= 2%)"
        )
        return "\n".join(lines)


def run_fig8(
    num_rows: int = 60_000,
    queries_per_column: int = 10,
    seed: int = 0,
    monitor_config: Optional[MonitorConfig] = None,
    exec_mode: str = "row",
) -> JoinFigureResult:
    """The Fig. 8 experiment: 40 join queries across the Ci spectrum."""
    database = build_synthetic_database(num_rows=num_rows, seed=seed, with_copy=True)
    workload = join_workload(
        database,
        "t1",
        "t",
        ["c2", "c3", "c4", "c5"],
        queries_per_column=queries_per_column,
        selectivity_range=(0.005, 0.10),
        seed=seed,
    )
    config = monitor_config if monitor_config is not None else MonitorConfig(
        dpsample_fraction=0.3
    )
    outcomes = evaluate_workload(
        database, workload, monitor_config=config, exec_mode=exec_mode
    )
    return JoinFigureResult(outcomes=outcomes)


# ----------------------------------------------------------------------
# Figure 9 — effectiveness of page sampling
# ----------------------------------------------------------------------
@dataclass
class PageSamplingCell:
    num_predicates: int
    fraction: float
    overhead: float
    max_relative_error: float


@dataclass
class PageSamplingResult:
    cells: list[PageSamplingCell] = field(default_factory=list)

    def render(self) -> str:
        lines = ["FIG. 9 — Effectiveness of page sampling"]
        fractions = sorted({c.fraction for c in self.cells})
        predicate_counts = sorted({c.num_predicates for c in self.cells})
        headers = ["#predicates"] + [
            f"overhead@{f:.0%}" for f in fractions
        ] + [f"maxerr@{f:.0%}" for f in fractions]
        by_key = {(c.num_predicates, c.fraction): c for c in self.cells}
        body = []
        for count in predicate_counts:
            row: list = [count]
            for fraction in fractions:
                row.append(percent(by_key[(count, fraction)].overhead))
            for fraction in fractions:
                row.append(percent(by_key[(count, fraction)].max_relative_error))
            body.append(row)
        lines.append(format_table(headers, body))
        lines.append(
            "(paper: at 1% sampling, ~2% overhead and max error 0.5%; full-scan "
            "short-circuit suppression grows with #predicates and is impractical)"
        )
        return "\n".join(lines)


def run_fig9(
    num_rows: int = 60_000,
    max_predicates: int = 4,
    fractions: Sequence[float] = (0.01, 0.10, 1.0),
    seed: int = 0,
) -> PageSamplingResult:
    """The Fig. 9 experiment: overhead & error vs. #predicates x fraction.

    Monitoring requests ask for the DPC of *each individual term* — all
    but the first are non-prefix expressions, so they need short-circuit
    suppression on sampled pages, which is exactly what the experiment
    measures.
    """
    database = build_synthetic_database(num_rows=num_rows, seed=seed)
    table = database.table("t")
    columns = ["c2", "c3", "c4", "c5"][:max_predicates]
    result = PageSamplingResult()
    for count in range(1, len(columns) + 1):
        generated = multi_predicate_query(
            database, "t", columns[:count], per_term_selectivity=0.5, seed=seed
        )
        plan = build_optimizer(
            database, injections=generated.injections()
        ).optimize(generated.query)

        plain = build_executable(plan, database)
        base_time = execute(plain.root, database, cold_cache=True).elapsed_ms

        from repro.harness.methodology import default_requests

        requests = default_requests(database, generated.query)
        truths = {
            r.key(): exact_dpc(table, r.expression)
            for r in requests
            if isinstance(r, AccessPathRequest)
        }
        for fraction in fractions:
            monitored = build_executable(
                plan,
                database,
                requests,
                MonitorConfig(dpsample_fraction=fraction, seed=seed + count),
            )
            run = execute(monitored.root, database, cold_cache=True)
            overhead = (run.elapsed_ms - base_time) / base_time
            max_error = 0.0
            for observation in run.runstats.observations:
                truth = truths.get(observation.key)
                if truth and observation.answered:
                    max_error = max(
                        max_error, abs(observation.estimate - truth) / truth
                    )
            result.cells.append(
                PageSamplingCell(
                    num_predicates=count,
                    fraction=fraction,
                    overhead=overhead,
                    max_relative_error=max_error,
                )
            )
    return result


# ----------------------------------------------------------------------
# Figure 10 — clustering ratio on real datasets
# ----------------------------------------------------------------------
@dataclass
class ClusteringFigureResult:
    measurements: list[ClusteringMeasurement] = field(default_factory=list)

    def ratios(self) -> list[float]:
        return [m.clustering_ratio for m in self.measurements]

    def render(self) -> str:
        lines = ["FIG. 10 — Page clustering for real datasets"]
        body = [
            [
                m.table,
                m.expression[:44],
                percent(m.selectivity),
                m.actual_pages,
                f"{m.lower_bound:.1f}",
                f"{m.upper_bound:.0f}",
                f"{m.clustering_ratio:.2f}",
            ]
            for m in self.measurements
        ]
        lines.append(
            format_table(
                ["dataset", "predicate", "sel", "N", "LB", "UB", "CR"], body
            )
        )
        stats = summarize(self.ratios())
        lines.append(
            f"summary: mean CR {stats['mean']:.2f}, stddev {stats['stddev']:.2f} "
            f"over {int(stats['count'])} probes (paper: mean 0.56, stddev 0.40)"
        )
        return "\n".join(lines)


def run_fig10(
    scale: float = 1.0, probes_per_column: int = 4, seed: int = 0
) -> ClusteringFigureResult:
    """The Fig. 10 experiment: CR across the real-world analogues."""
    databases = build_real_world_databases(scale=scale, seed=seed)
    result = ClusteringFigureResult()
    for name, database in databases.items():
        if name == "tpch":
            table_name, columns = "lineitem", list(TPCH_QUERY_COLUMNS)
        else:
            table_name = name
            table = database.table(table_name)
            columns = [
                idx.definition.leading_column for idx in table.indexes.values()
            ]
        table = database.table(table_name)
        for column in columns:
            predicates = clustering_probe_predicates(
                database, table_name, column, probes_per_column, seed=seed
            )
            for predicate in predicates:
                result.measurements.append(measure_clustering(table, predicate))
    return result


# ----------------------------------------------------------------------
# Figure 11 — speedup on real-world databases
# ----------------------------------------------------------------------
@dataclass
class RealWorldFigureResult:
    outcomes_by_db: dict[str, list[EvaluationOutcome]] = field(default_factory=dict)

    def all_outcomes(self) -> list[EvaluationOutcome]:
        return [o for outcomes in self.outcomes_by_db.values() for o in outcomes]

    def render(self) -> str:
        lines = ["FIG. 11 — SpeedUp for real world databases"]
        body = []
        index = 0
        for name, outcomes in self.outcomes_by_db.items():
            for outcome in outcomes:
                body.append(
                    [
                        index,
                        name,
                        outcome.generated.column,
                        percent(outcome.generated.selectivity),
                        outcome.improved_plan.access_method(),
                        percent(outcome.speedup),
                    ]
                )
                index += 1
        lines.append(
            format_table(
                ["query", "database", "column", "sel", "plan P'", "speedup"], body
            )
        )
        all_outcomes = self.all_outcomes()
        stats = summarize([o.speedup for o in all_outcomes])
        changed = sum(1 for o in all_outcomes if o.plan_changed)
        lines.append(
            f"summary: {len(all_outcomes)} queries, plan changed {changed}, "
            f"mean speedup {percent(stats['mean'])}, max {percent(stats['max'])}"
        )
        return "\n".join(lines)


def run_fig11(
    scale: float = 1.0,
    queries_per_column: int = 4,
    seed: int = 0,
    monitor_config: Optional[MonitorConfig] = None,
) -> RealWorldFigureResult:
    """The Fig. 11 experiment: feedback-driven speedups on every analogue."""
    databases = build_real_world_databases(scale=scale, seed=seed)
    result = RealWorldFigureResult()
    for name, database in databases.items():
        if name == "tpch":
            table_name, columns = "lineitem", list(TPCH_QUERY_COLUMNS)
            count_column = "l_padding"
        else:
            table_name = name
            table = database.table(table_name)
            columns = [
                idx.definition.leading_column for idx in table.indexes.values()
            ]
            count_column = "padding"
        workload = single_table_workload(
            database,
            table_name,
            columns,
            queries_per_column=queries_per_column,
            selectivity_range=(0.005, 0.10),
            count_column=count_column,
            seed=seed,
        )
        result.outcomes_by_db[name] = evaluate_workload(
            database, workload, monitor_config=monitor_config
        )
    return result
