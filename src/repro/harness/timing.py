"""Wall-clock timing for the harness — the only sanctioned host-clock reader.

Everything inside the simulated engine measures time on per-execution
:class:`~repro.storage.accounting.IOContext` objects; reading the host
clock there would leak nondeterminism into results.  The harness still legitimately
wants wall-clock durations ("figure regenerated in 12.3s"), so this module
owns that capability and the codebase linter (rule ``R005`` in
:mod:`repro.analysis.codelint`) bans ``time.time`` / ``datetime.now`` and
friends everywhere else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def wall_clock_seconds() -> float:
    """Seconds since the epoch, from the host clock."""
    return time.time()


@dataclass
class Stopwatch:
    """Measure a wall-clock duration: ``Stopwatch()`` … ``.elapsed_seconds``."""

    _start: float = field(default_factory=time.perf_counter)

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._start

    def restart(self) -> None:
        self._start = time.perf_counter()
