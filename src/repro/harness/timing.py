"""Wall-clock timing for the harness — the only sanctioned host-clock reader.

Everything inside the simulated engine measures time on per-execution
:class:`~repro.storage.accounting.IOContext` objects; reading the host
clock there would leak nondeterminism into results.  The harness still legitimately
wants wall-clock durations ("figure regenerated in 12.3s"), so this module
owns that capability and the codebase linter (rule ``R005`` in
:mod:`repro.analysis.codelint`) bans ``time.time`` / ``datetime.now`` and
friends everywhere else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def wall_clock_seconds() -> float:
    """Seconds since the epoch, from the host clock."""
    return time.time()


def utc_now_iso() -> str:
    """Current UTC time as an ISO-8601 string (``2026-08-08T12:00:00Z``).

    Used to stamp benchmark-trajectory entries; lives here so the R005
    host-clock ban stays a single-module waiver.
    """
    import datetime

    now = datetime.datetime.now(datetime.timezone.utc)
    return now.replace(microsecond=0).isoformat().replace("+00:00", "Z")


@dataclass
class Stopwatch:
    """Measure a wall-clock duration: ``Stopwatch()`` … ``.elapsed_seconds``."""

    _start: float = field(default_factory=time.perf_counter)

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self._start

    def restart(self) -> None:
        self._start = time.perf_counter()
