"""Plain-text reporting helpers for the per-figure drivers."""

from __future__ import annotations

import math
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (right-aligned numbers, left-aligned text)."""
    rendered_rows = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if _is_numeric_text(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = [render_line(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def _is_numeric_text(text: str) -> bool:
    stripped = text.strip().rstrip("%x")
    if not stripped:
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False


def summarize(values: Sequence[float]) -> dict[str, float]:
    """mean / stddev / min / max of a series (population stddev)."""
    if not values:
        return {"mean": 0.0, "stddev": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return {
        "mean": mean,
        "stddev": math.sqrt(variance),
        "min": min(values),
        "max": max(values),
        "count": len(values),
    }


def percent(value: float) -> str:
    return f"{value * 100:.1f}%"


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation.

    Matches ``numpy.percentile``'s default method on sorted data; 0.0 for
    an empty series so report rows never blow up on a counter that stayed
    at zero.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    fraction = rank - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


def format_worker_table(workers_snapshot: dict) -> str:
    """Render a ``WorkerPool.snapshot()`` as the stats endpoint's text.

    One row per worker process (pid, alive/busy state, queries served,
    respawn count, last-synced feedback epoch) under a pool-level
    occupancy header — the human form of the per-worker gauges the
    ``stats`` wire request carries.
    """
    header = (
        f"workers: {workers_snapshot.get('num_workers', 0)} "
        f"(busy {workers_snapshot.get('busy', 0)}, "
        f"idle {workers_snapshot.get('idle', 0)}, "
        f"restarts {workers_snapshot.get('restarts', 0)})"
    )
    rows = [
        [
            w.get("worker_id", "?"),
            w.get("pid", "?"),
            "yes" if w.get("alive") else "no",
            "busy" if w.get("busy") else "idle",
            w.get("queries_served", 0),
            w.get("respawns", 0),
            w.get("synced_epoch", -1),
        ]
        for w in workers_snapshot.get("workers", [])
    ]
    table = format_table(
        ["worker", "pid", "alive", "state", "served", "respawns", "epoch"],
        rows,
    )
    return f"{header}\n{table}"


def latency_summary(values: Sequence[float]) -> dict[str, float]:
    """The serving-layer digest of a latency series: count, mean, tail."""
    if not values:
        return {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "max": 0.0,
        }
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": float(max(values)),
    }


def reopt_summary(counters: dict) -> str:
    """One-line digest of the mid-query reopt counters; empty when the
    watchdog never fired (so quiet runs stay quiet in reports)."""
    trips = counters.get("reopt_trips", 0)
    if not trips:
        return ""
    return (
        f"reopt: {trips} trip(s), {counters.get('reopt_wins', 0)} "
        f"win(s), {counters.get('reopt_false_trips', 0)} false trip(s)"
    )
