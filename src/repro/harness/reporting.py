"""Plain-text reporting helpers for the per-figure drivers."""

from __future__ import annotations

import math
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (right-aligned numbers, left-aligned text)."""
    rendered_rows = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if _is_numeric_text(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = [render_line(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def _is_numeric_text(text: str) -> bool:
    stripped = text.strip().rstrip("%x")
    if not stripped:
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False


def summarize(values: Sequence[float]) -> dict[str, float]:
    """mean / stddev / min / max of a series (population stddev)."""
    if not values:
        return {"mean": 0.0, "stddev": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return {
        "mean": mean,
        "stddev": math.sqrt(variance),
        "min": min(values),
        "max": max(values),
        "count": len(values),
    }


def percent(value: float) -> str:
    return f"{value * 100:.1f}%"
