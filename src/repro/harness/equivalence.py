"""Row ≡ batch ≡ columnar equivalence harness.

The batch execution path (page-at-a-time :class:`~repro.exec.batch.RowBatch`
exchange + compiled predicate kernels) and the columnar path (column-vector
batches + whole-vector kernels, :mod:`repro.exec.vector`) are pure
performance optimizations: each must be observationally identical to the
Volcano row iterator.  This module proves it per query, by running the
same physical plan under all three modes and diffing everything the
paper's machinery depends on:

* result rows (values *and* order) and output columns,
* every :class:`~repro.core.requests.PageCountObservation` — key,
  mechanism, estimate, exactness, answered/reason and the mechanism
  details (sampled-page counts, linear-counter bit patterns, ...),
* read counts (logical / random / sequential / pool hits),
* per-operator plan statistics (actual rows, pages touched, predicate
  evaluation counts — the Fig. 7/9 overhead currency),

then absorbs the monitored run's observations, re-optimizes, and checks
the improved plan's unmonitored run the same way — i.e. the *entire*
§V-B methodology pipeline is mode-invariant.  Row mode is the reference:
batch and columnar are each diffed against it.  Simulated ``cpu_ms`` is
deliberately excluded: batched charging accumulates the same totals in
fewer float additions, so the float may differ in the last ulp while
every integer counter is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Database
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import PageCountObservation, PageCountRequest
from repro.exec.executor import QueryResult, execute
from repro.exec.runstats import OperatorStats
from repro.harness.methodology import default_requests
from repro.lifecycle.plan import build_optimizer
from repro.optimizer.injection import InjectionSet
from repro.workloads.queries import GeneratedQuery


def observation_fingerprint(observation: PageCountObservation) -> tuple:
    """Everything downstream consumers can see of one observation."""
    return (
        observation.key,
        observation.mechanism.value,
        observation.estimate,
        observation.exact,
        observation.answered,
        observation.reason,
        tuple(sorted((k, repr(v)) for k, v in observation.details.items())),
    )


def _diff_plan_stats(
    row_stats: OperatorStats,
    batch_stats: OperatorStats,
    path: str,
    out: list[str],
    mode: str = "batch",
) -> None:
    """Recursively compare the per-operator counters of the two runs."""
    label = f"{path}/{row_stats.operator}"
    if row_stats.operator != batch_stats.operator:
        out.append(
            f"{label}: operator mismatch ({batch_stats.operator} in {mode} mode)"
        )
        return
    for attribute in ("actual_rows", "pages_touched", "predicate_evaluations"):
        row_value = getattr(row_stats, attribute)
        batch_value = getattr(batch_stats, attribute)
        if row_value != batch_value:
            out.append(
                f"{label}: {attribute} row={row_value} {mode}={batch_value}"
            )
    if len(row_stats.children) != len(batch_stats.children):
        out.append(
            f"{label}: child count row={len(row_stats.children)} "
            f"{mode}={len(batch_stats.children)}"
        )
        return
    for index, (row_child, batch_child) in enumerate(
        zip(row_stats.children, batch_stats.children)
    ):
        _diff_plan_stats(row_child, batch_child, f"{label}[{index}]", out, mode)


def diff_results(
    row_result: QueryResult,
    batch_result: QueryResult,
    context: str = "",
    mode: str = "batch",
) -> list[str]:
    """Every observable difference between a row-mode run and a run in
    ``mode`` (batch or columnar)."""
    prefix = f"{context}: " if context else ""
    mismatches: list[str] = []
    if row_result.columns != batch_result.columns:
        mismatches.append(
            f"{prefix}columns row={row_result.columns} {mode}={batch_result.columns}"
        )
    if row_result.rows != batch_result.rows:
        mismatches.append(
            f"{prefix}result rows differ "
            f"(row={len(row_result.rows)} rows, {mode}={len(batch_result.rows)} rows"
            + (
                ""
                if len(row_result.rows) != len(batch_result.rows)
                else ", same length but different content/order"
            )
            + ")"
        )
    row_stats, batch_stats = row_result.runstats, batch_result.runstats
    for attribute in (
        "logical_reads",
        "random_reads",
        "sequential_reads",
        "pool_hits",
    ):
        row_value = getattr(row_stats, attribute)
        batch_value = getattr(batch_stats, attribute)
        if row_value != batch_value:
            mismatches.append(
                f"{prefix}{attribute} row={row_value} {mode}={batch_value}"
            )
    row_obs = [observation_fingerprint(o) for o in row_stats.observations]
    batch_obs = [observation_fingerprint(o) for o in batch_stats.observations]
    if row_obs != batch_obs:
        mismatches.append(
            f"{prefix}observations differ: row={row_obs} {mode}={batch_obs}"
        )
    plan_mismatches: list[str] = []
    _diff_plan_stats(row_stats.root, batch_stats.root, "", plan_mismatches, mode)
    mismatches.extend(prefix + m for m in plan_mismatches)
    return mismatches


#: The execution modes the harness proves equivalent (row is the reference).
EQUIVALENCE_MODES = ("row", "batch", "columnar")


@dataclass
class QueryEquivalence:
    """One query's row-vs-batch-vs-columnar comparison."""

    label: str
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class EquivalenceReport:
    """Workload-level row≡batch≡columnar verdict."""

    queries: list[QueryEquivalence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(q.ok for q in self.queries)

    def failures(self) -> list[QueryEquivalence]:
        return [q for q in self.queries if not q.ok]

    def render(self) -> str:
        lines = [
            f"row≡batch≡columnar equivalence: {len(self.queries)} queries, "
            f"{len(self.failures())} mismatched"
        ]
        for entry in self.queries:
            if entry.ok:
                lines.append(f"  {entry.label}: OK")
            else:
                lines.append(f"  {entry.label}: MISMATCH")
                lines.extend(f"    {m}" for m in entry.mismatches)
        return "\n".join(lines)


def compare_query(
    database: Database,
    generated: GeneratedQuery,
    requests: Optional[Sequence[PageCountRequest]] = None,
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
) -> QueryEquivalence:
    """Run one generated query through §V-B in all three modes and diff.

    Covers the monitored run of the accurate-cardinality plan P *and* the
    unmonitored run of the feedback-improved plan P' (built from the
    row-mode observations; the diff has already proven the other modes
    produced the same ones).  Monitor state is rebuilt per mode — bundles
    are stateful.
    """
    monitor_config = (
        monitor_config if monitor_config is not None else MonitorConfig()
    )
    injections = generated.injections(base_injections)
    query = generated.query
    request_list = (
        list(requests)
        if requests is not None
        else default_requests(database, query)
    )
    entry = QueryEquivalence(label=generated.label)

    plan = build_optimizer(database, injections=injections).optimize(query)

    monitored_results = {}
    for mode in EQUIVALENCE_MODES:
        build = build_executable(
            plan, database, list(request_list), monitor_config
        )
        monitored_results[mode] = execute(
            build.root, database, cold_cache=True, mode=mode
        )
    for mode in EQUIVALENCE_MODES[1:]:
        entry.mismatches.extend(
            diff_results(
                monitored_results["row"],
                monitored_results[mode],
                "monitored P",
                mode,
            )
        )

    corrected = injections.copy()
    corrected.absorb_observations(
        list(monitored_results["row"].runstats.observations)
    )
    improved_plan = build_optimizer(database, injections=corrected).optimize(query)
    improved_results = {}
    for mode in EQUIVALENCE_MODES:
        build = build_executable(improved_plan, database)
        improved_results[mode] = execute(
            build.root, database, cold_cache=True, mode=mode
        )
    for mode in EQUIVALENCE_MODES[1:]:
        entry.mismatches.extend(
            diff_results(
                improved_results["row"],
                improved_results[mode],
                "unmonitored P'",
                mode,
            )
        )
    return entry


def compare_workload(
    database: Database,
    workload: Sequence[GeneratedQuery],
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
) -> EquivalenceReport:
    """Prove row≡batch≡columnar for every query of a workload."""
    return EquivalenceReport(
        queries=[
            compare_query(
                database,
                generated,
                monitor_config=monitor_config,
                base_injections=base_injections,
            )
            for generated in workload
        ]
    )
