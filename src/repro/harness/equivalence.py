"""Row ≡ batch ≡ columnar equivalence harness.

The batch execution path (page-at-a-time :class:`~repro.exec.batch.RowBatch`
exchange + compiled predicate kernels) and the columnar path (column-vector
batches + whole-vector kernels, :mod:`repro.exec.vector`) are pure
performance optimizations: each must be observationally identical to the
Volcano row iterator.  This module proves it per query, by running the
same physical plan under all three modes and diffing everything the
paper's machinery depends on:

* result rows (values *and* order) and output columns,
* every :class:`~repro.core.requests.PageCountObservation` — key,
  mechanism, estimate, exactness, answered/reason and the mechanism
  details (sampled-page counts, linear-counter bit patterns, ...),
* read counts (logical / random / sequential / pool hits),
* per-operator plan statistics (actual rows, pages touched, predicate
  evaluation counts — the Fig. 7/9 overhead currency),

then absorbs the monitored run's observations, re-optimizes, and checks
the improved plan's unmonitored run the same way — i.e. the *entire*
§V-B methodology pipeline is mode-invariant.  Row mode is the reference:
batch and columnar are each diffed against it.  Simulated ``cpu_ms`` is
deliberately excluded: batched charging accumulates the same totals in
fewer float additions, so the float may differ in the last ulp while
every integer counter is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.catalog.catalog import Database
from repro.core.feedback import FeedbackStore
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import PageCountObservation, PageCountRequest
from repro.exec.executor import QueryResult, execute
from repro.exec.runstats import OperatorStats, RunStats
from repro.harness.methodology import default_requests
from repro.lifecycle.plan import build_optimizer
from repro.optimizer.injection import InjectionSet
from repro.shard.feedback import ShardedFeedbackStore
from repro.workloads.queries import GeneratedQuery

if TYPE_CHECKING:
    from repro.shard.coordinator import ShardCoordinator


def observation_fingerprint(observation: PageCountObservation) -> tuple:
    """Everything downstream consumers can see of one observation."""
    return (
        observation.key,
        observation.mechanism.value,
        observation.estimate,
        observation.exact,
        observation.answered,
        observation.reason,
        tuple(sorted((k, repr(v)) for k, v in observation.details.items())),
    )


def _diff_plan_stats(
    row_stats: OperatorStats,
    batch_stats: OperatorStats,
    path: str,
    out: list[str],
    mode: str = "batch",
) -> None:
    """Recursively compare the per-operator counters of the two runs."""
    label = f"{path}/{row_stats.operator}"
    if row_stats.operator != batch_stats.operator:
        out.append(
            f"{label}: operator mismatch ({batch_stats.operator} in {mode} mode)"
        )
        return
    for attribute in ("actual_rows", "pages_touched", "predicate_evaluations"):
        row_value = getattr(row_stats, attribute)
        batch_value = getattr(batch_stats, attribute)
        if row_value != batch_value:
            out.append(
                f"{label}: {attribute} row={row_value} {mode}={batch_value}"
            )
    if len(row_stats.children) != len(batch_stats.children):
        out.append(
            f"{label}: child count row={len(row_stats.children)} "
            f"{mode}={len(batch_stats.children)}"
        )
        return
    for index, (row_child, batch_child) in enumerate(
        zip(row_stats.children, batch_stats.children)
    ):
        _diff_plan_stats(row_child, batch_child, f"{label}[{index}]", out, mode)


def diff_results(
    row_result: QueryResult,
    batch_result: QueryResult,
    context: str = "",
    mode: str = "batch",
) -> list[str]:
    """Every observable difference between a row-mode run and a run in
    ``mode`` (batch or columnar)."""
    prefix = f"{context}: " if context else ""
    mismatches: list[str] = []
    if row_result.columns != batch_result.columns:
        mismatches.append(
            f"{prefix}columns row={row_result.columns} {mode}={batch_result.columns}"
        )
    if row_result.rows != batch_result.rows:
        mismatches.append(
            f"{prefix}result rows differ "
            f"(row={len(row_result.rows)} rows, {mode}={len(batch_result.rows)} rows"
            + (
                ""
                if len(row_result.rows) != len(batch_result.rows)
                else ", same length but different content/order"
            )
            + ")"
        )
    row_stats, batch_stats = row_result.runstats, batch_result.runstats
    for attribute in (
        "logical_reads",
        "random_reads",
        "sequential_reads",
        "pool_hits",
    ):
        row_value = getattr(row_stats, attribute)
        batch_value = getattr(batch_stats, attribute)
        if row_value != batch_value:
            mismatches.append(
                f"{prefix}{attribute} row={row_value} {mode}={batch_value}"
            )
    row_obs = [observation_fingerprint(o) for o in row_stats.observations]
    batch_obs = [observation_fingerprint(o) for o in batch_stats.observations]
    if row_obs != batch_obs:
        mismatches.append(
            f"{prefix}observations differ: row={row_obs} {mode}={batch_obs}"
        )
    plan_mismatches: list[str] = []
    _diff_plan_stats(row_stats.root, batch_stats.root, "", plan_mismatches, mode)
    mismatches.extend(prefix + m for m in plan_mismatches)
    return mismatches


#: The execution modes the harness proves equivalent (row is the reference).
EQUIVALENCE_MODES = ("row", "batch", "columnar")


@dataclass
class QueryEquivalence:
    """One query's row-vs-batch-vs-columnar comparison."""

    label: str
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class EquivalenceReport:
    """Workload-level equivalence verdict (mode- or deployment-level)."""

    queries: list[QueryEquivalence] = field(default_factory=list)
    title: str = "row≡batch≡columnar equivalence"

    @property
    def ok(self) -> bool:
        return all(q.ok for q in self.queries)

    def failures(self) -> list[QueryEquivalence]:
        return [q for q in self.queries if not q.ok]

    def render(self) -> str:
        lines = [
            f"{self.title}: {len(self.queries)} queries, "
            f"{len(self.failures())} mismatched"
        ]
        for entry in self.queries:
            if entry.ok:
                lines.append(f"  {entry.label}: OK")
            else:
                lines.append(f"  {entry.label}: MISMATCH")
                lines.extend(f"    {m}" for m in entry.mismatches)
        return "\n".join(lines)


def compare_query(
    database: Database,
    generated: GeneratedQuery,
    requests: Optional[Sequence[PageCountRequest]] = None,
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
) -> QueryEquivalence:
    """Run one generated query through §V-B in all three modes and diff.

    Covers the monitored run of the accurate-cardinality plan P *and* the
    unmonitored run of the feedback-improved plan P' (built from the
    row-mode observations; the diff has already proven the other modes
    produced the same ones).  Monitor state is rebuilt per mode — bundles
    are stateful.
    """
    monitor_config = (
        monitor_config if monitor_config is not None else MonitorConfig()
    )
    injections = generated.injections(base_injections)
    query = generated.query
    request_list = (
        list(requests)
        if requests is not None
        else default_requests(database, query)
    )
    entry = QueryEquivalence(label=generated.label)

    plan = build_optimizer(database, injections=injections).optimize(query)

    monitored_results = {}
    for mode in EQUIVALENCE_MODES:
        build = build_executable(
            plan, database, list(request_list), monitor_config
        )
        monitored_results[mode] = execute(
            build.root, database, cold_cache=True, mode=mode
        )
    for mode in EQUIVALENCE_MODES[1:]:
        entry.mismatches.extend(
            diff_results(
                monitored_results["row"],
                monitored_results[mode],
                "monitored P",
                mode,
            )
        )

    corrected = injections.copy()
    corrected.absorb_observations(
        list(monitored_results["row"].runstats.observations)
    )
    improved_plan = build_optimizer(database, injections=corrected).optimize(query)
    improved_results = {}
    for mode in EQUIVALENCE_MODES:
        build = build_executable(improved_plan, database)
        improved_results[mode] = execute(
            build.root, database, cold_cache=True, mode=mode
        )
    for mode in EQUIVALENCE_MODES[1:]:
        entry.mismatches.extend(
            diff_results(
                improved_results["row"],
                improved_results[mode],
                "unmonitored P'",
                mode,
            )
        )
    return entry


def compare_workload(
    database: Database,
    workload: Sequence[GeneratedQuery],
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
) -> EquivalenceReport:
    """Prove row≡batch≡columnar for every query of a workload."""
    return EquivalenceReport(
        queries=[
            compare_query(
                database,
                generated,
                monitor_config=monitor_config,
                base_injections=base_injections,
            )
            for generated in workload
        ]
    )


# ----------------------------------------------------------------------
# Serial ≡ sharded
# ----------------------------------------------------------------------
#: Relative tolerance for merged *inexact* estimates (DPSAMPLE at a
#: fraction < 1, LINEAR_COUNTING).  Sampling every k-th page of N shard
#: files is not the same page set as every k-th page of one global file,
#: and ``-m·ln(V/m)`` is not additive, so inexact mechanisms are only
#: required to agree statistically.  Exact mechanisms must match to the
#: bit — run the sharded harness at ``dpsample_fraction=1.0`` for a
#: fully bit-exact proof.
SHARD_INEXACT_RTOL = 0.10


def _diff_sharded_observations(
    serial: Sequence[PageCountObservation],
    merged: Sequence[PageCountObservation],
    context: str,
    out: list[str],
) -> None:
    """Diff serial observations against the coordinator's merged ones.

    The mechanism ``details`` are deliberately excluded from the merged
    fingerprint: a merged observation's details describe the *fan-out*
    (per-shard estimates, shard counts), not a single file's sampled
    pages.  Everything the optimizer consumes — key, mechanism,
    answered/reason, exactness, and the estimate itself — must agree.
    """
    serial_keys = [obs.key for obs in serial]
    merged_keys = [obs.key for obs in merged]
    if serial_keys != merged_keys:
        out.append(
            f"{context}: observation keys serial={serial_keys} "
            f"sharded={merged_keys}"
        )
        return
    for serial_obs, merged_obs in zip(serial, merged):
        label = f"{context}: {serial_obs.key}"
        if serial_obs.answered != merged_obs.answered:
            out.append(
                f"{label}: answered serial={serial_obs.answered} "
                f"sharded={merged_obs.answered}"
            )
            continue
        if not serial_obs.answered:
            if serial_obs.reason != merged_obs.reason:
                out.append(
                    f"{label}: unanswerable reason serial="
                    f"{serial_obs.reason!r} sharded={merged_obs.reason!r}"
                )
            continue
        if serial_obs.mechanism != merged_obs.mechanism:
            out.append(
                f"{label}: mechanism serial={serial_obs.mechanism.value} "
                f"sharded={merged_obs.mechanism.value}"
            )
        if serial_obs.exact and not merged_obs.exact:
            out.append(
                f"{label}: serial observation exact but merged is not "
                f"(partial shard coverage?)"
            )
        if serial_obs.exact and merged_obs.exact:
            if serial_obs.estimate != merged_obs.estimate:
                out.append(
                    f"{label}: exact estimate serial={serial_obs.estimate} "
                    f"sharded={merged_obs.estimate}"
                )
        elif not _within_rtol(
            serial_obs.estimate, merged_obs.estimate, SHARD_INEXACT_RTOL
        ):
            out.append(
                f"{label}: inexact estimate serial={serial_obs.estimate} "
                f"sharded={merged_obs.estimate} beyond "
                f"rtol={SHARD_INEXACT_RTOL}"
            )


def _within_rtol(
    serial: Optional[float], sharded: Optional[float], rtol: float
) -> bool:
    if serial is None or sharded is None:
        return serial == sharded
    scale = max(abs(serial), abs(sharded), 1.0)
    return abs(serial - sharded) <= rtol * scale


def _diff_merged_feedback(
    serial_observations: Sequence[PageCountObservation],
    shard_runstats: Sequence[RunStats],
    context: str,
    out: list[str],
) -> None:
    """Prove the ShardedFeedbackStore merge equals a single-store harvest.

    Fresh stores on both sides: the serial observations land in one
    :class:`FeedbackStore`; the per-shard run statistics land in a
    :class:`ShardedFeedbackStore` through its atomic batch path.  The
    merged per-key records (summed page counts / exactness guard) must
    reproduce the single-store truth, and both sides must agree on
    whether the harvest moved the epoch at all.
    """
    serial_store = FeedbackStore()
    serial_store.record_observations(list(serial_observations))
    sharded_store = ShardedFeedbackStore(
        [FeedbackStore() for _ in shard_runstats]
    )
    sharded_store.record_shard_runs(list(shard_runstats))
    serial_keys = serial_store.keys()
    sharded_keys = sharded_store.keys()
    if serial_keys != sharded_keys:
        out.append(
            f"{context}: feedback keys serial={serial_keys} "
            f"sharded={sharded_keys}"
        )
        return
    if bool(serial_store.epoch) != bool(sharded_store.epoch):
        out.append(
            f"{context}: harvest no-op disagreement — serial epoch="
            f"{serial_store.epoch} sharded epoch={sharded_store.epoch}"
        )
    for key in serial_keys:
        serial_record = serial_store.record(key)
        merged_record = sharded_store.record(key)
        if serial_record is None or merged_record is None:
            out.append(f"{context}: {key}: record missing on one side")
            continue
        if serial_record.page_count_exact and merged_record.page_count_exact:
            if serial_record.page_count != merged_record.page_count:
                out.append(
                    f"{context}: {key}: exact merged page count "
                    f"serial={serial_record.page_count} "
                    f"sharded={merged_record.page_count}"
                )
        elif serial_record.page_count_exact and not merged_record.page_count_exact:
            out.append(
                f"{context}: {key}: serial feedback exact but merged "
                "record is not"
            )
        elif not _within_rtol(
            serial_record.page_count,
            merged_record.page_count,
            SHARD_INEXACT_RTOL,
        ):
            out.append(
                f"{context}: {key}: merged page count "
                f"serial={serial_record.page_count} "
                f"sharded={merged_record.page_count} beyond "
                f"rtol={SHARD_INEXACT_RTOL}"
            )


def compare_sharded_query(
    database: Database,
    coordinator: "ShardCoordinator",
    generated: GeneratedQuery,
    requests: Optional[Sequence[PageCountRequest]] = None,
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
    exec_mode: str = "row",
) -> QueryEquivalence:
    """Run one query serially and scatter-gathered, and diff everything.

    Mirrors :func:`compare_query`'s §V-B walk with the deployment as the
    varying axis instead of the execution mode:

    1. the accurate-cardinality plan P runs monitored on the single
       global database (the reference) and through
       :meth:`~repro.shard.coordinator.ShardCoordinator.run_plan`; result
       rows and columns must be bit-identical, and the merged
       observations must match the serial ones (exact mechanisms to the
       bit, inexact within :data:`SHARD_INEXACT_RTOL`);
    2. the per-shard run statistics feed a fresh
       :class:`~repro.shard.feedback.ShardedFeedbackStore` whose merged
       records must equal a fresh single :class:`FeedbackStore` fed the
       serial observations — the no-double-charging proof;
    3. both sides absorb their own observations, re-optimize, and the
       improved plans P' must render identically; P' then runs
       unmonitored both ways and the rows must again be bit-identical.

    Raw physical read counts are *not* compared: N shard B-trees have
    their own heights and fill patterns, so per-shard I/O legitimately
    differs from one global file's.  What the paper's loop consumes —
    rows, observations, merged feedback, and the resulting plan choice —
    is what must be invariant.
    """
    monitor_config = (
        monitor_config if monitor_config is not None else MonitorConfig()
    )
    injections = generated.injections(base_injections)
    query = generated.query
    request_list = (
        list(requests)
        if requests is not None
        else default_requests(database, query)
    )
    entry = QueryEquivalence(label=generated.label)

    plan = build_optimizer(database, injections=injections).optimize(query)

    serial_build = build_executable(
        plan, database, list(request_list), monitor_config
    )
    serial_result = execute(
        serial_build.root, database, cold_cache=True, mode=exec_mode
    )
    # The shard engines run through the lifecycle, which appends the
    # unanswerable leftovers to the runstats; mirror that here so both
    # observation lists cover the full request set.
    serial_observations = (
        list(serial_result.runstats.observations) + serial_build.unanswerable
    )

    sharded = coordinator.run_plan(
        query, plan, requests=request_list, exec_mode=exec_mode
    )
    merged_result = sharded.result
    if serial_result.columns != merged_result.columns:
        entry.mismatches.append(
            f"monitored P: columns serial={serial_result.columns} "
            f"sharded={merged_result.columns}"
        )
    if serial_result.rows != merged_result.rows:
        entry.mismatches.append(
            f"monitored P: result rows differ "
            f"(serial={len(serial_result.rows)} rows, "
            f"sharded={len(merged_result.rows)} rows"
            + (
                ""
                if len(serial_result.rows) != len(merged_result.rows)
                else ", same length but different content/order"
            )
            + ")"
        )
    _diff_sharded_observations(
        serial_observations,
        list(merged_result.runstats.observations),
        "monitored P",
        entry.mismatches,
    )
    _diff_merged_feedback(
        serial_observations,
        [run.result.runstats for run in sharded.shard_results],
        "feedback merge",
        entry.mismatches,
    )

    serial_corrected = injections.copy()
    serial_corrected.absorb_observations(serial_observations)
    serial_improved = build_optimizer(
        database, injections=serial_corrected
    ).optimize(query)
    sharded_corrected = injections.copy()
    sharded_corrected.absorb_observations(
        list(merged_result.runstats.observations)
    )
    sharded_improved = build_optimizer(
        database, injections=sharded_corrected
    ).optimize(query)
    if serial_improved.render() != sharded_improved.render():
        entry.mismatches.append(
            "improved plan P' diverged: serial feedback chose "
            f"{serial_improved.render()!r}, merged shard feedback chose "
            f"{sharded_improved.render()!r}"
        )
    else:
        improved_build = build_executable(serial_improved, database)
        serial_prime = execute(
            improved_build.root, database, cold_cache=True, mode=exec_mode
        )
        sharded_prime = coordinator.run_plan(
            query, serial_improved, exec_mode=exec_mode
        )
        if serial_prime.rows != sharded_prime.result.rows:
            entry.mismatches.append(
                f"unmonitored P': result rows differ "
                f"(serial={len(serial_prime.rows)} rows, "
                f"sharded={len(sharded_prime.result.rows)} rows)"
            )
    return entry


def compare_sharded_workload(
    database: Database,
    workload: Sequence[GeneratedQuery],
    num_shards: int = 4,
    strategy: str = "range",
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
    exec_mode: str = "row",
) -> EquivalenceReport:
    """Prove serial≡sharded for every query of a workload.

    Builds one :class:`~repro.shard.coordinator.ShardCoordinator` over a
    fresh partitioning of ``database`` and reuses it across the workload
    (the shard files, like the global one, persist between queries).
    Defaults to ``dpsample_fraction=1.0`` so every DPSAMPLE observation
    is exact and the whole proof is bit-level; pass an explicit
    ``monitor_config`` to exercise tolerance-checked sampling instead.
    """
    from repro.shard.coordinator import ShardCoordinator

    monitor_config = (
        monitor_config
        if monitor_config is not None
        else MonitorConfig(dpsample_fraction=1.0)
    )
    coordinator = ShardCoordinator(
        database,
        num_shards=num_shards,
        strategy=strategy,
        monitor_config=monitor_config,
    )
    try:
        queries = [
            compare_sharded_query(
                database,
                coordinator,
                generated,
                monitor_config=monitor_config,
                base_injections=base_injections,
                exec_mode=exec_mode,
            )
            for generated in workload
        ]
    finally:
        coordinator.shutdown()
    return EquivalenceReport(
        queries=queries,
        title=f"serial≡sharded equivalence ({num_shards} shards, {strategy})",
    )
