"""Evaluation harness: the paper's methodology and per-figure drivers."""

from repro.harness.equivalence import (
    EquivalenceReport,
    QueryEquivalence,
    compare_query,
    compare_sharded_query,
    compare_sharded_workload,
    compare_workload,
)
from repro.harness.figures import (
    ClusteringFigureResult,
    JoinFigureResult,
    PageSamplingResult,
    RealWorldFigureResult,
    SingleTableFiguresResult,
    TableOneResult,
    run_fig10,
    run_fig11,
    run_fig6_fig7,
    run_fig8,
    run_fig9,
    run_table1,
)
from repro.harness.methodology import (
    EvaluationOutcome,
    default_requests,
    evaluate_query,
    evaluate_query_sharded,
    evaluate_workload,
    evaluate_workload_sharded,
)
from repro.harness.reporting import format_table, percent, summarize

__all__ = [
    "ClusteringFigureResult",
    "EquivalenceReport",
    "EvaluationOutcome",
    "QueryEquivalence",
    "compare_query",
    "compare_sharded_query",
    "compare_sharded_workload",
    "compare_workload",
    "JoinFigureResult",
    "PageSamplingResult",
    "RealWorldFigureResult",
    "SingleTableFiguresResult",
    "TableOneResult",
    "default_requests",
    "evaluate_query",
    "evaluate_query_sharded",
    "evaluate_workload",
    "evaluate_workload_sharded",
    "format_table",
    "percent",
    "run_fig10",
    "run_fig11",
    "run_fig6_fig7",
    "run_fig8",
    "run_fig9",
    "run_table1",
    "summarize",
]
