"""The paper's evaluation methodology (§V-B), as a reusable harness.

For a query Q:

1. optimize with **accurate cardinalities injected** -> plan P
   (isolates page-count error from cardinality error);
2. run P unmonitored, cold cache -> time T;
3. run P with page-count monitors attached -> observations (and the
   monitoring overhead, Fig. 7: ``(T_monitored - T) / T``);
4. inject the observed distinct page counts, re-optimize -> plan P';
5. run P' unmonitored, cold cache -> time T';
6. report SpeedUp ``(T - T') / T``.

Because the clock is simulated and deterministic, identical plans imply
identical times, so step 5 reuses T when the plan did not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.catalog.catalog import Database
from repro.core.planner import MonitorConfig, build_executable
from repro.core.requests import (
    AccessPathRequest,
    JoinMethodRequest,
    PageCountObservation,
    PageCountRequest,
)
from repro.exec.executor import execute
from repro.lifecycle.plan import build_optimizer
from repro.optimizer.injection import InjectionSet
from repro.optimizer.optimizer import JoinQuery, Query, SingleTableQuery
from repro.optimizer.plans import PlanNode
from repro.sql.predicates import Conjunction
from repro.workloads.queries import GeneratedQuery

if TYPE_CHECKING:
    from repro.shard.coordinator import ShardCoordinator


def default_requests(database: Database, query: Query) -> list[PageCountRequest]:
    """The page-count expressions relevant for costing Q's alternatives.

    Single-table queries: one request per predicate term whose column has
    a usable index (each would drive an Index Seek), plus the full
    conjunction when it has several such terms (Index Intersection /
    current-plan DPC).  Join queries: a join-method request per table that
    could serve as the INL inner (index or clustering on its join column).
    """
    requests: list[PageCountRequest] = []
    if isinstance(query, SingleTableQuery):
        table = database.table(query.table)
        indexed_terms = [
            term
            for term in query.predicate.terms
            if table.indexes_on_column(term.column)
            or (
                table.clustered_index is not None
                and table.clustered_index.key_columns[0] == term.column
            )
        ]
        for term in indexed_terms:
            requests.append(
                AccessPathRequest(query.table, Conjunction((term,)))
            )
        if len(indexed_terms) >= 2:
            requests.append(
                AccessPathRequest(query.table, Conjunction(tuple(indexed_terms)))
            )
    elif isinstance(query, JoinQuery):
        for table_name in (
            query.join_predicate.left_table,
            query.join_predicate.right_table,
        ):
            table = database.table(table_name)
            column = query.join_predicate.column_for(table_name)
            has_access = bool(table.indexes_on_column(column)) or (
                table.clustered_index is not None
                and table.clustered_index.key_columns[0] == column
            )
            if has_access:
                requests.append(
                    JoinMethodRequest(table_name, query.join_predicate)
                )
    return requests


@dataclass
class EvaluationOutcome:
    """Everything §V-B reports about one query."""

    generated: GeneratedQuery
    original_plan: PlanNode
    improved_plan: PlanNode
    time_original_ms: float
    time_monitored_ms: float
    time_improved_ms: float
    observations: list[PageCountObservation] = field(default_factory=list)
    requests: list[PageCountRequest] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """``(T - T') / T`` — positive when feedback improved the plan."""
        if self.time_original_ms <= 0:
            return 0.0
        return (self.time_original_ms - self.time_improved_ms) / self.time_original_ms

    @property
    def overhead(self) -> float:
        """``(T_monitored - T) / T`` — the cost of monitoring (Fig. 7)."""
        if self.time_original_ms <= 0:
            return 0.0
        return (
            self.time_monitored_ms - self.time_original_ms
        ) / self.time_original_ms

    @property
    def plan_changed(self) -> bool:
        return self.original_plan.signature() != self.improved_plan.signature()

    def summary(self) -> str:
        arrow = "=>" if self.plan_changed else "=="
        return (
            f"{self.generated.label:<16} sel={self.generated.selectivity:6.3%} "
            f"{self.original_plan.access_method():<22} {arrow} "
            f"{self.improved_plan.access_method():<22} "
            f"T={self.time_original_ms:9.2f}ms T'={self.time_improved_ms:9.2f}ms "
            f"speedup={self.speedup:7.2%} overhead={self.overhead:6.2%}"
        )


def evaluate_query(
    database: Database,
    generated: GeneratedQuery,
    requests: Optional[Sequence[PageCountRequest]] = None,
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
    exec_mode: str = "row",
) -> EvaluationOutcome:
    """Run the full §V-B methodology for one generated query.

    ``exec_mode`` selects the execution drive for all three runs; the
    simulated times and observations are identical either way (see
    :mod:`repro.harness.equivalence`), batch mode just gets there with
    far less interpreter work per row.
    """
    monitor_config = monitor_config if monitor_config is not None else MonitorConfig()
    injections = generated.injections(base_injections)
    query = generated.query
    request_list = (
        list(requests)
        if requests is not None
        else default_requests(database, query)
    )

    # 1. Plan P under accurate cardinalities.
    original_plan = build_optimizer(database, injections=injections).optimize(query)

    # 2. T: plan P, no monitoring.
    plain = build_executable(original_plan, database)
    time_original = execute(
        plain.root, database, cold_cache=True, mode=exec_mode
    ).elapsed_ms

    # 3. Monitored run of P.
    monitored = build_executable(
        original_plan, database, request_list, monitor_config
    )
    monitored_result = execute(
        monitored.root, database, cold_cache=True, mode=exec_mode
    )
    observations = (
        list(monitored_result.runstats.observations) + monitored.unanswerable
    )

    # 4. Re-optimize with the feedback injected.
    corrected = injections.copy()
    corrected.absorb_observations(observations)
    improved_plan = build_optimizer(database, injections=corrected).optimize(query)

    # 5./6. T' (identical plan -> identical deterministic time).
    if improved_plan.signature() == original_plan.signature():
        time_improved = time_original
    else:
        improved = build_executable(improved_plan, database)
        time_improved = execute(
            improved.root, database, cold_cache=True, mode=exec_mode
        ).elapsed_ms

    return EvaluationOutcome(
        generated=generated,
        original_plan=original_plan,
        improved_plan=improved_plan,
        time_original_ms=time_original,
        time_monitored_ms=monitored_result.elapsed_ms,
        time_improved_ms=time_improved,
        observations=observations,
        requests=request_list,
    )


def evaluate_workload(
    database: Database,
    workload: Sequence[GeneratedQuery],
    monitor_config: Optional[MonitorConfig] = None,
    base_injections: Optional[InjectionSet] = None,
    exec_mode: str = "row",
) -> list[EvaluationOutcome]:
    """Evaluate every query in a workload (Figs. 6-8, 11)."""
    return [
        evaluate_query(
            database,
            generated,
            monitor_config=monitor_config,
            base_injections=base_injections,
            exec_mode=exec_mode,
        )
        for generated in workload
    ]


def evaluate_query_sharded(
    coordinator: "ShardCoordinator",
    generated: GeneratedQuery,
    requests: Optional[Sequence[PageCountRequest]] = None,
    base_injections: Optional[InjectionSet] = None,
    exec_mode: str = "row",
) -> EvaluationOutcome:
    """Run §V-B against a sharded deployment instead of a single engine.

    The same six steps, with every execution scatter-gathered through
    :meth:`~repro.shard.coordinator.ShardCoordinator.run_plan`: planning
    still happens once against the *global* catalog, T / T_monitored /
    T' are the merged makespans (slowest shard + merge), and step 4
    absorbs the *merged* observations — summed disjoint per-shard page
    counts, so an exact DPC feeds the re-optimization exactly as in the
    serial run.  Monitoring configuration comes from the coordinator
    (its shard engines attach monitors shard-side).
    """
    database = coordinator.database
    injections = generated.injections(base_injections)
    query = generated.query
    request_list = (
        list(requests)
        if requests is not None
        else default_requests(database, query)
    )

    # 1. Plan P under accurate cardinalities (once, at the coordinator).
    original_plan = build_optimizer(database, injections=injections).optimize(query)

    # 2. T: plan P fanned out, no monitoring.
    time_original = coordinator.run_plan(
        query, original_plan, exec_mode=exec_mode
    ).result.runstats.elapsed_ms

    # 3. Monitored scatter-gather run of P; observations arrive merged.
    monitored = coordinator.run_plan(
        query, original_plan, requests=request_list, exec_mode=exec_mode
    )
    observations = list(monitored.result.runstats.observations)

    # 4. Re-optimize with the merged feedback injected.
    corrected = injections.copy()
    corrected.absorb_observations(observations)
    improved_plan = build_optimizer(database, injections=corrected).optimize(query)

    # 5./6. T' (identical plan -> identical deterministic makespan).
    if improved_plan.signature() == original_plan.signature():
        time_improved = time_original
    else:
        time_improved = coordinator.run_plan(
            query, improved_plan, exec_mode=exec_mode
        ).result.runstats.elapsed_ms

    return EvaluationOutcome(
        generated=generated,
        original_plan=original_plan,
        improved_plan=improved_plan,
        time_original_ms=time_original,
        time_monitored_ms=monitored.result.runstats.elapsed_ms,
        time_improved_ms=time_improved,
        observations=observations,
        requests=request_list,
    )


def evaluate_workload_sharded(
    coordinator: "ShardCoordinator",
    workload: Sequence[GeneratedQuery],
    base_injections: Optional[InjectionSet] = None,
    exec_mode: str = "row",
) -> list[EvaluationOutcome]:
    """Evaluate a workload through one sharded deployment."""
    return [
        evaluate_query_sharded(
            coordinator,
            generated,
            base_injections=base_injections,
            exec_mode=exec_mode,
        )
        for generated in workload
    ]
