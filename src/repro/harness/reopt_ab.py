"""A/B harness for mid-query re-optimization (the reopt value story).

The question the watchdog exists to answer: once the optimizer has
committed to a misestimated plan, is *switching mid-flight* cheaper than
riding the bad plan to completion?  For each generated query this
harness measures both arms under identical conditions (cold cache,
accurate injected cardinalities per §V-B — so the only error in play is
the page-count error the paper diagnoses):

A (ride it out)
    The optimizer's plan, monitored, run to completion → ``T_bad``.
B (switch)
    The same plan under the regret watchdog
    (:func:`repro.reopt.run_with_reopt`) → ``T_switch`` =
    ``T_partial + T_replan + T_new`` on a trip, or the plain monitored
    time (plus the watchdog's per-checkpoint charge) when the plan was
    never worth abandoning.

On the Fig. 6 correlated columns the analytic page-count model grossly
overestimates DPC, the optimizer settles for a sequential scan, and the
watchdog's projection exposes the regret a few percent into the scan —
``win = T_bad / T_switch`` lands well above 1.  On the uncorrelated
column the projection tracks the estimate, nothing trips, and the B arm
must cost within a rounding error of the A arm (the overhead gate in
``benchmarks/smoke_reopt.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.catalog.catalog import Database
from repro.harness.methodology import default_requests
from repro.harness.reporting import format_table
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.reopt.episode import run_with_reopt
from repro.reopt.policy import ReoptPolicy
from repro.session import Session
from repro.workloads.queries import GeneratedQuery, single_table_workload


@dataclass
class ReoptABOutcome:
    """Both arms of one query's ride-vs-switch comparison."""

    generated: GeneratedQuery
    tripped: bool
    switched: bool
    resumed: bool
    false_trip: bool
    trip_detail: str
    time_bad_ms: float
    time_switch_ms: float
    #: The two arms returned identical result rows (correctness gate:
    #: a mid-query switch must never change the answer).
    rows_match: bool

    @property
    def win(self) -> float:
        """``T_bad / T_switch`` — above 1 when switching paid off."""
        if self.time_switch_ms <= 0:
            return 0.0
        return self.time_bad_ms / self.time_switch_ms

    @property
    def overhead(self) -> float:
        """``(T_switch - T_bad) / T_bad`` — the watchdog's cost on the
        runs where it (correctly) never fired."""
        if self.time_bad_ms <= 0:
            return 0.0
        return (self.time_switch_ms - self.time_bad_ms) / self.time_bad_ms

    def summary(self) -> str:
        verdict = (
            "resumed" if self.resumed
            else "switched" if self.switched
            else "false-trip" if self.false_trip
            else "rode"
        )
        return (
            f"{self.generated.label:<16} "
            f"sel={self.generated.selectivity:6.3%} {verdict:<10} "
            f"T_bad={self.time_bad_ms:9.2f}ms "
            f"T_switch={self.time_switch_ms:9.2f}ms win={self.win:5.2f}x"
        )


@dataclass
class ReoptABReport:
    """Aggregate view of one workload's A/B run."""

    outcomes: list[ReoptABOutcome] = field(default_factory=list)

    @property
    def trips(self) -> int:
        return sum(1 for o in self.outcomes if o.tripped)

    @property
    def wins(self) -> int:
        return sum(1 for o in self.outcomes if o.switched)

    @property
    def false_trips(self) -> int:
        return sum(1 for o in self.outcomes if o.false_trip)

    @property
    def rows_all_match(self) -> bool:
        return all(o.rows_match for o in self.outcomes)

    def mean_win(self) -> float:
        """Mean ``T_bad / T_switch`` over the tripped queries (1.0 when
        nothing tripped — no switches, no claimed win)."""
        tripped = [o.win for o in self.outcomes if o.tripped]
        if not tripped:
            return 1.0
        return sum(tripped) / len(tripped)

    def max_overhead(self) -> float:
        """Worst watchdog overhead across the *untripped* queries."""
        quiet = [o.overhead for o in self.outcomes if not o.tripped]
        return max(quiet, default=0.0)

    def render(self) -> str:
        rows = [
            [
                o.generated.label,
                f"{o.generated.selectivity:.3%}",
                "yes" if o.tripped else "no",
                "yes" if o.switched else "no",
                "yes" if o.resumed else "no",
                f"{o.time_bad_ms:.2f}",
                f"{o.time_switch_ms:.2f}",
                f"{o.win:.2f}x",
            ]
            for o in self.outcomes
        ]
        table = format_table(
            [
                "query", "sel", "trip", "switch", "resume",
                "T_bad ms", "T_switch ms", "win",
            ],
            rows,
        )
        footer = (
            f"{len(self.outcomes)} query(ies): {self.trips} trip(s), "
            f"{self.wins} win(s), {self.false_trips} false trip(s); "
            f"mean win {self.mean_win():.2f}x, "
            f"max quiet overhead {self.max_overhead():.2%}, "
            f"rows {'match' if self.rows_all_match else 'MISMATCH'}"
        )
        return f"{table}\n{footer}"


def evaluate_reopt_query(
    database: Database,
    generated: GeneratedQuery,
    policy: Optional[ReoptPolicy] = None,
    page_count_model: Optional[AnalyticalPageCountModel] = None,
    exec_mode: str = "batch",
) -> ReoptABOutcome:
    """Run one query's ride-vs-switch A/B.

    Each arm gets its own :class:`Session` (private feedback store, no
    plan cache) seeded with the query's exact cardinalities, so the two
    executions are independent cold-cache runs differing only in the
    watchdog.  ``exec_mode`` defaults to the page-at-a-time batch drive
    — the checkpoint cadence the watchdog projects on (and the drive
    whose page boundaries make the resume path legal).
    """
    policy = policy if policy is not None else ReoptPolicy()
    requests = tuple(default_requests(database, generated.query))

    ride = Session(
        database=database,
        injections=generated.injections(),
        page_count_model=page_count_model,
    )
    plain = ride.run(
        generated.query, requests=requests, exec_mode=exec_mode
    )

    switch = Session(
        database=database,
        injections=generated.injections(),
        page_count_model=page_count_model,
    )
    episode = run_with_reopt(
        switch,
        generated.query,
        requests=requests,
        policy=policy,
        exec_mode=exec_mode,
    )

    return ReoptABOutcome(
        generated=generated,
        tripped=episode.tripped,
        switched=episode.switched,
        resumed=episode.resumed,
        false_trip=episode.false_trip,
        trip_detail=episode.trip_detail,
        time_bad_ms=plain.result.runstats.elapsed_ms,
        time_switch_ms=episode.executed.result.runstats.elapsed_ms,
        rows_match=plain.result.rows == episode.executed.result.rows,
    )


def run_reopt_ab(
    num_rows: int = 20_000,
    queries_per_column: int = 3,
    seed: int = 3,
    exec_mode: str = "batch",
    policy: Optional[ReoptPolicy] = None,
    selectivity_range: tuple[float, float] = (0.01, 0.05),
) -> ReoptABReport:
    """The standalone Fig. 6-style A/B driver (``figures reopt``).

    Covers both regimes: the correlated columns (c2 exactly tracks the
    clustering order, c3 nearly) where the analytic model's DPC is a
    gross overestimate and switching should win, and the uncorrelated c5
    where the estimate is right and the watchdog must stay quiet.  The
    selectivity range sits below the optimizer's scan/seek crossover so
    a trip's replan reliably lands on a different plan.
    """
    from repro.workloads.synthetic import build_synthetic_database

    database = build_synthetic_database(num_rows=num_rows, seed=seed)
    workload = single_table_workload(
        database,
        "t",
        columns=("c2", "c3", "c5"),
        queries_per_column=queries_per_column,
        selectivity_range=selectivity_range,
        seed=seed,
    )
    return evaluate_reopt_workload(
        database, workload, policy=policy, exec_mode=exec_mode
    )


def evaluate_reopt_workload(
    database: Database,
    workload: Sequence[GeneratedQuery],
    policy: Optional[ReoptPolicy] = None,
    page_count_model: Optional[AnalyticalPageCountModel] = None,
    exec_mode: str = "batch",
) -> ReoptABReport:
    """The full A/B over a workload (Fig. 6 columns, both regimes)."""
    report = ReoptABReport()
    for generated in workload:
        report.outcomes.append(
            evaluate_reopt_query(
                database,
                generated,
                policy=policy,
                page_count_model=page_count_model,
                exec_mode=exec_mode,
            )
        )
    return report
