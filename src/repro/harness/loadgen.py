"""Closed-loop load generator for the query service.

Drives a :class:`~repro.service.service.QueryService` the way a fleet of
clients would: ``concurrency`` workers, each holding exactly one request
in flight and issuing the next only after the previous response lands
(a *closed* system — offered load adapts to service latency instead of
piling onto the queue).  The workload is a list of SQL texts replayed
for ``passes`` rounds, so the first round exercises the cold path
(optimizer runs, plan-cache misses) and later rounds the warm path
(cache hits, optionally feedback-informed plans).

What comes back is a :class:`LoadReport`: per-request latency digests
(p50/p95/p99 via :func:`repro.harness.reporting.latency_summary`),
throughput, cold-vs-warm pass digests, the service telemetry snapshot,
and the raw responses in request order so callers can diff the service's
feedback observations against a serial replay
(:func:`diff_against_serial`) — the service-layer restatement of the
engine's serial≡concurrent equivalence obligation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.catalog.catalog import Database
from repro.engine import Engine, WorkloadItem
from repro.harness.methodology import default_requests
from repro.harness.reporting import format_table, latency_summary, reopt_summary
from repro.harness.timing import Stopwatch
from repro.service.client import TCPClient
from repro.service.protocol import QueryRequest, QueryResponse
from repro.service.service import QueryService
from repro.service.telemetry import leaked_slots_from
from repro.sql import parse_query

#: The Fig. 6-style monitored range workload the service benchmarks replay
#: (same cuts as the plan-cache smoke, phrased as SQL for the wire).
DEFAULT_WORKLOAD_SQL = (
    "SELECT count(padding) FROM t WHERE c2 < 300",
    "SELECT count(padding) FROM t WHERE c2 < 900",
    "SELECT count(padding) FROM t WHERE c3 < 250",
    "SELECT count(padding) FROM t WHERE c4 < 5000",
    "SELECT count(padding) FROM t WHERE c5 < 9000",
)


@dataclass(frozen=True)
class LoadSpec:
    """One closed-loop run: what to replay and how hard."""

    sqls: tuple[str, ...] = DEFAULT_WORKLOAD_SQL
    concurrency: int = 8
    #: Full replays of ``sqls``; pass 0 is the cold pass.
    passes: int = 3
    exec_mode: str = "row"
    use_feedback: bool = False
    monitor: bool = True
    #: Run every request under the mid-query re-optimization watchdog
    #: (needs ``monitor=True`` to have counters to project from).
    reopt: bool = False
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.sqls:
            raise ValueError("LoadSpec needs at least one SQL text")
        if self.concurrency <= 0:
            raise ValueError(
                f"concurrency must be positive, got {self.concurrency}"
            )
        if self.passes <= 0:
            raise ValueError(f"passes must be positive, got {self.passes}")
        # Fail fast at spec time rather than per-request inside the loop.
        if self.exec_mode not in ("row", "batch", "columnar"):
            raise ValueError(
                f"exec_mode must be 'row', 'batch' or 'columnar', "
                f"got {self.exec_mode!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )

    def requests(self) -> list[QueryRequest]:
        """The expanded request list, request_id ``p<pass>-q<index>``."""
        return [
            QueryRequest(
                sql=sql,
                request_id=f"p{p}-q{index}",
                exec_mode=self.exec_mode,
                use_feedback=self.use_feedback,
                monitor=self.monitor,
                reopt=self.reopt,
                deadline_ms=self.deadline_ms,
            )
            for p in range(self.passes)
            for index, sql in enumerate(self.sqls)
        ]


@dataclass
class LoadReport:
    """Everything a closed-loop run observed."""

    spec: LoadSpec
    wall_seconds: float
    #: Responses in request order (pass-major), errors included.
    responses: list[QueryResponse] = field(default_factory=list)
    telemetry: dict[str, Any] = field(default_factory=dict)
    leaked: Optional[str] = None

    @property
    def total_requests(self) -> int:
        return len(self.responses)

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.responses if r.ok)

    @property
    def qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.ok_count / self.wall_seconds

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for response in self.responses:
            key = "ok" if response.ok else response.error_code
            counts[key] = counts.get(key, 0) + 1
        return counts

    def _pass_responses(self, p: int) -> list[QueryResponse]:
        size = len(self.spec.sqls)
        return self.responses[p * size : (p + 1) * size]

    def latency(self) -> dict[str, float]:
        """service_ms digest over every successful request."""
        return latency_summary(
            [r.service_ms for r in self.responses if r.ok]
        )

    def pass_latency(self, p: int) -> dict[str, float]:
        return latency_summary(
            [r.service_ms for r in self._pass_responses(p) if r.ok]
        )

    def cold_latency(self) -> dict[str, float]:
        return self.pass_latency(0)

    def warm_latency(self) -> dict[str, float]:
        """Digest over every post-warmup (non-first) pass."""
        warm = [
            r
            for p in range(1, self.spec.passes)
            for r in self._pass_responses(p)
            if r.ok
        ]
        return latency_summary([r.service_ms for r in warm])

    def queue_wait(self) -> dict[str, float]:
        return latency_summary(
            [r.queue_wait_ms for r in self.responses if r.ok]
        )

    def render(self) -> str:
        digests = [
            ("all passes", self.latency()),
            ("cold pass", self.cold_latency()),
        ]
        if self.spec.passes > 1:
            digests.append(("warm passes", self.warm_latency()))
        digests.append(("queue wait", self.queue_wait()))
        rows = [
            [label, d["count"], d["mean"], d["p50"], d["p95"], d["p99"], d["max"]]
            for label, d in digests
        ]
        status = " ".join(
            f"{k}={v}" for k, v in sorted(self.status_counts().items())
        )
        lines = [
            f"closed loop: {self.spec.concurrency} client(s), "
            f"{self.total_requests} request(s) in {self.wall_seconds:.3f}s "
            f"({self.qps:.1f} qps)",
            f"statuses: {status}",
        ]
        reopt_line = reopt_summary(self.telemetry.get("counters", {}))
        if reopt_line:
            lines.append(reopt_line)
        lines.append(
            format_table(
                ["latency (ms)", "count", "mean", "p50", "p95", "p99", "max"],
                rows,
            )
        )
        return "\n".join(lines)


async def _drive_workers(worker, count: int) -> None:
    """Run ``count`` copies of ``worker()`` to completion.

    TaskGroup semantics on the 3.10 floor (``asyncio.TaskGroup`` is
    3.11+): if any worker raises, the rest are cancelled and the first
    error propagates.
    """
    tasks = [asyncio.ensure_future(worker()) for _ in range(count)]
    try:
        await asyncio.gather(*tasks)
    finally:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)


async def run_closed_loop(
    service: QueryService, spec: LoadSpec
) -> LoadReport:
    """Replay ``spec`` against the service with a closed worker pool."""
    requests = spec.requests()
    responses: list[Optional[QueryResponse]] = [None] * len(requests)
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        while True:
            index = next_index  # single-threaded event loop: no races
            if index >= len(requests):
                return
            next_index = index + 1
            responses[index] = await service.handle(requests[index])

    watch = Stopwatch()
    await _drive_workers(worker, min(spec.concurrency, len(requests)))
    wall_seconds = watch.elapsed_seconds

    missing = [i for i, r in enumerate(responses) if r is None]
    if missing:
        raise RuntimeError(
            f"closed loop lost {len(missing)} response(s) (indices "
            f"{missing[:5]}...) — a worker died without answering"
        )
    return LoadReport(
        spec=spec,
        wall_seconds=wall_seconds,
        responses=[r for r in responses if r is not None],
        telemetry=service.telemetry.snapshot(),
        leaked=service.telemetry.leaked_slots(),
    )


async def run_closed_loop_tcp(
    host: str, port: int, spec: LoadSpec
) -> LoadReport:
    """The same closed loop over real sockets, one connection per client.

    Each worker opens its own NDJSON connection (a connection is a serial
    channel — the server answers in order).  The telemetry snapshot and
    slot audit come from the server's ``stats`` endpoint, so the report
    shape matches :func:`run_closed_loop`.  Note the snapshot covers the
    *server's* lifetime, not just this run.
    """
    requests = spec.requests()
    responses: list[Optional[QueryResponse]] = [None] * len(requests)
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        async with TCPClient(host, port) as client:
            while True:
                index = next_index
                if index >= len(requests):
                    return
                next_index = index + 1
                responses[index] = await client.query(requests[index])

    watch = Stopwatch()
    await _drive_workers(worker, min(spec.concurrency, len(requests)))
    wall_seconds = watch.elapsed_seconds

    async with TCPClient(host, port) as client:
        stats = await client.stats()
    telemetry = stats.get("telemetry", {})
    return LoadReport(
        spec=spec,
        wall_seconds=wall_seconds,
        responses=[r for r in responses if r is not None],
        telemetry=telemetry,
        leaked=leaked_slots_from(telemetry) if telemetry else None,
    )


# ----------------------------------------------------------------------
# Serial-reference equivalence: the service side of the engine's
# serial≡concurrent proof obligation.
# ----------------------------------------------------------------------
def workload_items(
    database: Database,
    sqls: Sequence[str],
    exec_mode: str = "row",
    use_feedback: bool = False,
    monitor: bool = True,
) -> list[WorkloadItem]:
    """The engine-level mirror of a service workload (same monitoring)."""
    items = []
    for sql in sqls:
        query = parse_query(sql)
        items.append(
            WorkloadItem(
                query=query,
                requests=(
                    tuple(default_requests(database, query))
                    if monitor
                    else ()
                ),
                use_feedback=use_feedback,
                exec_mode=exec_mode,
            )
        )
    return items


def observation_signature(runstats: dict[str, Any]) -> list[tuple]:
    """The feedback content of a wire-form ``RunStats`` dict."""
    return [
        (
            obs["expression"],
            obs["mechanism"],
            obs["answered"],
            obs["estimate"],
            obs["exact"],
        )
        for obs in runstats.get("page_counts", [])
    ]


def diff_against_serial(
    database: Database, report: LoadReport, rows_only: bool = False
) -> list[str]:
    """Diff every service response against a fresh serial replay.

    A brand-new engine replays the workload one query at a time; each
    successful service response (every pass, every client) must carry the
    same rows, physical-read count and page-count observations as the
    serial reference for its SQL.  Returns human-readable mismatch
    descriptions — empty means the service changed nothing about what the
    paper's feedback loop observes.

    ``rows_only`` restricts the diff to result rows — the right setting
    when the service ran over a :class:`~repro.shard.ShardCoordinator`:
    N shard B-trees have their own heights, so per-shard physical reads
    legitimately differ from one global file's, and sampled (inexact)
    observations merge statistically rather than bit-identically.  The
    bit-level sharded observation/feedback proof lives in
    :func:`repro.harness.equivalence.compare_sharded_workload`.

    The serial reference always replays with reopt *disabled*.  A
    response whose lifecycle shows a reopt trip is diffed on rows only —
    the switched run's read counts and truncated monitor counters
    legitimately differ, but the answer must not.  Untripped reopt
    responses still face the full bit-level diff: an armed watchdog that
    never fires must change nothing observable.
    """
    spec = report.spec
    reference_engine = Engine(database)
    items = workload_items(
        database,
        spec.sqls,
        exec_mode=spec.exec_mode,
        use_feedback=spec.use_feedback,
        monitor=spec.monitor,
    )
    reference = reference_engine.run_serial(items)
    diffs: list[str] = []
    size = len(spec.sqls)
    for index, response in enumerate(report.responses):
        if not response.ok:
            continue
        ref = reference[index % size]
        ref_rows = [list(row) for row in ref.result.rows]
        if response.rows != ref_rows:
            diffs.append(
                f"{response.request_id}: rows {response.rows} != serial "
                f"{ref_rows}"
            )
        if rows_only:
            continue
        if response.runstats is None:
            diffs.append(f"{response.request_id}: ok response lost runstats")
            continue
        reopt_episode = (
            (response.runstats.get("lifecycle") or {}).get("reopt") or {}
        )
        if reopt_episode.get("tripped"):
            continue
        service_reads = (
            response.runstats["random_reads"]
            + response.runstats["sequential_reads"]
        )
        if service_reads != ref.result.runstats.physical_reads:
            diffs.append(
                f"{response.request_id}: physical reads {service_reads} != "
                f"serial {ref.result.runstats.physical_reads}"
            )
        ref_signature = [
            (obs.key, obs.mechanism.value, obs.answered, obs.estimate,
             obs.exact)
            for obs in ref.observations
        ]
        if observation_signature(response.runstats) != ref_signature:
            diffs.append(
                f"{response.request_id}: page-count observations diverged "
                "from the serial replay"
            )
    return diffs
