"""Distinct-page-count resolution for the optimizer.

:class:`PageCountEstimator` is the seam where execution feedback enters
the cost model: given an expression, it first consults the
:class:`~repro.optimizer.injection.InjectionSet` (feedback/DBA-supplied
values) and only falls back to the analytical uniform-placement model.
Every answer carries its provenance (``"injected"`` vs ``"model"``), which
plan nodes record and the diagnostics report surfaces.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import Database
from repro.optimizer.injection import InjectionSet
from repro.optimizer.pagecount_model import AnalyticalPageCountModel
from repro.sql.predicates import Conjunction, JoinEquality


class PageCountEstimator:
    """Resolves DPC values for fetch costing, preferring injected feedback."""

    def __init__(
        self,
        database: Database,
        model: Optional[AnalyticalPageCountModel] = None,
        injections: Optional[InjectionSet] = None,
        dpc_histograms: Optional[dict] = None,
    ) -> None:
        """``dpc_histograms`` maps ``table -> {column -> DPCHistogram}``;
        when present, single-term range expressions are answered from the
        histogram (the §VI alternative) before falling back to the
        analytical model.  Injections still take precedence over both."""
        self.database = database
        self.model = model if model is not None else AnalyticalPageCountModel()
        self.injections = injections if injections is not None else InjectionSet()
        self.dpc_histograms = dpc_histograms if dpc_histograms is not None else {}

    def _model_estimate(self, table_name: str, fetched_rows: float) -> float:
        stats = self.database.table(table_name).require_statistics()
        if stats.page_count == 0:
            return 0.0
        return self.model.estimate(fetched_rows, stats.row_count, stats.page_count)

    def access_dpc(
        self, table_name: str, expression: Conjunction, fetched_rows: float
    ) -> tuple[float, str]:
        """DPC for fetching the rows matching ``expression``.

        ``fetched_rows`` is the cardinality estimate for the expression
        (the analytical model's only input besides table geometry).
        Returns ``(pages, source)`` with source ``"injected"`` or
        ``"model"``.
        """
        injected = self.injections.access_page_count(table_name, expression)
        if injected is not None:
            return injected, "injected"
        histograms = self.dpc_histograms.get(table_name)
        if histograms and len(expression.terms) == 1:
            histogram = histograms.get(expression.terms[0].column)
            if histogram is not None:
                estimate = histogram.estimate(expression)
                if estimate is not None:
                    return estimate, "dpc-histogram"
        return self._model_estimate(table_name, fetched_rows), "model"

    def join_dpc(
        self,
        inner_table: str,
        join_predicate: JoinEquality,
        fetched_rows: float,
    ) -> tuple[float, str]:
        """DPC of the inner table under the join predicate (INL costing)."""
        injected = self.injections.join_page_count(inner_table, join_predicate)
        if injected is not None:
            return injected, "injected"
        return self._model_estimate(inner_table, fetched_rows), "model"
