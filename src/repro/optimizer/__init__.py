"""Cost-based optimizer: cardinality, page-count models, plans and hints."""

from repro.optimizer.access_paths import AccessPathEnumerator, seek_bounds
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel, expected_evaluations
from repro.optimizer.dpc_histogram import DPCHistogram, build_dpc_histograms
from repro.optimizer.estimators import PageCountEstimator
from repro.optimizer.hints import PlanHint
from repro.optimizer.injection import (
    InjectionSet,
    access_dpc_key,
    cardinality_key,
    join_dpc_key,
)
from repro.optimizer.join_enum import JoinEnumerator
from repro.optimizer.optimizer import JoinQuery, Optimizer, Query, SingleTableQuery
from repro.optimizer.pagecount_model import (
    AnalyticalPageCountModel,
    cardenas_estimate,
    mackert_lohman_estimate,
    yao_estimate,
)
from repro.optimizer.plans import (
    ClusteredRangeScanPlan,
    CountPlan,
    CoveringScanPlan,
    HashJoinPlan,
    IndexIntersectionLeg,
    IndexIntersectionPlan,
    InListSeekPlan,
    IndexSeekPlan,
    INLJoinPlan,
    MergeJoinPlan,
    PlanNode,
    SeqScanPlan,
)

__all__ = [
    "AccessPathEnumerator",
    "AnalyticalPageCountModel",
    "CardinalityEstimator",
    "ClusteredRangeScanPlan",
    "CostModel",
    "CountPlan",
    "CoveringScanPlan",
    "DPCHistogram",
    "HashJoinPlan",
    "INLJoinPlan",
    "IndexIntersectionLeg",
    "IndexIntersectionPlan",
    "InListSeekPlan",
    "IndexSeekPlan",
    "InjectionSet",
    "JoinEnumerator",
    "JoinQuery",
    "MergeJoinPlan",
    "Optimizer",
    "PageCountEstimator",
    "PlanHint",
    "PlanNode",
    "Query",
    "SeqScanPlan",
    "SingleTableQuery",
    "access_dpc_key",
    "build_dpc_histograms",
    "cardenas_estimate",
    "cardinality_key",
    "expected_evaluations",
    "join_dpc_key",
    "mackert_lohman_estimate",
    "seek_bounds",
    "yao_estimate",
]
