"""Cardinality and page-count injection.

The paper's evaluation methodology needs two injection interfaces (§V):

* **Cardinality injection** — "we ensured that the plan P was generated
  after injecting accurate cardinality values", isolating page-count error
  from cardinality error.
* **Page-count injection** — "a method by which the distinct page count
  for a given expression can be input to the query optimizer", which is
  how execution feedback reaches the cost model for re-optimization.

:class:`InjectionSet` stores both kinds, keyed by canonical expression
strings, and offers a convenience constructor that lifts a run's
:class:`~repro.core.requests.PageCountObservation` list straight into
page-count injections — the feedback loop in one call.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from repro.core.requests import (
    AccessPathRequest,
    JoinMethodRequest,
    PageCountObservation,
)
from repro.sql.predicates import Conjunction, JoinEquality


def cardinality_key(table: str, expression: Conjunction) -> str:
    return f"CARD({table}, {expression.key()})"


def access_dpc_key(table: str, expression: Conjunction) -> str:
    return AccessPathRequest(table, expression).key()


def join_dpc_key(inner_table: str, join_predicate: JoinEquality) -> str:
    return JoinMethodRequest(inner_table, join_predicate).key()


class InjectionSet:
    """Externally supplied estimates that override the optimizer's own."""

    def __init__(self) -> None:
        self._cardinalities: dict[str, float] = {}
        self._page_counts: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def inject_cardinality(
        self, table: str, expression: Conjunction, rows: float
    ) -> None:
        if rows < 0:
            raise ValueError(f"injected cardinality must be >= 0, got {rows}")
        self._cardinalities[cardinality_key(table, expression)] = rows

    def inject_access_page_count(
        self, table: str, expression: Conjunction, pages: float
    ) -> None:
        if pages < 0:
            raise ValueError(f"injected page count must be >= 0, got {pages}")
        self._page_counts[access_dpc_key(table, expression)] = pages

    def inject_join_page_count(
        self, inner_table: str, join_predicate: JoinEquality, pages: float
    ) -> None:
        if pages < 0:
            raise ValueError(f"injected page count must be >= 0, got {pages}")
        self._page_counts[join_dpc_key(inner_table, join_predicate)] = pages

    def inject_page_count_by_key(self, key: str, pages: float) -> None:
        """Inject under a pre-formatted request key (feedback-store path)."""
        if pages < 0:
            raise ValueError(f"injected page count must be >= 0, got {pages}")
        self._page_counts[key] = pages

    def absorb_observations(
        self, observations: Iterable[PageCountObservation]
    ) -> int:
        """Turn answered observations into page-count injections.

        Returns how many were absorbed.  Unanswerable observations are
        skipped — injecting nothing is safer than injecting a guess.
        """
        absorbed = 0
        for observation in observations:
            if not observation.answered or observation.estimate is None:
                continue
            self._page_counts[observation.key] = max(0.0, observation.estimate)
            absorbed += 1
        return absorbed

    def copy(self) -> "InjectionSet":
        """An independent copy (mutating it leaves this set unchanged)."""
        duplicate = InjectionSet()
        duplicate._cardinalities = dict(self._cardinalities)
        duplicate._page_counts = dict(self._page_counts)
        return duplicate

    def merge_from(self, other: "InjectionSet") -> None:
        """Absorb another set's entries; ``other`` wins on key conflicts.

        This is the feedback-store lowering path: session-level base
        injections are overridden by fresher execution feedback.
        """
        self._cardinalities.update(other._cardinalities)
        self._page_counts.update(other._page_counts)

    def fingerprint(self) -> str:
        """Deterministic content digest (a plan-cache key component).

        Two sets with the same cardinality and page-count entries produce
        the same fingerprint regardless of insertion order; any differing
        entry changes it.
        """
        digest = hashlib.sha256()
        for prefix, entries in (
            ("C", self._cardinalities),
            ("P", self._page_counts),
        ):
            for key in sorted(entries):
                digest.update(f"{prefix}|{key}={entries[key]!r}\x1f".encode())
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def cardinality(
        self, table: str, expression: Conjunction
    ) -> Optional[float]:
        return self._cardinalities.get(cardinality_key(table, expression))

    def access_page_count(
        self, table: str, expression: Conjunction
    ) -> Optional[float]:
        return self._page_counts.get(access_dpc_key(table, expression))

    def join_page_count(
        self, inner_table: str, join_predicate: JoinEquality
    ) -> Optional[float]:
        key = join_dpc_key(inner_table, join_predicate)
        value = self._page_counts.get(key)
        if value is not None:
            return value
        # A join predicate is symmetric; accept the reversed spelling too.
        return self._page_counts.get(
            join_dpc_key(inner_table, join_predicate.reversed())
        )

    def __len__(self) -> int:
        return len(self._cardinalities) + len(self._page_counts)

    def __repr__(self) -> str:
        return (
            f"InjectionSet({len(self._cardinalities)} cardinalities, "
            f"{len(self._page_counts)} page counts)"
        )
